//! Software cost and performance estimation on s-graphs (Section III-C).
//!
//! The estimator assigns each s-graph vertex a pair of cost parameters —
//! execution cycles and code size — determined once per target system by
//! measuring a suite of sample probe routines (the paper uses ~20 benchmark
//! C functions of 10–50 statements examined with a profiler or an
//! assembly-level analysis tool; here the probes are measured through the
//! [`polis_vm`] assembler and object-code analyzer, the only interfaces a
//! profiler would expose). Estimation is then:
//!
//! * **code size** — the sum of the per-vertex size parameters
//!   (`O(|V|)`);
//! * **maximum cycles** — a PERT longest-path computation from BEGIN to
//!   END;
//! * **minimum cycles** — a Dijkstra shortest-path computation.
//!
//! The paper's parameter inventory is 17 timing + 15 size + 4 system
//! parameters; ours is the same scheme with two extra pairs for the
//! control-state bit operations our ISA exposes directly
//! (see [`CostParams`]).
//!
//! # Examples
//!
//! ```
//! use polis_cfsm::{Cfsm, ReactiveFn};
//! use polis_estimate::{calibrate, estimate};
//! use polis_expr::{Expr, Type, Value};
//! use polis_sgraph::build;
//! use polis_vm::{BufferPolicy, Profile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Cfsm::builder("m");
//! b.input_pure("go");
//! b.output_pure("done");
//! let s = b.ctrl_state("s");
//! b.transition(s, s).when_present("go").emit("done").done();
//! let m = b.build()?;
//! let rf = ReactiveFn::build(&m);
//! let sg = build(&rf)?;
//! let params = calibrate(Profile::Mcu8);
//! let est = estimate(&m, &sg, &params, BufferPolicy::All);
//! assert!(est.size_bytes > 0);
//! assert!(est.min_cycles <= est.max_cycles);
//! # Ok(())
//! # }
//! ```

mod calibrate;
mod cost;
mod falsepath;
mod params;

pub use calibrate::calibrate;
pub use cost::{estimate, Estimate};
pub use falsepath::{derive_incompatibilities, max_cycles_false_path_aware, Incompat, PathAtom};
pub use params::{CostParams, OpClass};
