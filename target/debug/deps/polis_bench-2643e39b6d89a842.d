/root/repo/target/debug/deps/polis_bench-2643e39b6d89a842.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpolis_bench-2643e39b6d89a842.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpolis_bench-2643e39b6d89a842.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
