/root/repo/target/debug/deps/ablation_buffering-3e708c6a23cb81cc.d: crates/bench/src/bin/ablation_buffering.rs

/root/repo/target/debug/deps/ablation_buffering-3e708c6a23cb81cc: crates/bench/src/bin/ablation_buffering.rs

crates/bench/src/bin/ablation_buffering.rs:
