/root/repo/target/debug/deps/cli-7de18c116dcacfa3.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-7de18c116dcacfa3.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_polis=placeholder:polis
