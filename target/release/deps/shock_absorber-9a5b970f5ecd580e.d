/root/repo/target/release/deps/shock_absorber-9a5b970f5ecd580e.d: crates/bench/src/bin/shock_absorber.rs

/root/repo/target/release/deps/shock_absorber-9a5b970f5ecd580e: crates/bench/src/bin/shock_absorber.rs

crates/bench/src/bin/shock_absorber.rs:
