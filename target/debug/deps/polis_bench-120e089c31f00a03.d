/root/repo/target/debug/deps/polis_bench-120e089c31f00a03.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpolis_bench-120e089c31f00a03.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
