/root/repo/target/debug/deps/pipeline-9726248bda0cbfac.d: crates/core/tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-9726248bda0cbfac: crates/core/tests/pipeline.rs

crates/core/tests/pipeline.rs:
