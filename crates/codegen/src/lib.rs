//! C code generation from s-graphs, plus the two-level-jump baseline.
//!
//! Section III-B4: "the final translation of the s-graph into C ... is
//! straightforward due to the direct correspondence between s-graph node
//! types and basic C primitives": a TEST becomes an `if`/`switch` with
//! `goto`s, an ASSIGN becomes an assignment or an RTOS call. The result is
//! deliberately unstructured — "almost like a portable assembly code" — so
//! a general-purpose C compiler cannot undo the BDD-level optimizations.
//!
//! [`two_level_sgraph`] reproduces the reference implementation of
//! Table II: a first jump on the current state and a complete decision
//! structure over the decision variables of that state, "similar to what is
//! often done during structured hand-coding of reactive systems".
//!
//! # Examples
//!
//! ```
//! use polis_cfsm::{Cfsm, ReactiveFn};
//! use polis_codegen::{emit_c, CodegenOptions};
//! use polis_sgraph::build;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Cfsm::builder("blinker");
//! b.input_pure("tick");
//! b.output_pure("led");
//! let s = b.ctrl_state("s");
//! b.transition(s, s).when_present("tick").emit("led").done();
//! let m = b.build()?;
//! let rf = ReactiveFn::build(&m);
//! let sg = build(&rf)?;
//! let c = emit_c(&m, &sg, &CodegenOptions::default());
//! assert!(c.contains("void blinker_react"));
//! assert!(c.contains("POLIS_DETECT(tick)"));
//! # Ok(())
//! # }
//! ```

mod c_emit;
mod two_level;

pub use c_emit::{emit_c, emit_network_header, measure_c, CodegenOptions, EmitStats};
pub use two_level::two_level_sgraph;
