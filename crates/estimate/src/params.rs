//! The per-target cost parameter set.

use polis_expr::BinOp;

/// Operator cost classes for expression operations (the paper's "average
/// execution time and size for predefined software library functions",
/// grouped by family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Add, subtract, negate.
    Arith,
    /// Relational comparison.
    Compare,
    /// Multiply, divide, remainder.
    MulDiv,
    /// Logical and/or/xor/not.
    Logic,
    /// Min/max library calls.
    MinMax,
}

impl OpClass {
    /// Classifies a binary operator.
    pub fn of(op: BinOp) -> OpClass {
        match op {
            BinOp::Add | BinOp::Sub => OpClass::Arith,
            BinOp::Mul | BinOp::Div | BinOp::Rem => OpClass::MulDiv,
            BinOp::And | BinOp::Or | BinOp::Xor => OpClass::Logic,
            BinOp::Min | BinOp::Max => OpClass::MinMax,
            _ => OpClass::Compare,
        }
    }
}

/// Per-vertex cost pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostPair {
    /// Execution cycles.
    pub cycles: f64,
    /// Code size in bytes.
    pub bytes: f64,
}

/// The calibrated parameter set for one target system (CPU + memory +
/// compiler), mirroring Section III-C1.
///
/// Timing and size pairs exist for each statement style generated from an
/// s-graph vertex; four system parameters describe data layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// TEST on an event presence flag (an RTOS detection call + branch).
    pub test_present: CostPair,
    /// TEST on a data expression, excluding the expression's operators.
    pub test_expr_base: CostPair,
    /// TEST on one control-state bit.
    pub test_ctrl_bit: CostPair,
    /// Extra cycles on the taken (`true`) edge of a binary TEST.
    pub edge_true_cycles: f64,
    /// Extra cycles on the fall-through (`false`) edge.
    pub edge_false_cycles: f64,
    /// Multi-way jump dispatch (a TEST with more than two children):
    /// fixed part.
    pub switch_base: CostPair,
    /// Multi-way jump: per-arm part (the paper's `a + b·k` edge model).
    pub switch_per_arm: CostPair,
    /// ASSIGN emitting a pure event (RTOS call).
    pub emit_pure: CostPair,
    /// ASSIGN emitting a valued event (RTOS call), excluding the value
    /// expression's operators.
    pub emit_valued: CostPair,
    /// ASSIGN of an expression to a state variable, excluding operators.
    pub assign_var: CostPair,
    /// The consume/fired RTOS call.
    pub consume: CostPair,
    /// ASSIGN to control-state bits, per bit.
    pub ctrl_set_per_bit: CostPair,
    /// An unconditional branch (generated `goto`).
    pub goto: CostPair,
    /// Routine call/return overhead (one per reaction).
    pub call_return: CostPair,
    /// Initialization of one local variable copy (the Section V-B entry
    /// buffering).
    pub local_init: CostPair,
    /// Per-operator expression costs, one pair per [`OpClass`].
    pub op_arith: CostPair,
    /// See [`CostParams::op_arith`].
    pub op_compare: CostPair,
    /// See [`CostParams::op_arith`].
    pub op_muldiv: CostPair,
    /// See [`CostParams::op_arith`].
    pub op_logic: CostPair,
    /// See [`CostParams::op_arith`].
    pub op_minmax: CostPair,
    /// System parameter: pointer size in bytes.
    pub bytes_pointer: f64,
    /// System parameter: integer size in bytes.
    pub bytes_int: f64,
    /// System parameter: boolean/flag size in bytes.
    pub bytes_bool: f64,
    /// System parameter: per-routine frame overhead in bytes of RAM.
    pub bytes_frame: f64,
}

impl CostParams {
    /// The cost pair for one expression operator.
    pub fn op(&self, class: OpClass) -> CostPair {
        match class {
            OpClass::Arith => self.op_arith,
            OpClass::Compare => self.op_compare,
            OpClass::MulDiv => self.op_muldiv,
            OpClass::Logic => self.op_logic,
            OpClass::MinMax => self.op_minmax,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert_eq!(OpClass::of(BinOp::Add), OpClass::Arith);
        assert_eq!(OpClass::of(BinOp::Sub), OpClass::Arith);
        assert_eq!(OpClass::of(BinOp::Mul), OpClass::MulDiv);
        assert_eq!(OpClass::of(BinOp::Div), OpClass::MulDiv);
        assert_eq!(OpClass::of(BinOp::Lt), OpClass::Compare);
        assert_eq!(OpClass::of(BinOp::Eq), OpClass::Compare);
        assert_eq!(OpClass::of(BinOp::And), OpClass::Logic);
        assert_eq!(OpClass::of(BinOp::Min), OpClass::MinMax);
    }
}
