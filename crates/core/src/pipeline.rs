//! The synthesis pipeline as explicit, uniformly instrumented stages.
//!
//! Each step of the five-step procedure (χ/BDD construction, constrained
//! sifting, s-graph build, TEST collapsing, instruction selection +
//! assembly, C emission, cost estimation, exact measurement, RTOS
//! generation) is a [`Stage`]: a named function from an input to an
//! output, run through a [`SynthCtx`] that records wall time and the
//! owning layer's native counters into a [`SynthTrace`].
//!
//! [`synthesize_cfsm`] chains the per-machine stages for the selected
//! [`ImplStyle`]; [`synthesize_network_staged`] fans the per-machine
//! pipeline out across `jobs` scoped worker threads — each worker owns
//! its own BDD manager (one per [`ReactiveFn`]), and results are merged
//! in network (input) order, so parallel output is byte-identical to the
//! sequential run.

use crate::trace::{MetricValue, StageRecord, SynthTrace};
use crate::{
    CfsmSynthesis, ImplStyle, Measured, NetworkSynthesis, SynthesisOptions, RTOS_RAM_PER_TASK,
    RTOS_ROM_BYTES,
};
use polis_cfsm::{Cfsm, Network, ReactiveFn};
use polis_codegen::{emit_c, measure_c, two_level_sgraph, CodegenOptions};
use polis_estimate::{
    calibrate, derive_incompatibilities, estimate, max_cycles_false_path_aware, CostParams,
    Estimate, Incompat,
};
use polis_lang::Property;
use polis_rtos::{emit_rtos_c, RtosConfig};
use polis_sgraph::{build, collapse, ite_chain, BuildError, CollapseOptions, SGraph};
use polis_verify::{PropReport, Verifier, VerifyError, VerifyOptions, VerifyReport};
use polis_vm::{analyze, assemble, compile, ObjectCode, VmProgram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A failure inside the staged pipeline.
#[derive(Debug)]
pub enum SynthError {
    /// The s-graph builder rejected the reactive function.
    SgraphBuild(BuildError),
    /// Symbolic network verification aborted (node-budget overflow).
    Verify(VerifyError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::SgraphBuild(e) => write!(f, "s-graph build failed: {e:?}"),
            SynthError::Verify(e) => write!(f, "network verification failed: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// A staged-pipeline failure carrying everything recorded before the
/// abort, so callers can flush a partial trace instead of losing the
/// run's instrumentation.
#[derive(Debug)]
pub struct SynthFailure {
    /// What went wrong.
    pub error: SynthError,
    /// Every stage record completed before (and including) the failing
    /// stage.
    pub trace: SynthTrace,
}

impl std::fmt::Display for SynthFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for SynthFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One named pipeline stage: a pure function from `I` to `O` that reports
/// counters through the context it runs under.
#[derive(Clone, Copy)]
pub struct Stage<I, O> {
    /// Stage name as it appears in the trace.
    pub name: &'static str,
    /// The stage body. Counters reported via [`SynthCtx::count`] /
    /// [`SynthCtx::ratio`] during the call are attributed to this stage.
    pub run: fn(&mut SynthCtx<'_>, I) -> Result<O, SynthError>,
}

/// Per-run synthesis context: configuration plus the growing trace.
///
/// One `SynthCtx` is threaded through every stage of one machine's
/// synthesis (and one more through the network-level stages). Under
/// `--jobs N` each worker thread owns its own context; traces are merged
/// in network order afterwards.
pub struct SynthCtx<'a> {
    /// Pipeline configuration.
    pub opts: &'a SynthesisOptions,
    /// Pre-calibrated target cost parameters.
    pub params: &'a CostParams,
    machine: Option<String>,
    trace: SynthTrace,
    open: Vec<(String, MetricValue)>,
}

impl<'a> SynthCtx<'a> {
    /// Creates a context with an empty trace.
    pub fn new(opts: &'a SynthesisOptions, params: &'a CostParams) -> SynthCtx<'a> {
        SynthCtx {
            opts,
            params,
            machine: None,
            trace: SynthTrace::new(),
            open: Vec::new(),
        }
    }

    /// Attributes subsequent stage records to `name` (a CFSM), or to the
    /// network level when `None`.
    pub fn set_machine(&mut self, name: Option<&str>) {
        self.machine = name.map(str::to_owned);
    }

    /// Reports an integral counter for the stage currently running.
    pub fn count(&mut self, name: &str, value: u64) {
        self.open.push((name.to_owned(), MetricValue::Int(value)));
    }

    /// Reports a ratio/rate counter for the stage currently running.
    pub fn ratio(&mut self, name: &str, value: f64) {
        self.open.push((name.to_owned(), MetricValue::Float(value)));
    }

    /// Runs one stage: times it, collects its counters, appends the
    /// record, and returns the stage output.
    pub fn run_stage<I, O>(&mut self, stage: Stage<I, O>, input: I) -> Result<O, SynthError> {
        let start = Instant::now();
        let out = (stage.run)(self, input);
        let wall = start.elapsed();
        let counters = std::mem::take(&mut self.open);
        self.trace.push(StageRecord {
            stage: stage.name,
            machine: self.machine.clone(),
            wall,
            counters,
        });
        out
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &SynthTrace {
        &self.trace
    }

    /// Consumes the context, yielding its trace.
    pub fn into_trace(self) -> SynthTrace {
        self.trace
    }
}

// ---------------------------------------------------------------------
// Per-CFSM stages.
// ---------------------------------------------------------------------

fn stage_chi(ctx: &mut SynthCtx<'_>, cfsm: &Cfsm) -> Result<ReactiveFn, SynthError> {
    let rf = ReactiveFn::build(cfsm);
    let st = rf.bdd().stats();
    ctx.count("bdd_nodes", rf.size() as u64);
    ctx.count("mk_calls", st.mk_calls);
    ctx.count("unique_entries", st.unique_entries);
    ctx.count("cache_lookups", st.cache_lookups);
    ctx.count("cache_hits", st.cache_hits);
    ctx.ratio("cache_hit_rate", st.hit_rate());
    ctx.count("cache_evictions", st.cache_evictions);
    ctx.count("peak_live_nodes", st.peak_live_nodes);
    ctx.ratio("unique_probe_len", st.avg_probe_len());
    Ok(rf)
}

fn stage_sift(ctx: &mut SynthCtx<'_>, mut rf: ReactiveFn) -> Result<ReactiveFn, SynthError> {
    let nodes_before = rf.size() as u64;
    let swaps_before = rf.bdd().stats().swap_count;
    rf.sift_with_passes(ctx.opts.scheme, ctx.opts.sift_passes);
    let st = rf.bdd().stats();
    ctx.count("bdd_nodes_before", nodes_before);
    ctx.count("bdd_nodes_after", rf.size() as u64);
    ctx.count("swaps", st.swap_count - swaps_before);
    ctx.count("cache_lookups", st.cache_lookups);
    ctx.ratio("cache_hit_rate", st.hit_rate());
    ctx.count("reclaimed_nodes", st.reclaimed_nodes);
    ctx.count("peak_live_nodes", st.peak_live_nodes);
    ctx.count("memo_hits", st.memo_hits);
    Ok(rf)
}

fn record_sgraph(ctx: &mut SynthCtx<'_>, g: &SGraph) {
    let st = g.stats();
    ctx.count("nodes", st.nodes as u64);
    ctx.count("reachable", st.reachable as u64);
    ctx.count("tests", st.tests as u64);
    ctx.count("assigns", st.assigns as u64);
    ctx.count("depth", st.depth as u64);
}

fn stage_sgraph(ctx: &mut SynthCtx<'_>, rf: ReactiveFn) -> Result<SGraph, SynthError> {
    let g = build(&rf).map_err(SynthError::SgraphBuild)?;
    record_sgraph(ctx, &g);
    Ok(g)
}

fn stage_ite_chain(ctx: &mut SynthCtx<'_>, mut rf: ReactiveFn) -> Result<SGraph, SynthError> {
    let g = ite_chain(&mut rf);
    record_sgraph(ctx, &g);
    Ok(g)
}

fn stage_two_level(ctx: &mut SynthCtx<'_>, cfsm: &Cfsm) -> Result<SGraph, SynthError> {
    let g = two_level_sgraph(cfsm);
    record_sgraph(ctx, &g);
    Ok(g)
}

fn stage_collapse(ctx: &mut SynthCtx<'_>, g: SGraph) -> Result<SGraph, SynthError> {
    let before = g.stats();
    let c = collapse(&g, CollapseOptions::default());
    let after = c.stats();
    ctx.count("nodes_before", before.reachable as u64);
    ctx.count("nodes_after", after.reachable as u64);
    ctx.count("tests_before", before.tests as u64);
    ctx.count("tests_after", after.tests as u64);
    Ok(c)
}

#[allow(clippy::type_complexity)]
fn stage_compile(
    ctx: &mut SynthCtx<'_>,
    (cfsm, graph): (&Cfsm, &SGraph),
) -> Result<(VmProgram, ObjectCode), SynthError> {
    let program = compile(cfsm, graph, ctx.opts.buffering);
    let object = assemble(&program, ctx.opts.profile);
    ctx.count("code_bytes", u64::from(object.size_bytes()));
    ctx.count("ram_bytes", u64::from(program.ram_bytes()));
    Ok((program, object))
}

fn stage_emit(
    ctx: &mut SynthCtx<'_>,
    (cfsm, graph): (&Cfsm, &SGraph),
) -> Result<String, SynthError> {
    let c_code = emit_c(
        cfsm,
        graph,
        &CodegenOptions {
            buffering: ctx.opts.buffering,
            ..CodegenOptions::default()
        },
    );
    let st = measure_c(&c_code);
    ctx.count("lines", st.lines);
    ctx.count("bytes", st.bytes);
    ctx.count("gotos", st.gotos);
    Ok(c_code)
}

#[allow(clippy::type_complexity)]
fn stage_estimate(
    ctx: &mut SynthCtx<'_>,
    (cfsm, graph): (&Cfsm, &SGraph),
) -> Result<(Estimate, Option<u64>), SynthError> {
    let est = estimate(cfsm, graph, ctx.params, ctx.opts.buffering);
    let incompats = derive_incompatibilities(cfsm);
    let false_path_aware = (!incompats.is_empty())
        .then(|| max_cycles_false_path_aware(cfsm, graph, ctx.params, &incompats));
    ctx.count("est_size_bytes", est.size_bytes);
    ctx.count("est_min_cycles", est.min_cycles);
    ctx.count("est_max_cycles", est.max_cycles);
    ctx.count("est_ram_bytes", est.ram_bytes);
    ctx.count("incompatibilities", incompats.len() as u64);
    if let Some(fp) = false_path_aware {
        ctx.count("est_max_cycles_false_path_aware", fp);
    }
    Ok((est, false_path_aware))
}

fn stage_measure(
    ctx: &mut SynthCtx<'_>,
    (program, object): (&VmProgram, &ObjectCode),
) -> Result<Measured, SynthError> {
    let bounds = analyze(program, object);
    let measured = Measured {
        size_bytes: u64::from(object.size_bytes()),
        min_cycles: bounds.min_cycles,
        max_cycles: bounds.max_cycles,
        ram_bytes: u64::from(program.ram_bytes()),
    };
    ctx.count("min_cycles", measured.min_cycles);
    ctx.count("max_cycles", measured.max_cycles);
    Ok(measured)
}

#[allow(clippy::type_complexity)]
fn stage_verify(
    ctx: &mut SynthCtx<'_>,
    net: &Network,
) -> Result<(VerifyReport, Vec<Vec<Incompat>>), SynthError> {
    let vopts = VerifyOptions {
        node_budget: ctx.opts.verify_node_budget,
        reorder_threshold: ctx.opts.verify_reorder_threshold,
        ..VerifyOptions::default()
    };
    let mut v = Verifier::run(net, &vopts).map_err(SynthError::Verify)?;
    let stats = v.stats();
    ctx.count("iterations", stats.iterations);
    ctx.count("image_steps", stats.image_steps);
    ctx.count("peak_frontier_nodes", stats.peak_frontier_nodes);
    ctx.count("reached_nodes", stats.reached_nodes);
    if let Some(states) = stats.reached_states {
        ctx.count("reached_states", states.min(u128::from(u64::MAX)) as u64);
    }
    ctx.count("peak_live_nodes", stats.peak_live_nodes);
    ctx.count("andex_lookups", stats.andex_lookups);
    ctx.count("andex_hits", stats.andex_hits);
    ctx.count("cube_quant_calls", stats.cube_quant_calls);
    ctx.count("constrain_calls", stats.constrain_calls);
    ctx.count("constrain_reduced_nodes", stats.constrain_reduced_nodes);
    ctx.count("mid_reach_reorders", stats.mid_reach_reorders);
    let incompats = if ctx.opts.verify_refine_estimates {
        (0..net.cfsms().len())
            .map(|i| v.presence_incompats(i))
            .collect()
    } else {
        Vec::new()
    };
    let report = v.report();
    ctx.count(
        "lost_possible",
        report.lost_events.iter().filter(|e| e.possible).count() as u64,
    );
    ctx.count("dead_transitions", report.dead_transitions.len() as u64);
    ctx.count("deadlock", u64::from(report.deadlock.is_some()));
    Ok((report, incompats))
}

/// Property checking as its own instrumented stage: rerun the verifier
/// with ring storage on, evaluate the suite, and record the
/// counterexample counters ISSUE wiring asks for.
fn stage_prop(
    ctx: &mut SynthCtx<'_>,
    (net, props): (&Network, &[Property]),
) -> Result<(VerifyReport, PropReport), SynthError> {
    let vopts = VerifyOptions {
        node_budget: ctx.opts.verify_node_budget,
        reorder_threshold: ctx.opts.verify_reorder_threshold,
        trace_rings: true,
        ..VerifyOptions::default()
    };
    let mut v = Verifier::run(net, &vopts).map_err(SynthError::Verify)?;
    let report = v.report();
    let pr = v.check_properties(props);
    ctx.count("properties_checked", pr.checked);
    ctx.count("violations", pr.violations);
    ctx.count("max_trace_len", pr.max_trace_len);
    ctx.count("preimage_nodes", pr.preimage_nodes);
    ctx.count("trace_rings_stored", pr.rings_stored);
    ctx.count("trace_rings_complete", u64::from(pr.rings_complete));
    ctx.count(
        "deadlock_trace_len",
        report
            .deadlock
            .as_ref()
            .and_then(|w| w.trace.as_ref())
            .map_or(0, |t| t.len() as u64),
    );
    Ok((report, pr))
}

/// Runs verification plus a property suite as an instrumented `prop`
/// stage and returns the verify report, the property verdicts, and the
/// stage trace. Separate from [`synthesize_network_staged`] because
/// [`SynthesisOptions`](crate::SynthesisOptions) is `Copy` and cannot
/// carry a suite; `polis verify --props` and `polis prop` route here.
///
/// # Errors
///
/// [`SynthFailure`] with the partial trace when the traversal exceeds
/// the node budget.
pub fn verify_properties_staged(
    net: &Network,
    props: &[Property],
    opts: &crate::SynthesisOptions,
) -> Result<(VerifyReport, PropReport, SynthTrace), SynthFailure> {
    let params = calibrate(opts.profile);
    let mut ctx = SynthCtx::new(opts, &params);
    let result = ctx.run_stage(
        Stage {
            name: "prop",
            run: stage_prop,
        },
        (net, props),
    );
    let trace = ctx.into_trace();
    match result {
        Ok((report, pr)) => Ok((report, pr, trace)),
        Err(error) => Err(SynthFailure { error, trace }),
    }
}

#[allow(clippy::type_complexity)]
fn stage_refine(
    ctx: &mut SynthCtx<'_>,
    (net, machines, reach_incompats): (&Network, &mut [CfsmSynthesis], &[Vec<Incompat>]),
) -> Result<(), SynthError> {
    let mut refined = 0u64;
    let mut tightened = 0u64;
    for (i, m) in net.cfsms().iter().enumerate() {
        let mut merged = derive_incompatibilities(m);
        for inc in &reach_incompats[i] {
            if !merged.contains(inc) {
                merged.push(*inc);
            }
        }
        if merged.is_empty() {
            continue;
        }
        let bound = max_cycles_false_path_aware(m, &machines[i].graph, ctx.params, &merged);
        // Never looser than the derived-only bound (or the plain
        // estimate when no derived bound exists).
        let baseline = machines[i]
            .max_cycles_false_path_aware
            .unwrap_or(machines[i].estimate.max_cycles);
        let reach_aware = bound.min(baseline);
        machines[i].max_cycles_reach_aware = Some(reach_aware);
        refined += 1;
        if reach_aware < baseline {
            tightened += 1;
        }
    }
    ctx.count("machines_refined", refined);
    ctx.count("bounds_tightened", tightened);
    Ok(())
}

fn stage_rtos(
    ctx: &mut SynthCtx<'_>,
    (net, config): (&Network, &RtosConfig),
) -> Result<String, SynthError> {
    let rtos_c = emit_rtos_c(net, config);
    let st = measure_c(&rtos_c);
    ctx.count("tasks", net.cfsms().len() as u64);
    ctx.count("lines", st.lines);
    ctx.count("bytes", st.bytes);
    Ok(rtos_c)
}

// ---------------------------------------------------------------------
// Staged drivers.
// ---------------------------------------------------------------------

/// Runs the full per-CFSM pipeline for the style selected in
/// `ctx.opts`, recording every stage into the context's trace.
pub fn synthesize_cfsm(ctx: &mut SynthCtx<'_>, cfsm: &Cfsm) -> Result<CfsmSynthesis, SynthError> {
    ctx.set_machine(Some(cfsm.name()));
    let start = Instant::now();
    let graph = match ctx.opts.style {
        ImplStyle::DecisionGraph => {
            let rf = ctx.run_stage(
                Stage {
                    name: "chi",
                    run: stage_chi,
                },
                cfsm,
            )?;
            let rf = ctx.run_stage(
                Stage {
                    name: "sift",
                    run: stage_sift,
                },
                rf,
            )?;
            let g = ctx.run_stage(
                Stage {
                    name: "sgraph",
                    run: stage_sgraph,
                },
                rf,
            )?;
            if ctx.opts.collapse {
                ctx.run_stage(
                    Stage {
                        name: "collapse",
                        run: stage_collapse,
                    },
                    g,
                )?
            } else {
                g
            }
        }
        ImplStyle::IteChain => {
            let rf = ctx.run_stage(
                Stage {
                    name: "chi",
                    run: stage_chi,
                },
                cfsm,
            )?;
            ctx.run_stage(
                Stage {
                    name: "sgraph",
                    run: stage_ite_chain,
                },
                rf,
            )?
        }
        ImplStyle::TwoLevel => ctx.run_stage(
            Stage {
                name: "sgraph",
                run: stage_two_level,
            },
            cfsm,
        )?,
    };
    let (program, object) = ctx.run_stage(
        Stage {
            name: "compile",
            run: stage_compile,
        },
        (cfsm, &graph),
    )?;
    // Matches the historical definition: BDD + sift + build + compile.
    let synthesis_time = start.elapsed();
    let c_code = ctx.run_stage(
        Stage {
            name: "emit_c",
            run: stage_emit,
        },
        (cfsm, &graph),
    )?;
    let (est, max_cycles_false_path_aware) = ctx.run_stage(
        Stage {
            name: "estimate",
            run: stage_estimate,
        },
        (cfsm, &graph),
    )?;
    let measured = ctx.run_stage(
        Stage {
            name: "measure",
            run: stage_measure,
        },
        (&program, &object),
    )?;
    ctx.set_machine(None);
    Ok(CfsmSynthesis {
        graph,
        c_code,
        program,
        object,
        estimate: est,
        max_cycles_false_path_aware,
        max_cycles_reach_aware: None,
        measured,
        synthesis_time,
    })
}

/// Runs the per-CFSM pipeline over every machine of `net` on up to
/// `jobs` scoped worker threads, then the network-level RTOS stage.
///
/// Each worker owns the BDD managers of the machines it claims (one
/// manager per [`ReactiveFn`]); nothing is shared between workers except
/// the read-only network, options, and cost parameters. Results and
/// per-machine traces are merged in network order, so the returned
/// [`NetworkSynthesis`] — including every byte of generated C — is
/// identical for every `jobs` value. Only wall-clock timings vary.
///
/// When `opts.verify` is set, a network-level `verify` stage runs the
/// symbolic reachability engine after the machines are synthesized (and
/// a `refine` stage feeds the reachability invariant back into the
/// false-path estimates when `opts.verify_refine_estimates` is also
/// set). On any failure the [`SynthFailure`] carries every stage record
/// completed up to the abort, so callers can still flush the trace.
pub fn synthesize_network_staged(
    net: &Network,
    opts: &SynthesisOptions,
    rtos: &RtosConfig,
    jobs: usize,
) -> Result<(NetworkSynthesis, SynthTrace), SynthFailure> {
    let params = calibrate(opts.profile);
    let cfsms = net.cfsms();
    let n = cfsms.len();
    let jobs = jobs.clamp(1, n.max(1));
    let start = Instant::now();

    type Slot = Result<(CfsmSynthesis, SynthTrace), (SynthError, SynthTrace)>;
    let run_one = |i: usize| -> Slot {
        let mut ctx = SynthCtx::new(opts, &params);
        let r = synthesize_cfsm(&mut ctx, &cfsms[i]);
        let t = ctx.into_trace();
        match r {
            Ok(s) => Ok((s, t)),
            Err(e) => Err((e, t)),
        }
    };

    let mut slots: Vec<Option<Slot>> = (0..n).map(|_| None).collect();
    if jobs <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_one(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let done = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    let next = &next;
                    let run_one = &run_one;
                    scope.spawn(move || {
                        let mut claimed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            claimed.push((i, run_one(i)));
                        }
                        claimed
                    })
                })
                .collect();
            let mut done = Vec::new();
            for w in workers {
                done.extend(w.join().expect("synthesis worker panicked"));
            }
            done
        });
        for (i, r) in done {
            slots[i] = Some(r);
        }
    }

    let mut machines = Vec::with_capacity(n);
    let mut trace = SynthTrace::new();
    for slot in slots {
        match slot.expect("every machine index was claimed") {
            Ok((synth, t)) => {
                machines.push(synth);
                trace.extend(t);
            }
            Err((error, t)) => {
                trace.extend(t);
                return Err(SynthFailure { error, trace });
            }
        }
    }
    let synthesis_time = start.elapsed();

    let mut verify_report = None;
    if opts.verify {
        let mut net_ctx = SynthCtx::new(opts, &params);
        let verified = net_ctx.run_stage(
            Stage {
                name: "verify",
                run: stage_verify,
            },
            net,
        );
        trace.extend(net_ctx.into_trace());
        let (report, reach_incompats) = match verified {
            Ok(v) => v,
            Err(error) => return Err(SynthFailure { error, trace }),
        };
        verify_report = Some(report);
        if opts.verify_refine_estimates {
            let mut net_ctx = SynthCtx::new(opts, &params);
            let refined = net_ctx.run_stage(
                Stage {
                    name: "refine",
                    run: stage_refine,
                },
                (net, machines.as_mut_slice(), reach_incompats.as_slice()),
            );
            trace.extend(net_ctx.into_trace());
            if let Err(error) = refined {
                return Err(SynthFailure { error, trace });
            }
        }
    }

    let mut net_ctx = SynthCtx::new(opts, &params);
    let rtos_result = net_ctx.run_stage(
        Stage {
            name: "rtos",
            run: stage_rtos,
        },
        (net, rtos),
    );
    trace.extend(net_ctx.into_trace());
    let rtos_c = match rtos_result {
        Ok(c) => c,
        Err(error) => return Err(SynthFailure { error, trace }),
    };

    let total_rom = machines.iter().map(|m| m.measured.size_bytes).sum::<u64>() + RTOS_ROM_BYTES;
    let total_ram =
        machines.iter().map(|m| m.measured.ram_bytes).sum::<u64>() + RTOS_RAM_PER_TASK * n as u64;
    Ok((
        NetworkSynthesis {
            machines,
            verify: verify_report,
            rtos_c,
            total_rom,
            total_ram,
            synthesis_time,
        },
        trace,
    ))
}
