/root/repo/target/debug/deps/polis-c6d907c590f28894.d: src/bin/polis.rs Cargo.toml

/root/repo/target/debug/deps/libpolis-c6d907c590f28894.rmeta: src/bin/polis.rs Cargo.toml

src/bin/polis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
