/root/repo/target/debug/deps/execution-0848984127e52659.d: crates/bench/benches/execution.rs

/root/repo/target/debug/deps/libexecution-0848984127e52659.rmeta: crates/bench/benches/execution.rs

crates/bench/benches/execution.rs:
