/root/repo/target/debug/deps/ablation_collapse-e40dcbefe7e42778.d: crates/bench/src/bin/ablation_collapse.rs

/root/repo/target/debug/deps/libablation_collapse-e40dcbefe7e42778.rmeta: crates/bench/src/bin/ablation_collapse.rs

crates/bench/src/bin/ablation_collapse.rs:
