/root/repo/target/debug/deps/baselines-f8c65a798504422c.d: tests/baselines.rs

/root/repo/target/debug/deps/baselines-f8c65a798504422c: tests/baselines.rs

tests/baselines.rs:
