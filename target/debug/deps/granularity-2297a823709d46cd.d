/root/repo/target/debug/deps/granularity-2297a823709d46cd.d: crates/bench/src/bin/granularity.rs

/root/repo/target/debug/deps/granularity-2297a823709d46cd: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:
