/root/repo/target/debug/deps/sched_prop-8687899368d90fe5.d: crates/rtos/tests/sched_prop.rs Cargo.toml

/root/repo/target/debug/deps/libsched_prop-8687899368d90fe5.rmeta: crates/rtos/tests/sched_prop.rs Cargo.toml

crates/rtos/tests/sched_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
