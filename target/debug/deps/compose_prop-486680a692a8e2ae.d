/root/repo/target/debug/deps/compose_prop-486680a692a8e2ae.d: crates/cfsm/tests/compose_prop.rs

/root/repo/target/debug/deps/compose_prop-486680a692a8e2ae: crates/cfsm/tests/compose_prop.rs

crates/cfsm/tests/compose_prop.rs:
