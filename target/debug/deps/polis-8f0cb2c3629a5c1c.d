/root/repo/target/debug/deps/polis-8f0cb2c3629a5c1c.d: src/bin/polis.rs Cargo.toml

/root/repo/target/debug/deps/libpolis-8f0cb2c3629a5c1c.rmeta: src/bin/polis.rs Cargo.toml

src/bin/polis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
