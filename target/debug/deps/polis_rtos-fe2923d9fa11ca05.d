/root/repo/target/debug/deps/polis_rtos-fe2923d9fa11ca05.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_rtos-fe2923d9fa11ca05.rmeta: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs Cargo.toml

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
