//! Codesign finite state machines (CFSMs) and networks of CFSMs.
//!
//! The CFSM model (Balarin et al., Section II-D) is a *globally asynchronous,
//! locally synchronous* (GALS) network of extended finite state machines
//! communicating through events:
//!
//! * an **event** occurs at a point in time and may carry a value from a
//!   finite domain ([`Signal`]); a one-place buffer per (receiver, event)
//!   holds the presence flag and the value, so an event re-emitted before
//!   detection is *overwritten and lost*;
//! * each CFSM ([`Cfsm`]) atomically detects a snapshot of its input events
//!   and computes its **transition function** — a synchronous map from input
//!   events/values and state to output events/values and next state;
//! * the network is asynchronous: reaction and sensing delays are
//!   unconstrained (> 0 and ≥ 0 respectively), which the RTOS layer models.
//!
//! For synthesis, a CFSM's transition function is decomposed (Section
//! III-B1) into *tests* ([`TestDef`]), *actions* ([`Action`]), and a
//! *reactive function* mapping subsets of tests to subsets of actions,
//! represented by the BDD of its characteristic function
//! ([`ReactiveFn`]).
//!
//! The [`compose`] module builds the synchronous product of a network — the
//! "single FSM" implementation style of the Esterel v3 compiler, used as a
//! baseline in the paper's Table III.
//!
//! # Examples
//!
//! The paper's Fig. 1 `simple` module:
//!
//! ```
//! use polis_cfsm::Cfsm;
//! use polis_expr::{Expr, Type, Value};
//!
//! # fn main() -> Result<(), polis_cfsm::CfsmError> {
//! let mut b = Cfsm::builder("simple");
//! b.input_valued("c", Type::uint(8));
//! b.output_pure("y");
//! b.state_var("a", Type::uint(8), Value::Int(0));
//! let s0 = b.ctrl_state("awaiting");
//! let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
//! b.transition(s0, s0)
//!     .when_present("c")
//!     .when_test(eq)
//!     .assign("a", Expr::int(0))
//!     .emit("y")
//!     .done();
//! b.transition(s0, s0)
//!     .when_present("c")
//!     .when_not_test(eq)
//!     .assign("a", Expr::var("a").add(Expr::int(1)))
//!     .done();
//! let simple = b.build()?;
//! assert_eq!(simple.num_transitions(), 2);
//! # Ok(())
//! # }
//! ```

mod chi;
pub mod compose;
mod machine;
mod network;
mod signal;

pub use chi::{OrderScheme, ReactiveFn, RfVar, RfVarKind, Side, VarLoc};
pub use machine::{
    Action, Cfsm, CfsmBuilder, CfsmError, CfsmState, Emission, Guard, ReactError, Reaction,
    StateId, StateVar, TestDef, TestId, Transition, TransitionBuilder,
};
pub use network::{BufferRef, Network, NetworkError};
pub use signal::{emit_flag_name, present_flag_name, value_var_name, Signal};
