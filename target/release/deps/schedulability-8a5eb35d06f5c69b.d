/root/repo/target/release/deps/schedulability-8a5eb35d06f5c69b.d: crates/bench/src/bin/schedulability.rs

/root/repo/target/release/deps/schedulability-8a5eb35d06f5c69b: crates/bench/src/bin/schedulability.rs

crates/bench/src/bin/schedulability.rs:
