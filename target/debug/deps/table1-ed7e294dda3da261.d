/root/repo/target/debug/deps/table1-ed7e294dda3da261.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-ed7e294dda3da261.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
