//! The evaluation workloads, rebuilt as synthetic equivalents of the
//! paper's industrial examples (see DESIGN.md, substitution 4).
//!
//! * [`dashboard`] — "a subset of the functionality of a dashboard
//!   controller, that implements the computational chain from the wheel
//!   and engine speed sensors to the pulse width-modulated outputs
//!   controlling the gauges" (Section V-A), eight CFSMs;
//! * [`shock_absorber`] — the Section V-B controller: sensor acquisition,
//!   filtering, road estimation, mode logic, actuator drive, watchdog;
//! * [`seat_belt`] — the classic POLIS tutorial example: five seconds
//!   after the key turns with the belt off, sound the alarm;
//! * [`simple`] — the paper's Fig. 1 module.
//!
//! All are written in the [`polis_lang`] textual format, so the front end
//! is exercised on every path through the evaluation.

use polis_cfsm::{Cfsm, Network};
use polis_lang::{parse_module, parse_network};

/// The paper's Fig. 1 `simple` module.
pub fn simple() -> Cfsm {
    parse_module(
        r#"
        // Fig. 1: await c; if a == ?c then { a := 0; emit y } else a := a+1
        module simple {
            input c : u8;
            output y;
            var a : u8 := 0;
            state awaiting;
            from awaiting to awaiting when c && [a == ?c] do { a := 0; emit y; }
            from awaiting to awaiting when c && ![a == ?c] do { a := a + 1; }
        }
        "#,
    )
    .expect("fig. 1 module parses")
}

/// The dashboard controller subset (Table I/II/III workload).
///
/// Chain: wheel/engine pulse counters windowed by a timebase, speed and
/// RPM conversion, odometer accumulation, fuel-level filtering, and two
/// PWM duty generators for the gauges.
pub fn dashboard() -> Network {
    parse_network(
        "dashboard",
        r#"
        // Wheel pulse counter: counts sensor pulses per timebase window,
        // saturating into a distinct control state near the counter cap.
        module frc {
            input wheel_pulse, timebase;
            output wticks : u8;
            var cnt : u8 := 0;
            state counting, saturated;
            from counting to counting when timebase do { emit wticks(cnt); cnt := 0; }
            from counting to saturated when wheel_pulse && [cnt >= 200] ;
            from counting to counting when wheel_pulse do { cnt := cnt + 1; }
            from saturated to counting when timebase do { emit wticks(cnt); cnt := 0; }
        }

        // Engine pulse counter: same structure on the engine sensor.
        module rpc {
            input eng_pulse, timebase;
            output eticks : u8;
            var cnt : u8 := 0;
            state counting, saturated;
            from counting to counting when timebase do { emit eticks(cnt); cnt := 0; }
            from counting to saturated when eng_pulse && [cnt >= 200] ;
            from counting to counting when eng_pulse do { cnt := cnt + 1; }
            from saturated to counting when timebase do { emit eticks(cnt); cnt := 0; }
        }

        // Speedometer conversion: ticks-per-window to km/h.
        module speedo {
            input wticks : u8;
            output speed : u16;
            state s;
            from s to s when wticks do { emit speed(?wticks * 3); }
        }

        // Tachometer conversion: ticks-per-window to RPM/100.
        module tach {
            input eticks : u8;
            output rpm : u16;
            state s;
            from s to s when eticks do { emit rpm(?eticks * 6); }
        }

        // Odometer: accumulate wheel ticks, pulse every 100 tick-units.
        module odometer {
            input wticks : u8;
            output odo_pulse;
            var acc : u16 := 0;
            state s;
            from s to s when wticks && [acc + ?wticks >= 100]
                do { acc := acc + ?wticks - 100; emit odo_pulse; }
            from s to s when wticks do { acc := acc + ?wticks; }
        }

        // Fuel gauge: exponential smoothing of the sensor, low warning.
        // (CFSM actions read pre-reaction state, so the emission recomputes
        // the filtered value rather than naming the assigned variable.)
        module fuel {
            input fuel_sample : u8;
            output fuel_level : u8, low_fuel;
            var level : u8 := 128;
            state s;
            from s to s when fuel_sample && [(level * 3 + ?fuel_sample) / 4 < 20]
                do { level := (level * 3 + ?fuel_sample) / 4;
                     emit fuel_level((level * 3 + ?fuel_sample) / 4); emit low_fuel; }
            from s to s when fuel_sample
                do { level := (level * 3 + ?fuel_sample) / 4;
                     emit fuel_level((level * 3 + ?fuel_sample) / 4); }
        }

        // PWM duty generator for the speed gauge.
        module pwm_speed {
            input speed : u16;
            output duty_speed : u8;
            state s;
            from s to s when speed do { emit duty_speed(min(?speed / 2, 99)); }
        }

        // PWM duty generator for the fuel gauge.
        module pwm_fuel {
            input fuel_level : u8;
            output duty_fuel : u8;
            state s;
            from s to s when fuel_level do { emit duty_fuel(min(?fuel_level / 3, 99)); }
        }
        "#,
    )
    .expect("dashboard network parses")
}

/// The shock absorber controller (Section V-B workload).
///
/// Acquisition and filtering of a body-acceleration sensor, road-roughness
/// estimation over windows, damper mode selection by speed and roughness,
/// the valve actuator driver, and a watchdog.
pub fn shock_absorber() -> Network {
    parse_network(
        "shock_absorber",
        r#"
        // Acceleration acquisition: 3/4 exponential filter per sample.
        module acq {
            input acc_sample : i8;
            output acc_f : i8;
            var f : i8 := 0;
            state s;
            from s to s when acc_sample
                do { f := (f * 3 + ?acc_sample) / 4; emit acc_f(f); }
        }

        // Road roughness: count filtered-acceleration excursions per window.
        module road {
            input acc_f : i8, window;
            output roughness : u8;
            var bumps : u8 := 0;
            state s;
            from s to s when window do { emit roughness(bumps); bumps := 0; }
            from s to s when acc_f && [?acc_f > 12] do { bumps := bumps + 1; }
            from s to s when acc_f && [?acc_f < -12] do { bumps := bumps + 1; }
        }

        // Speed conditioning: hold the last sample, classify into bands.
        module speed_est {
            input speed_sample : u8;
            output spd_band : u8;
            var v : u8 := 0;
            state s;
            from s to s when speed_sample && [?speed_sample >= 90]
                do { v := ?speed_sample; emit spd_band(2); }
            from s to s when speed_sample && [?speed_sample >= 40]
                do { v := ?speed_sample; emit spd_band(1); }
            from s to s when speed_sample
                do { v := ?speed_sample; emit spd_band(0); }
        }

        // Damper mode logic: comfort / normal / sport.
        module mode {
            input roughness : u8, spd_band : u8;
            output mode_cmd : u8;
            var rough : u8 := 0;
            state comfort, normal, sport;
            from comfort to sport when spd_band && [?spd_band >= 2]
                do { emit mode_cmd(2); }
            from comfort to normal when roughness && [?roughness >= 4]
                do { rough := ?roughness; emit mode_cmd(1); }
            from comfort to comfort when roughness
                do { rough := ?roughness; }
            from normal to sport when spd_band && [?spd_band >= 2]
                do { emit mode_cmd(2); }
            from normal to comfort when roughness && [?roughness < 2]
                do { rough := ?roughness; emit mode_cmd(0); }
            from normal to normal when roughness
                do { rough := ?roughness; }
            from sport to normal when spd_band && [?spd_band < 2]
                do { emit mode_cmd(1); }
        }

        // Valve driver: duty per mode, refreshed on the PWM timer.
        module act {
            input mode_cmd : u8, pwm_tick;
            output valve : u8;
            var duty : u8 := 30;
            state s;
            from s to s when mode_cmd && [?mode_cmd >= 2] do { duty := 90; }
            from s to s when mode_cmd && [?mode_cmd == 1] do { duty := 60; }
            from s to s when mode_cmd do { duty := 30; }
            from s to s when pwm_tick do { emit valve(duty); }
        }

        // Watchdog: alarm if a whole supervision window passes without
        // valve activity.
        module watchdog {
            input valve : u8, wd_tick;
            output wd_alarm;
            state fed, starving;
            from fed to fed when valve;
            from fed to starving when wd_tick;
            from starving to fed when valve;
            from starving to fed when wd_tick do { emit wd_alarm; }
        }
        "#,
    )
    .expect("shock absorber network parses")
}

/// The seat-belt alarm (classic POLIS tutorial example): after the key
/// turns on, unless the belt is fastened within five timer ticks, sound
/// the alarm; key-off or fastening resets.
pub fn seat_belt() -> Network {
    parse_network(
        "seat_belt",
        r#"
        module belt_control {
            input key_on, key_off, belt_on, tick;
            output alarm_on, alarm_off;
            var t : u8 := 0;
            state off, waiting, alarm;
            from off to waiting when key_on do { t := 0; }
            from waiting to off when key_off;
            from waiting to off when belt_on;
            from waiting to alarm when tick && [t >= 4] do { emit alarm_on; }
            from waiting to waiting when tick do { t := t + 1; }
            from alarm to off when belt_on do { emit alarm_off; }
            from alarm to off when key_off do { emit alarm_off; }
        }
        "#,
    )
    .expect("seat belt network parses")
}

/// The property suite shipped with each example workload, in `.pol`
/// `properties` syntax. Each suite has at least one `assert never` and
/// one `assert reachable`; the expected verdicts are pinned by the
/// `props` integration tests and gated by `scripts/ci.sh`. Deliberately
/// not all-green — the violated assertions exercise the counterexample
/// trace decoder on every run. Unknown names get an empty suite.
pub fn property_suite(name: &str) -> &'static str {
    match name {
        // `simple` is a single-state machine, so the interesting atoms
        // are event presences. A delivered `c` violates the second
        // assertion immediately (shortest possible counterexample).
        "simple" => {
            "properties {
    assert reachable simple.c;
    assert never simple@awaiting && simple.c;
}
"
        }
        // The alarm state is genuinely reachable; control states are
        // exclusive; and nothing stops the driver fastening the belt
        // while the alarm is already sounding (violated, with a trace
        // through key_on and five ticks).
        "seat_belt" => {
            "properties {
    assert reachable belt_control@alarm;
    assert never belt_control@off && belt_control@waiting;
    assert never belt_control@alarm && belt_control.belt_on;
}
"
        }
        // Sport mode is reachable at speed; mode states are exclusive;
        // the watchdog can starve while a PWM tick is pending at the
        // actuator (violated — deliveries are independent of reactions).
        "shock_absorber" => {
            "properties {
    assert reachable mode@sport;
    assert never mode@comfort && mode@sport;
    assert never watchdog@starving && act.pwm_tick;
}
"
        }
        // Both pulse counters can saturate together; counter states are
        // exclusive; and one timebase reaction of `frc` emits `wticks`
        // into the speedometer and odometer buffers at once (violated).
        "dashboard" => {
            "properties {
    assert reachable frc@saturated && rpc@saturated;
    assert never frc@counting && frc@saturated;
    assert never speedo.wticks && odometer.wticks;
}
"
        }
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_rtos::{RtosConfig, Simulator, Stimulus};

    #[test]
    fn workloads_parse_and_connect() {
        let d = dashboard();
        assert_eq!(d.cfsms().len(), 8);
        assert!(d.internal_signals().contains(&"wticks".to_string()));
        assert!(d.primary_inputs().contains(&"wheel_pulse".to_string()));
        assert!(d.topo_order().is_some(), "dashboard chain is acyclic");

        let s = shock_absorber();
        assert_eq!(s.cfsms().len(), 6);
        assert!(s.topo_order().is_some());

        assert_eq!(seat_belt().cfsms().len(), 1);
    }

    #[test]
    fn dashboard_chain_produces_gauge_updates() {
        let net = dashboard();
        let mut sim = Simulator::build(&net, RtosConfig::default());
        let mut stim = Vec::new();
        // 12 wheel pulses and 18 engine pulses, then the timebase window.
        for i in 0..12u64 {
            stim.push(Stimulus::pure(i * 2_000, "wheel_pulse"));
        }
        for i in 0..18u64 {
            stim.push(Stimulus::pure(500 + i * 1_500, "eng_pulse"));
        }
        stim.push(Stimulus::pure(100_000, "timebase"));
        stim.push(Stimulus::valued(120_000, "fuel_sample", 30));
        sim.run(&stim);
        let find = |sig: &str| {
            sim.trace()
                .iter()
                .find(|t| t.signal == sig)
                .unwrap_or_else(|| panic!("no {sig} in {:?}", sim.trace()))
                .value
        };
        assert_eq!(find("wticks"), Some(12));
        assert_eq!(find("eticks"), Some(18));
        assert_eq!(find("speed"), Some(36));
        assert_eq!(find("rpm"), Some(108));
        assert_eq!(find("duty_speed"), Some(18));
        // Fuel filter: (128*3 + 30)/4 = 103
        assert_eq!(find("fuel_level"), Some(103));
        assert_eq!(find("duty_fuel"), Some(34));
    }

    #[test]
    fn seat_belt_alarm_fires_after_five_ticks() {
        let net = seat_belt();
        let mut sim = Simulator::build(&net, RtosConfig::default());
        let mut stim = vec![Stimulus::pure(0, "key_on")];
        for i in 0..5u64 {
            stim.push(Stimulus::pure(100_000 + i * 100_000, "tick"));
        }
        stim.push(Stimulus::pure(900_000, "belt_on"));
        sim.run(&stim);
        let sigs: Vec<&str> = sim.trace().iter().map(|t| t.signal.as_str()).collect();
        assert_eq!(sigs, vec!["alarm_on", "alarm_off"]);
    }

    #[test]
    fn seat_belt_no_alarm_when_fastened_in_time() {
        let net = seat_belt();
        let mut sim = Simulator::build(&net, RtosConfig::default());
        let stim = vec![
            Stimulus::pure(0, "key_on"),
            Stimulus::pure(100_000, "tick"),
            Stimulus::pure(200_000, "belt_on"),
            Stimulus::pure(300_000, "tick"),
            Stimulus::pure(400_000, "tick"),
            Stimulus::pure(500_000, "tick"),
            Stimulus::pure(600_000, "tick"),
            Stimulus::pure(700_000, "tick"),
        ];
        sim.run(&stim);
        assert!(sim.trace().iter().all(|t| t.signal != "alarm_on"));
    }

    #[test]
    fn shock_absorber_reacts_to_rough_road_at_speed() {
        let net = shock_absorber();
        let mut sim = Simulator::build(&net, RtosConfig::default());
        // High speed first (comfort -> sport immediately), then a PWM
        // tick produces a valve update at the sport duty.
        let stim = vec![
            Stimulus::valued(0, "speed_sample", 120),
            Stimulus::pure(200_000, "pwm_tick"),
        ];
        sim.run(&stim);
        let mode = sim
            .trace()
            .iter()
            .find(|t| t.signal == "mode_cmd")
            .expect("mode command");
        assert_eq!(mode.value, Some(2));
        let valve = sim
            .trace()
            .iter()
            .find(|t| t.signal == "valve")
            .expect("valve update");
        assert_eq!(valve.value, Some(90));
    }

    #[test]
    fn watchdog_alarms_without_activity() {
        let net = shock_absorber();
        let mut sim = Simulator::build(&net, RtosConfig::default());
        let stim = vec![
            Stimulus::pure(0, "wd_tick"),
            Stimulus::pure(100_000, "wd_tick"),
        ];
        sim.run(&stim);
        assert!(sim.trace().iter().any(|t| t.signal == "wd_alarm"));
    }
}
