//! A reduced ordered binary decision diagram (ROBDD) package with
//! complement edges, a cache-conscious struct-of-arrays node store, and
//! dynamic variable reordering by sifting.
//!
//! BDDs are the key intermediate representation of the POLIS software
//! synthesis flow (Balarin et al., Section II-B): the CFSM reactive function
//! is represented by the BDD of its characteristic function, optimized by
//! Rudell's sifting algorithm under the constraint that *no output variable
//! sifts above any input in its support*, and then translated one-to-one into
//! an s-graph (Section III-B).
//!
//! The package provides:
//!
//! * a [`Bdd`] manager with hash-consed nodes, an ITE operation cache, and
//!   the usual Boolean operations ([`Bdd::and`], [`Bdd::or`], [`Bdd::not`],
//!   [`Bdd::xor`], [`Bdd::ite`], ...);
//! * cofactor/restriction ([`Bdd::restrict`], [`Bdd::cofactors`]) and
//!   smoothing / existential quantification ([`Bdd::exists`]) used to build
//!   characteristic functions (Section II-C);
//! * a relational-product kernel for symbolic reachability:
//!   single-pass cube quantification ([`Bdd::exists_cube`],
//!   [`Bdd::forall_cube`]), combined conjoin-and-quantify
//!   ([`Bdd::and_exists`], with its own dedicated cache), the generalized
//!   cofactor ([`Bdd::constrain`]) and set difference ([`Bdd::and_not`]);
//! * mark-and-sweep garbage collection ([`Bdd::gc`]);
//! * in-place adjacent level swap and constrained sifting
//!   ([`Bdd::sift`], see the [`reorder`] module);
//! * multi-bit encodings of bounded-integer variables ([`encode`]).
//!
//! # Node layout and complement edges
//!
//! A [`NodeRef`] is a 4-byte handle packing an arena index with a
//! **complement bit** (Brace–Rudell–Bryant, as in CUDD): `ref = idx << 1 | c`
//! denotes the function at `idx`, negated iff `c` is set. There is a single
//! terminal (the constant **1** at index 0); `FALSE` is its complemented
//! handle. Canonical form forbids complemented *then* (hi) edges — [`mk`]
//! rewrites `(v, lo, ¬h)` into `¬(v, ¬lo, h)` — so a function and its
//! negation share every node and [`Bdd::not`] is an O(1) bit flip that
//! allocates nothing. `and`/`or`/`xor`/`iff`/`implies` all collapse onto one
//! normalized ITE, roughly halving live node count and doubling effective
//! operation-cache capacity.
//!
//! The arena itself is a **struct-of-arrays**: parallel `var`/`lo`/`hi`
//! columns ([`NODE_BYTES`] = 12 bytes per node) instead of an
//! array-of-structs, so traversals that only touch one field (level checks,
//! marking, refcounts) stay within one dense column. The free-list is
//! threaded through the `lo` column — a freed slot stores the next free
//! index where its low edge used to be — so reclamation needs no side
//! allocation at all.
//!
//! # Storage layer
//!
//! The kernel uses CUDD-style storage rather than the standard-library maps:
//!
//! * per-variable **open-addressing unique tables** (power-of-two capacity,
//!   linear probing, splitmix64-mixed keys, tombstone-free backward-shift
//!   deletion) for hash-consing;
//! * a **direct-mapped lossy operation cache** shared by ITE and the
//!   cofactor/quantification memos, plus a second dedicated cache for
//!   [`Bdd::and_exists`]; both invalidated in O(1) by bumping a
//!   generation counter (no rehash on reorder);
//! * a reusable **stamp buffer** for traversals (`size`, `support`, `gc`)
//!   so marking needs no per-call set allocation;
//! * a unified **slot-memo layer** ([`SlotMemo`]): a generation-stamped
//!   per-node-slot memo shared by `rename`, `and_exists` and `constrain`,
//!   probed before the persistent caches — two array reads instead of a
//!   hash, O(1) to reset per top-level call;
//! * **reference-count node reclamation** during sifting, so adjacent level
//!   swaps recycle dead slots through the free-list instead of growing the
//!   arena monotonically.
//!
//! Determinism: node indices depend only on the sequence of operations
//! performed on the manager — there is no randomized hashing and no
//! iteration over randomized containers — so a fixed call sequence yields
//! bit-identical results across runs and platforms.
//!
//! [`mk`]: Bdd::ite
//!
//! # Examples
//!
//! ```
//! use polis_bdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! let x = bdd.new_var("x");
//! let y = bdd.new_var("y");
//! let fx = bdd.var(x);
//! let fy = bdd.var(y);
//! let f = bdd.and(fx, fy);
//! assert!(bdd.eval(f, |v| v == x || v == y));
//! assert!(!bdd.eval(f, |v| v == x));
//! ```

pub mod encode;
pub mod reorder;

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// A BDD variable, identified by creation index (stable across reordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's creation index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A handle to a BDD function: an arena index in the upper 31 bits and a
/// complement bit in bit 0 (`idx << 1 | c`). Two handles are equal iff they
/// denote the same function; a handle and its complement share the same
/// arena node.
///
/// Handles stay valid across [`Bdd::sift`] (reordering rewrites nodes in
/// place) and across [`Bdd::gc`] *if* the handle was reachable from the roots
/// passed to `gc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(u32);

/// Bytes of node payload per arena slot across the `var`/`lo`/`hi` columns.
pub const NODE_BYTES: usize = 4 + 2 * std::mem::size_of::<NodeRef>();

// The whole point of the packed handle: it must stay a single machine word
// half so unique-table slots and cache keys stay cache-line dense.
const _: () = assert!(std::mem::size_of::<NodeRef>() == 4);
const _: () = assert!(NODE_BYTES == 12);

impl NodeRef {
    /// The constant true function: the regular handle of the one terminal.
    pub const TRUE: NodeRef = NodeRef(0);
    /// The constant false function: the complemented handle of the terminal.
    pub const FALSE: NodeRef = NodeRef(1);

    /// `true` if this is a handle of the terminal node (constant 0 or 1).
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// `true` if this is the true constant.
    pub fn is_true(self) -> bool {
        self == NodeRef::TRUE
    }

    /// `true` if this is the false constant.
    pub fn is_false(self) -> bool {
        self == NodeRef::FALSE
    }

    /// The arena index (shared by a handle and its complement).
    #[inline]
    fn idx(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// The complemented handle (`¬f`). O(1), allocates nothing.
    #[inline]
    fn complement(self) -> NodeRef {
        NodeRef(self.0 ^ 1)
    }

    /// The regular (complement bit cleared) handle of the same node.
    #[inline]
    fn regular(self) -> NodeRef {
        NodeRef(self.0 & !1)
    }

    /// The complement bit (0 or 1).
    #[inline]
    fn parity(self) -> u32 {
        self.0 & 1
    }

    /// This handle with its complement bit xor-ed by `p` (0 or 1).
    #[inline]
    fn xor_parity(self, p: u32) -> NodeRef {
        NodeRef(self.0 ^ p)
    }
}

const TERMINAL_VAR: u32 = u32::MAX;
/// Var-column sentinel for slots on the free-list (never a declared var:
/// `TERMINAL_VAR` caps the space and declaration would OOM long before).
const FREE_VAR: u32 = u32::MAX - 1;
/// Level assigned to terminals: below every variable.
const TERMINAL_LEVEL: u32 = u32::MAX;
/// Free-list terminator (an arena index, not a handle).
const NO_FREE: u32 = u32::MAX;

/// Sentinel marking a vacant unique-table or cache slot. Never a real node:
/// the arena is indexed by 31-bit handles and would overflow memory long
/// before reaching `u32::MAX / 2` entries.
const EMPTY: NodeRef = NodeRef(u32::MAX);

/// The splitmix64 finalizer, mirroring `polis-core::random`'s mixer
/// (inlined here: `polis-core` depends on this crate, so it cannot be a
/// runtime dependency). Used to spread unique-table and cache keys.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Open-addressing unique table
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct UniqueSlot {
    lo: NodeRef,
    hi: NodeRef,
    /// `EMPTY` marks a vacant slot.
    node: NodeRef,
}

const VACANT: UniqueSlot = UniqueSlot {
    lo: EMPTY,
    hi: EMPTY,
    node: EMPTY,
};

/// One variable's hash-consing table: open addressing with linear probing
/// over a power-of-two slot array. Keys are `(lo, hi)` with `hi` always a
/// regular edge (canonical form), values are regular node handles. Deletion
/// is tombstone-free (backward shift), so long-lived managers never
/// accumulate probe-chain garbage — important because sifting removes and
/// re-inserts entries constantly.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    slots: Vec<UniqueSlot>,
    len: usize,
    /// Probe counters feeding [`BddStats`].
    lookups: u64,
    probes: u64,
}

impl UniqueTable {
    fn new() -> UniqueTable {
        UniqueTable {
            slots: Vec::new(),
            len: 0,
            lookups: 0,
            probes: 0,
        }
    }

    #[inline]
    fn hash(lo: NodeRef, hi: NodeRef) -> u64 {
        mix64(((lo.0 as u64) << 32) | hi.0 as u64)
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Looks up the node for `(lo, hi)`, counting probes.
    fn get(&mut self, lo: NodeRef, hi: NodeRef) -> Option<NodeRef> {
        self.lookups += 1;
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(lo, hi) as usize) & mask;
        loop {
            self.probes += 1;
            let s = self.slots[i];
            if s.node == EMPTY {
                return None;
            }
            if s.lo == lo && s.hi == hi {
                return Some(s.node);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `(lo, hi) -> node`, returning the previous mapping if one
    /// existed (the reorder module asserts on that case).
    pub(crate) fn insert(&mut self, lo: NodeRef, hi: NodeRef, node: NodeRef) -> Option<NodeRef> {
        if self.slots.is_empty() || (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(lo, hi) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.node == EMPTY {
                self.slots[i] = UniqueSlot { lo, hi, node };
                self.len += 1;
                return None;
            }
            if s.lo == lo && s.hi == hi {
                let prev = s.node;
                self.slots[i].node = node;
                return Some(prev);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.len = 0;
        for s in old {
            if s.node != EMPTY {
                self.insert_rehash(s);
            }
        }
    }

    /// Insert during a rebuild: the key is known absent and load is low.
    fn insert_rehash(&mut self, s: UniqueSlot) {
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(s.lo, s.hi) as usize) & mask;
        while self.slots[i].node != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = s;
        self.len += 1;
    }

    /// Removes `(lo, hi)` by backward-shift deletion: later entries of the
    /// probe chain slide into the hole, so no tombstones are left behind.
    pub(crate) fn remove(&mut self, lo: NodeRef, hi: NodeRef) -> Option<NodeRef> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(lo, hi) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.node == EMPTY {
                return None;
            }
            if s.lo == lo && s.hi == hi {
                let removed = s.node;
                let mut j = i;
                loop {
                    j = (j + 1) & mask;
                    let t = self.slots[j];
                    if t.node == EMPTY {
                        break;
                    }
                    // `t` may fill the hole at `i` iff its home slot is not
                    // cyclically inside (i, j] — otherwise moving it would
                    // break its own probe chain.
                    let home = (Self::hash(t.lo, t.hi) as usize) & mask;
                    if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                        self.slots[i] = t;
                        i = j;
                    }
                }
                self.slots[i] = VACANT;
                self.len -= 1;
                return Some(removed);
            }
            i = (i + 1) & mask;
        }
    }

    /// Keeps only entries whose node satisfies `keep`; dropped nodes are
    /// pushed onto `freed`. Rebuilds in place at the current capacity.
    fn retain(&mut self, mut keep: impl FnMut(NodeRef) -> bool, freed: &mut Vec<NodeRef>) {
        if self.len == 0 {
            return;
        }
        let mut survivors: Vec<UniqueSlot> = Vec::with_capacity(self.len);
        for s in &mut self.slots {
            if s.node != EMPTY {
                if keep(s.node) {
                    survivors.push(*s);
                } else {
                    freed.push(s.node);
                }
                *s = VACANT;
            }
        }
        self.len = 0;
        for s in survivors {
            self.insert_rehash(s);
        }
    }

    /// Iterates live entries as `(lo, hi, node)` in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeRef, NodeRef, NodeRef)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.node != EMPTY)
            .map(|s| (s.lo, s.hi, s.node))
    }
}

// ---------------------------------------------------------------------------
// Direct-mapped lossy operation cache
// ---------------------------------------------------------------------------

const OP_ITE: u32 = 0;
const OP_RESTRICT0: u32 = 1;
const OP_RESTRICT1: u32 = 2;
const OP_EXISTS: u32 = 3;
const OP_FORALL: u32 = 4;
const OP_EXISTS_CUBE: u32 = 5;
const OP_FORALL_CUBE: u32 = 6;
const OP_CONSTRAIN: u32 = 7;
/// Sole op code of the dedicated AndExists cache (kept distinct anyway so a
/// misrouted probe can never alias a shared-cache entry).
const OP_ANDEX: u32 = 8;
/// Cross-call rename memo entries in the shared cache; keyed by the node
/// and the interned substitution map (see [`Bdd::rename`]).
const OP_RENAME: u32 = 9;

/// At most this many distinct substitution maps are interned for the
/// cross-call rename cache; later maps fall back to per-call memoization
/// only. Relational-image workloads use one fixed map per machine, far
/// below the cap.
const RENAME_MAP_CAP: usize = 64;

#[derive(Debug, Clone, Copy)]
struct OpSlot {
    op: u32,
    a: NodeRef,
    b: NodeRef,
    c: NodeRef,
    /// Entry is valid iff `gen == OpCache::gen`.
    gen: u32,
    result: NodeRef,
}

const OP_CACHE_MIN: usize = 1 << 8;
const OP_CACHE_MAX: usize = 1 << 20;

/// CUDD-style direct-mapped operation cache shared by ITE and the
/// cofactor/quantification memos. Collisions overwrite (lossy), so capacity
/// is bounded; a generation counter invalidates every entry in O(1) when the
/// variable order changes.
#[derive(Debug, Clone)]
struct OpCache {
    slots: Vec<OpSlot>,
    /// Valid entries in the current generation.
    len: usize,
    gen: u32,
    evictions: u64,
}

impl OpCache {
    fn new() -> OpCache {
        OpCache {
            slots: Vec::new(),
            len: 0,
            gen: 0,
            evictions: 0,
        }
    }

    fn stale_slot(&self) -> OpSlot {
        OpSlot {
            op: u32::MAX,
            a: EMPTY,
            b: EMPTY,
            c: EMPTY,
            gen: self.gen.wrapping_sub(1),
            result: EMPTY,
        }
    }

    #[inline]
    fn index(&self, op: u32, a: NodeRef, b: NodeRef, c: NodeRef) -> usize {
        let h = mix64(((op as u64) << 32) | a.0 as u64) ^ mix64(((b.0 as u64) << 32) | c.0 as u64);
        (h as usize) & (self.slots.len() - 1)
    }

    fn lookup(&self, op: u32, a: NodeRef, b: NodeRef, c: NodeRef) -> Option<NodeRef> {
        if self.slots.is_empty() {
            return None;
        }
        let s = self.slots[self.index(op, a, b, c)];
        (s.gen == self.gen && s.op == op && s.a == a && s.b == b && s.c == c).then_some(s.result)
    }

    fn insert(&mut self, op: u32, a: NodeRef, b: NodeRef, c: NodeRef, result: NodeRef) {
        if self.slots.is_empty() {
            self.slots = vec![self.stale_slot(); OP_CACHE_MIN];
        } else if self.len * 4 >= self.slots.len() * 3 && self.slots.len() < OP_CACHE_MAX {
            self.grow();
        }
        let i = self.index(op, a, b, c);
        let s = &mut self.slots[i];
        if s.gen == self.gen {
            if s.op == op && s.a == a && s.b == b && s.c == c {
                s.result = result;
                return;
            }
            self.evictions += 1;
        } else {
            self.len += 1;
        }
        *s = OpSlot {
            op,
            a,
            b,
            c,
            gen: self.gen,
            result,
        };
    }

    /// Doubling rehash. Each valid entry moves to `h & new_mask`, which is
    /// collision-free: entries at distinct old indices stay distinct mod the
    /// old capacity.
    fn grow(&mut self) {
        let stale = self.stale_slot();
        let old = std::mem::take(&mut self.slots);
        self.slots = vec![stale; old.len() * 2];
        for s in old {
            if s.gen == self.gen {
                let i = self.index(s.op, s.a, s.b, s.c);
                self.slots[i] = s;
            }
        }
    }

    /// Drops every current-generation entry for which `alive` rejects any
    /// key or the result, keeping the rest valid. Used by [`Bdd::gc`] so a
    /// collection only costs the entries that actually referenced dead
    /// nodes — computations over surviving nodes stay cached. Key slots
    /// holding non-handle tokens (variable ids, rename-map signatures,
    /// `EMPTY` padding) have stable meaning, so a spurious `alive` verdict
    /// on them can only drop a valid entry, never keep a wrong one.
    fn retain(&mut self, mut alive: impl FnMut(NodeRef) -> bool) {
        let stale_gen = self.gen.wrapping_sub(1);
        for s in &mut self.slots {
            if s.gen == self.gen && !(alive(s.a) && alive(s.b) && alive(s.c) && alive(s.result)) {
                s.gen = stale_gen;
                self.len -= 1;
            }
        }
    }

    /// O(1) whole-cache invalidation by bumping the generation counter.
    fn invalidate(&mut self) {
        self.len = 0;
        if self.gen == u32::MAX {
            // Generation wrap: physically reset so ancient entries cannot
            // masquerade as generation-0 entries.
            self.gen = 0;
            let stale = self.stale_slot();
            for s in &mut self.slots {
                *s = stale;
            }
        } else {
            self.gen += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Reusable stamp buffer for traversals
// ---------------------------------------------------------------------------

/// A generation-stamped visited set over node indices: `mark` is O(1) and a
/// new traversal is started by bumping the generation, with no clearing and
/// no per-call allocation once the buffer is warm. Marking is by arena
/// index, so a handle and its complement mark the same physical node.
#[derive(Debug, Clone, Default)]
struct Marks {
    stamp: Vec<u32>,
    gen: u32,
}

impl Marks {
    /// Begins a fresh pass able to mark node indices `< n`.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.gen == u32::MAX {
            self.gen = 1;
            for s in &mut self.stamp {
                *s = 0;
            }
        } else {
            self.gen += 1;
        }
    }

    /// Marks `n`; returns `true` if it was not yet marked this pass.
    #[inline]
    fn mark(&mut self, n: NodeRef) -> bool {
        let s = &mut self.stamp[n.idx()];
        if *s == self.gen {
            false
        } else {
            *s = self.gen;
            true
        }
    }

    #[inline]
    fn is_marked(&self, n: NodeRef) -> bool {
        self.stamp[n.idx()] == self.gen
    }
}

/// The unified slot-memo layer: a generation-stamped memo slot per node
/// index, shared (as three independent instances) by [`Bdd::rename`],
/// [`Bdd::and_exists`] and [`Bdd::constrain`]. Each pass is O(1) to begin
/// and probes are a couple of dense array reads instead of a hash lookup.
///
/// The slot index is the recursion operand's arena index, which always
/// precedes `begin`'s bound (recursion operands are cofactors of the
/// original inputs, never freshly built results). Up to three extra key
/// operands (`k1..k3`, unused ones pinned to [`EMPTY`]) disambiguate
/// entries that share a slot; a slot holds one entry, so colliding keys
/// simply overwrite — lossy is fine, the persistent [`OpCache`] layer
/// backs every user of this memo.
#[derive(Debug, Clone, Default)]
struct SlotMemo {
    stamp: Vec<u32>,
    k1: Vec<NodeRef>,
    k2: Vec<NodeRef>,
    k3: Vec<NodeRef>,
    val: Vec<NodeRef>,
    gen: u32,
}

impl SlotMemo {
    /// Begins a fresh pass able to memoize node indices `< n`.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.k1.resize(n, EMPTY);
            self.k2.resize(n, EMPTY);
            self.k3.resize(n, EMPTY);
            self.val.resize(n, NodeRef::FALSE);
        }
        if self.gen == u32::MAX {
            self.gen = 1;
            for s in &mut self.stamp {
                *s = 0;
            }
        } else {
            self.gen += 1;
        }
    }

    #[inline]
    fn get(&self, slot: usize, a: NodeRef, b: NodeRef, c: NodeRef) -> Option<NodeRef> {
        if self.stamp[slot] == self.gen
            && self.k1[slot] == a
            && self.k2[slot] == b
            && self.k3[slot] == c
        {
            Some(self.val[slot])
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, slot: usize, a: NodeRef, b: NodeRef, c: NodeRef, r: NodeRef) {
        self.stamp[slot] = self.gen;
        self.k1[slot] = a;
        self.k2[slot] = b;
        self.k3[slot] = c;
        self.val[slot] = r;
    }
}

// ---------------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------------

/// A reduced ordered BDD manager.
///
/// All functions created by one manager share its node store and variable
/// order. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Bdd {
    /// Variable column: `var_col[i]` labels node `i` (`TERMINAL_VAR` for the
    /// terminal at index 0, `FREE_VAR` for free-list slots).
    var_col: Vec<u32>,
    /// Low-edge column; doubles as the free-list thread (`lo_col[i].0` holds
    /// the next free *index* while slot `i` is on the free-list).
    lo_col: Vec<NodeRef>,
    /// High-edge column; always regular (canonical form).
    hi_col: Vec<NodeRef>,
    /// Head of the free-list threaded through `lo_col` (`NO_FREE` when
    /// empty), plus its length for O(1) `allocated_nodes`.
    free_head: u32,
    free_len: usize,
    /// Per-variable unique tables.
    unique: Vec<UniqueTable>,
    /// `level -> var index`.
    var_at_level: Vec<u32>,
    /// `var index -> level`.
    level_of_var: Vec<u32>,
    /// Human-readable variable names (debugging / DOT output).
    var_names: Vec<String>,
    /// Shared ITE + cofactor/quantification operation cache.
    cache: OpCache,
    /// Dedicated AndExists (relational-product) cache: three live node
    /// operands per key, so sharing slots with binary ops would evict the
    /// hottest entries of an image computation.
    andex: OpCache,
    /// Scratch visited-set shared by `size`/`support`/`gc` (interior
    /// mutability so `&self` traversals stay `&self`).
    marks: RefCell<Marks>,
    /// Unified slot-memo layer, one instance per recursive operator that
    /// owns a top-level entry point (they can nest through `exists_cube`
    /// etc., so they cannot share one buffer).
    rename_memo: SlotMemo,
    andex_memo: SlotMemo,
    constrain_memo: SlotMemo,
    /// Interned substitution maps (source-sorted pairs); a map's index is
    /// the token that keys its cross-call entries in the shared cache.
    rename_maps: Vec<Vec<(u32, u32)>>,
    /// Per-node reference counts (rc column, indexed by arena index); only
    /// maintained while `rc_active`.
    rc: Vec<u32>,
    /// Whether sifting-time reference counting (and with it immediate dead
    /// node reclamation in `swap_levels`) is on.
    rc_active: bool,
    /// Total `mk` calls; a rough work counter exposed for benchmarks.
    mk_calls: u64,
    /// Operation-cache probes in `ite` (excluding terminal short-circuits).
    cache_lookups: u64,
    /// Operation-cache hits in `ite`.
    cache_hits: u64,
    /// Memo probes by `restrict`/`cofactors`/`exists`/`forall`.
    memo_lookups: u64,
    /// Memo hits by the same.
    memo_hits: u64,
    /// Adjacent-level swaps performed (by `swap_levels`, hence by sifting).
    swap_count: u64,
    /// Nodes returned to the free-list by `gc` or by sifting reclamation.
    reclaimed_nodes: u64,
    /// High-water mark of allocated (live) nodes.
    peak_live_nodes: u64,
    /// Non-terminal node visits by `restrict`/`cofactors` traversals.
    op_visits: u64,
    /// Slot-memo + dedicated-cache probes by `and_exists`.
    andex_lookups: u64,
    /// Slot-memo + dedicated-cache hits by `and_exists`.
    andex_hits: u64,
    /// Top-level `exists_cube`/`forall_cube` invocations.
    cube_quant_calls: u64,
}

/// A snapshot of the manager's work counters, exposed so the synthesis
/// pipeline can record layer-native metrics per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Total `mk` invocations.
    pub mk_calls: u64,
    /// Operation-cache probes in `ite`.
    pub cache_lookups: u64,
    /// Operation-cache hits in `ite`.
    pub cache_hits: u64,
    /// Adjacent-level swaps performed by reordering.
    pub swap_count: u64,
    /// Live entries across the per-variable unique tables.
    pub unique_entries: u64,
    /// Valid entries currently in the operation cache.
    pub cache_entries: u64,
    /// Unique-table lookups (hash-consing probe sequences started).
    pub unique_lookups: u64,
    /// Total unique-table slot probes; `avg_probe_len` = probes / lookups.
    pub unique_probes: u64,
    /// Valid cache entries overwritten by a colliding key (lossy cache).
    pub cache_evictions: u64,
    /// Memo probes by `restrict`/`cofactors`/`exists`/`forall`.
    pub memo_lookups: u64,
    /// Memo hits by the same.
    pub memo_hits: u64,
    /// Nodes returned to the free-list by `gc` or sifting reclamation.
    pub reclaimed_nodes: u64,
    /// High-water mark of allocated (live) nodes.
    pub peak_live_nodes: u64,
    /// Non-terminal node visits by `restrict`/`cofactors` traversals.
    pub op_visits: u64,
    /// Slot-memo + dedicated-cache probes by `and_exists`.
    pub andex_lookups: u64,
    /// Slot-memo + dedicated-cache hits by `and_exists`.
    pub andex_hits: u64,
    /// Top-level `exists_cube`/`forall_cube` invocations.
    pub cube_quant_calls: u64,
}

impl BddStats {
    /// Hit rate of the ITE operation cache in `[0, 1]`; zero when no
    /// lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Hit rate of the AndExists memo layers in `[0, 1]`; zero when no
    /// lookups have happened.
    pub fn andex_hit_rate(&self) -> f64 {
        if self.andex_lookups == 0 {
            0.0
        } else {
            self.andex_hits as f64 / self.andex_lookups as f64
        }
    }

    /// Mean unique-table probe-chain length per lookup; zero when no
    /// lookups have happened. Near 1.0 means near-ideal hashing.
    pub fn avg_probe_len(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_probes as f64 / self.unique_lookups as f64
        }
    }

    /// Element-wise sum with `other`, for aggregating per-manager stats
    /// (e.g. one manager per CFSM) into one report.
    pub fn merged(&self, other: &BddStats) -> BddStats {
        BddStats {
            mk_calls: self.mk_calls + other.mk_calls,
            cache_lookups: self.cache_lookups + other.cache_lookups,
            cache_hits: self.cache_hits + other.cache_hits,
            swap_count: self.swap_count + other.swap_count,
            unique_entries: self.unique_entries + other.unique_entries,
            cache_entries: self.cache_entries + other.cache_entries,
            unique_lookups: self.unique_lookups + other.unique_lookups,
            unique_probes: self.unique_probes + other.unique_probes,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            memo_lookups: self.memo_lookups + other.memo_lookups,
            memo_hits: self.memo_hits + other.memo_hits,
            reclaimed_nodes: self.reclaimed_nodes + other.reclaimed_nodes,
            peak_live_nodes: self.peak_live_nodes + other.peak_live_nodes,
            op_visits: self.op_visits + other.op_visits,
            andex_lookups: self.andex_lookups + other.andex_lookups,
            andex_hits: self.andex_hits + other.andex_hits,
            cube_quant_calls: self.cube_quant_calls + other.cube_quant_calls,
        }
    }
}

/// `c << k` if the result fits in `u128`, else `None` (`0` shifts freely).
fn shl_checked(c: u128, k: u32) -> Option<u128> {
    if c == 0 {
        return Some(0);
    }
    if k >= 128 || c > (u128::MAX >> k) {
        return None;
    }
    Some(c << k)
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates an empty manager with no variables.
    pub fn new() -> Bdd {
        Bdd {
            // Index 0 is the single terminal (constant 1); its children are
            // self-loops so column reads on a terminal handle stay in
            // bounds and terminate traversals naturally.
            var_col: vec![TERMINAL_VAR],
            lo_col: vec![NodeRef::TRUE],
            hi_col: vec![NodeRef::TRUE],
            free_head: NO_FREE,
            free_len: 0,
            unique: Vec::new(),
            var_at_level: Vec::new(),
            level_of_var: Vec::new(),
            var_names: Vec::new(),
            cache: OpCache::new(),
            andex: OpCache::new(),
            marks: RefCell::new(Marks::default()),
            rename_memo: SlotMemo::default(),
            andex_memo: SlotMemo::default(),
            constrain_memo: SlotMemo::default(),
            rename_maps: Vec::new(),
            rc: Vec::new(),
            rc_active: false,
            mk_calls: 0,
            cache_lookups: 0,
            cache_hits: 0,
            memo_lookups: 0,
            memo_hits: 0,
            swap_count: 0,
            reclaimed_nodes: 0,
            peak_live_nodes: 0,
            op_visits: 0,
            andex_lookups: 0,
            andex_hits: 0,
            cube_quant_calls: 0,
        }
    }

    /// Declares a new variable at the bottom of the current order.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let idx = self.level_of_var.len() as u32;
        self.level_of_var.push(self.var_at_level.len() as u32);
        self.var_at_level.push(idx);
        self.unique.push(UniqueTable::new());
        self.var_names.push(name.into());
        Var(idx)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// The name given to `v` at creation.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// The current level (0 = root-most) of variable `v`.
    pub fn level(&self, v: Var) -> usize {
        self.level_of_var[v.index()] as usize
    }

    /// The variable currently at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars()`.
    pub fn var_at(&self, level: usize) -> Var {
        Var(self.var_at_level[level])
    }

    /// The current variable order, root-most first.
    pub fn order(&self) -> Vec<Var> {
        self.var_at_level.iter().map(|&v| Var(v)).collect()
    }

    /// Total `mk` invocations so far (work counter for benchmarks).
    pub fn mk_calls(&self) -> u64 {
        self.mk_calls
    }

    /// Snapshot of the manager's cumulative work counters and current
    /// table sizes.
    pub fn stats(&self) -> BddStats {
        BddStats {
            mk_calls: self.mk_calls,
            cache_lookups: self.cache_lookups,
            cache_hits: self.cache_hits,
            swap_count: self.swap_count,
            unique_entries: self.unique.iter().map(|t| t.len() as u64).sum(),
            cache_entries: self.cache.len as u64,
            unique_lookups: self.unique.iter().map(|t| t.lookups).sum(),
            unique_probes: self.unique.iter().map(|t| t.probes).sum(),
            cache_evictions: self.cache.evictions,
            memo_lookups: self.memo_lookups,
            memo_hits: self.memo_hits,
            reclaimed_nodes: self.reclaimed_nodes,
            peak_live_nodes: self.peak_live_nodes,
            op_visits: self.op_visits,
            andex_lookups: self.andex_lookups,
            andex_hits: self.andex_hits,
            cube_quant_calls: self.cube_quant_calls,
        }
    }

    fn level_of_node(&self, n: NodeRef) -> u32 {
        let v = self.var_col[n.idx()];
        if v == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.level_of_var[v as usize]
        }
    }

    /// The variable labelling node `n`, or `None` for terminals.
    pub fn node_var(&self, n: NodeRef) -> Option<Var> {
        let v = self.var_col[n.idx()];
        (v != TERMINAL_VAR).then_some(Var(v))
    }

    /// The low (`var = 0`) cofactor of a non-terminal node, with the
    /// handle's complement bit already pushed onto it. Walking `lo`/`hi`
    /// therefore traverses the *function* (the virtual complement-free
    /// BDD), so edge-walkers need no parity bookkeeping of their own.
    ///
    /// # Panics
    ///
    /// Panics if `n` is a terminal.
    pub fn lo(&self, n: NodeRef) -> NodeRef {
        assert!(!n.is_terminal(), "terminals have no children");
        self.lo_col[n.idx()].xor_parity(n.parity())
    }

    /// The high (`var = 1`) cofactor of a non-terminal node, complement bit
    /// applied (see [`Bdd::lo`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is a terminal.
    pub fn hi(&self, n: NodeRef) -> NodeRef {
        assert!(!n.is_terminal(), "terminals have no children");
        self.hi_col[n.idx()].xor_parity(n.parity())
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            NodeRef::TRUE
        } else {
            NodeRef::FALSE
        }
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: Var) -> NodeRef {
        self.mk(v.0, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// The single-variable function `!v` (the same arena node as `v`,
    /// reached through a complement edge).
    pub fn nvar(&mut self, v: Var) -> NodeRef {
        self.mk(v.0, NodeRef::TRUE, NodeRef::FALSE)
    }

    /// Hash-consing node constructor; the only way nodes are created.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk_calls += 1;
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.level_of_var[var as usize] < self.level_of_node(lo)
                && self.level_of_var[var as usize] < self.level_of_node(hi),
            "mk would violate the variable order"
        );
        self.mk_raw(var, lo, hi)
    }

    /// Like `mk` but without the order assertion; used mid-swap when the
    /// recorded order is transiently inconsistent. Canonicalizes the
    /// complement: a complemented hi edge is factored out of the node
    /// (`(v, lo, ¬h) = ¬(v, ¬lo, h)`), so stored hi edges are always
    /// regular and `f`/`¬f` share one node.
    fn mk_raw(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo;
        }
        if hi.parity() == 1 {
            self.mk_node(var, lo.complement(), hi.complement())
                .complement()
        } else {
            self.mk_node(var, lo, hi)
        }
    }

    /// Get-or-insert of a canonical `(var, lo, hi)` node (`hi` regular,
    /// `lo != hi`). Returns a regular handle.
    fn mk_node(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        debug_assert_eq!(hi.parity(), 0, "complemented hi edge");
        debug_assert_ne!(lo, hi);
        if let Some(n) = self.unique[var as usize].get(lo, hi) {
            return n;
        }
        let r = if self.free_head != NO_FREE {
            let i = self.free_head as usize;
            self.free_head = self.lo_col[i].0;
            self.free_len -= 1;
            self.var_col[i] = var;
            self.lo_col[i] = lo;
            self.hi_col[i] = hi;
            NodeRef((i as u32) << 1)
        } else {
            let i = self.var_col.len();
            self.var_col.push(var);
            self.lo_col.push(lo);
            self.hi_col.push(hi);
            NodeRef((i as u32) << 1)
        };
        self.unique[var as usize].insert(lo, hi, r);
        if self.rc_active {
            self.rc_set(r, 0);
            self.rc_inc(lo);
            self.rc_inc(hi);
        }
        self.peak_live_nodes = self.peak_live_nodes.max(self.allocated_nodes() as u64);
        r
    }

    /// Threads arena slot `i` onto the free-list (through the lo column).
    fn free_push(&mut self, i: usize) {
        self.var_col[i] = FREE_VAR;
        self.lo_col[i] = NodeRef(self.free_head);
        self.free_head = i as u32;
        self.free_len += 1;
    }

    #[inline]
    fn rc_set(&mut self, n: NodeRef, v: u32) {
        let i = n.idx();
        if self.rc.len() <= i {
            self.rc.resize(i + 1, 0);
        }
        self.rc[i] = v;
    }

    #[inline]
    fn rc_inc(&mut self, n: NodeRef) {
        if n.is_terminal() {
            return;
        }
        let i = n.idx();
        if self.rc.len() <= i {
            self.rc.resize(i + 1, 0);
        }
        self.rc[i] += 1;
    }

    /// Drops one reference to `n`; nodes whose count reaches zero are
    /// unlinked from their unique table, put on the free-list, and release
    /// their children in turn. Only called while `rc_active`.
    fn rc_release(&mut self, n: NodeRef) {
        if n.is_terminal() {
            return;
        }
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            let i = m.idx();
            debug_assert!(self.rc[i] > 0, "rc underflow");
            self.rc[i] -= 1;
            if self.rc[i] == 0 {
                // Read the node out before free_push overwrites the lo slot
                // with the free-list thread.
                let (var, lo, hi) = (self.var_col[i], self.lo_col[i], self.hi_col[i]);
                self.unique[var as usize].remove(lo, hi);
                self.free_push(i);
                self.reclaimed_nodes += 1;
                if !lo.is_terminal() {
                    stack.push(lo);
                }
                if !hi.is_terminal() {
                    stack.push(hi);
                }
            }
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + !f·h`. All other Boolean
    /// operations are derived from it.
    ///
    /// Under complement edges a single normalization cascade folds the
    /// whole two-operand algebra onto canonical `(f, g, h)` triples: `and`,
    /// `or`, `and_not`, `implies` and their operand-swapped / negated forms
    /// all hash to the same cache entry, and so do `xor`/`iff`.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> NodeRef {
        // Terminal / identity cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        let (mut f, mut g, mut h) = (f, g, h);
        // Branch absorption: a branch equal to (the complement of) the
        // condition collapses to a constant.
        if f == g {
            g = NodeRef::TRUE; // f·f + !f·h = f + h
        } else if f == g.complement() {
            g = NodeRef::FALSE; // f·!f + !f·h = !f·h
        }
        if f == h {
            h = NodeRef::FALSE; // f·g + !f·f = f·g
        } else if f == h.complement() {
            h = NodeRef::TRUE; // f·g + !f·!f = f·g + !f
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return f.complement();
        }
        // Canonical operand ordering: each two-operand shape is symmetric
        // under an operand swap (possibly through negation), so pick the
        // representative with the smaller raw key. Ties are impossible —
        // the absorption rules above already removed every f ≡ ±other
        // case, and the operands here are non-terminal.
        if g.is_true() {
            // or(f, h) = or(h, f)
            if f.0 > h.0 {
                std::mem::swap(&mut f, &mut h);
            }
        } else if h.is_false() {
            // and(f, g) = and(g, f)
            if f.0 > g.0 {
                std::mem::swap(&mut f, &mut g);
            }
        } else if g.is_false() {
            // !f·h: ite(f, 0, h) = ite(!h, 0, !f)
            if f.0 > h.0 ^ 1 {
                let (of, oh) = (f, h);
                f = oh.complement();
                h = of.complement();
            }
        } else if h.is_true() {
            // f => g: ite(f, g, 1) = ite(!g, !f, 1)
            if f.0 > g.0 ^ 1 {
                let (of, og) = (f, g);
                f = og.complement();
                g = of.complement();
            }
        } else if g == h.complement() {
            // xnor(f, g): ite(f, g, !g) = ite(g, f, !f)
            if f.0 > g.0 {
                std::mem::swap(&mut f, &mut g);
                h = g.complement();
            }
        }
        // Standard triple: regular condition first ...
        if f.parity() == 1 {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // ... then a regular then-branch, factoring the complement out of
        // the result: ite(f, !g, !h) = !ite(f, g, h).
        let out_neg = g.parity() == 1;
        if out_neg {
            g = g.complement();
            h = h.complement();
        }
        self.cache_lookups += 1;
        if let Some(r) = self.cache.lookup(OP_ITE, f, g, h) {
            self.cache_hits += 1;
            return r.xor_parity(out_neg as u32);
        }
        let top = self
            .level_of_node(f)
            .min(self.level_of_node(g))
            .min(self.level_of_node(h));
        let v = self.var_at_level[top as usize];
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let (h0, h1) = self.cofactors_at(h, v);
        let t = self.ite(f1, g1, h1);
        let e = self.ite(f0, g0, h0);
        let r = self.mk(v, e, t);
        self.cache.insert(OP_ITE, f, g, h, r);
        r.xor_parity(out_neg as u32)
    }

    /// Both cofactors of `n` with respect to variable index `v` (which must
    /// be at or above `n`'s level). The handle's complement bit is pushed
    /// onto the cofactors; terminals and nodes below `v` cofactor to
    /// themselves.
    fn cofactors_at(&self, n: NodeRef, v: u32) -> (NodeRef, NodeRef) {
        let i = n.idx();
        if self.var_col[i] == v {
            let p = n.parity();
            (self.lo_col[i].xor_parity(p), self.hi_col[i].xor_parity(p))
        } else {
            (n, n)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, NodeRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, NodeRef::TRUE, g)
    }

    /// Negation: an O(1) complement-bit flip. Performs no `mk` calls and
    /// allocates nothing — `f` and `!f` share every node.
    pub fn not(&mut self, f: NodeRef) -> NodeRef {
        f.complement()
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g.complement(), g)
    }

    /// Biconditional (`f == g`).
    pub fn iff(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, g.complement())
    }

    /// Implication (`f -> g`).
    pub fn implies(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, NodeRef::TRUE)
    }

    /// Conjunction of all `fs`.
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter()
            .fold(NodeRef::TRUE, |acc, f| self.and(acc, f))
    }

    /// Disjunction of all `fs`.
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter()
            .fold(NodeRef::FALSE, |acc, f| self.or(acc, f))
    }

    /// The restriction (cofactor) `f|_{v = val}` (Section II-C).
    ///
    /// Memoized in the persistent operation cache, so repeated cofactoring
    /// during sifting and s-graph extraction allocates nothing per call.
    pub fn restrict(&mut self, f: NodeRef, v: Var, val: bool) -> NodeRef {
        self.restrict_rec(f, v.0, val)
    }

    fn restrict_rec(&mut self, f: NodeRef, v: u32, val: bool) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        self.op_visits += 1;
        let flevel = self.level_of_node(f);
        let vlevel = self.level_of_var[v as usize];
        if flevel > vlevel {
            return f; // v does not occur in f
        }
        // Cofactoring commutes with complement: compute on the regular
        // node, memoize there, and re-apply the complement bit — so f and
        // !f share every memo entry.
        let p = f.parity();
        let fr = f.regular();
        let i = fr.idx();
        if self.var_col[i] == v {
            let c = if val { self.hi_col[i] } else { self.lo_col[i] };
            return c.xor_parity(p);
        }
        let op = if val { OP_RESTRICT1 } else { OP_RESTRICT0 };
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(op, fr, NodeRef(v), EMPTY) {
            self.memo_hits += 1;
            return r.xor_parity(p);
        }
        let (var, lo_raw, hi_raw) = (self.var_col[i], self.lo_col[i], self.hi_col[i]);
        let lo = self.restrict_rec(lo_raw, v, val);
        let hi = self.restrict_rec(hi_raw, v, val);
        let r = self.mk(var, lo, hi);
        self.cache.insert(op, fr, NodeRef(v), EMPTY, r);
        r.xor_parity(p)
    }

    /// Both cofactors `(f|_{v=0}, f|_{v=1})` in one shared traversal.
    ///
    /// Each node above `v`'s level is visited once (filling both restrict
    /// memo slots), where two [`Bdd::restrict`] calls would visit it twice —
    /// this is what `exists`/`forall` are routed through.
    pub fn cofactors(&mut self, f: NodeRef, v: Var) -> (NodeRef, NodeRef) {
        self.cofactors_rec(f, v.0)
    }

    fn cofactors_rec(&mut self, f: NodeRef, v: u32) -> (NodeRef, NodeRef) {
        if f.is_terminal() {
            return (f, f);
        }
        self.op_visits += 1;
        let flevel = self.level_of_node(f);
        let vlevel = self.level_of_var[v as usize];
        if flevel > vlevel {
            return (f, f);
        }
        let p = f.parity();
        let fr = f.regular();
        let i = fr.idx();
        if self.var_col[i] == v {
            let p = f.parity();
            return (self.lo_col[i].xor_parity(p), self.hi_col[i].xor_parity(p));
        }
        let vref = NodeRef(v);
        self.memo_lookups += 1;
        let c0 = self.cache.lookup(OP_RESTRICT0, fr, vref, EMPTY);
        let c1 = self.cache.lookup(OP_RESTRICT1, fr, vref, EMPTY);
        if let (Some(r0), Some(r1)) = (c0, c1) {
            self.memo_hits += 1;
            return (r0.xor_parity(p), r1.xor_parity(p));
        }
        let (var, lo_raw, hi_raw) = (self.var_col[i], self.lo_col[i], self.hi_col[i]);
        let (lo0, lo1) = self.cofactors_rec(lo_raw, v);
        let (hi0, hi1) = self.cofactors_rec(hi_raw, v);
        let r0 = self.mk(var, lo0, hi0);
        let r1 = self.mk(var, lo1, hi1);
        self.cache.insert(OP_RESTRICT0, fr, vref, EMPTY, r0);
        self.cache.insert(OP_RESTRICT1, fr, vref, EMPTY, r1);
        (r0.xor_parity(p), r1.xor_parity(p))
    }

    /// Existential quantification (smoothing, Section II-C):
    /// `∃v. f = f|_{v=0} + f|_{v=1}`.
    ///
    /// Both cofactors come from one shared [`Bdd::cofactors`] pass and the
    /// result itself is memoized.
    pub fn exists(&mut self, f: NodeRef, v: Var) -> NodeRef {
        self.quant_one(f, v.0, true)
    }

    /// Universal quantification: `∀v. f = f|_{v=0} · f|_{v=1}`.
    pub fn forall(&mut self, f: NodeRef, v: Var) -> NodeRef {
        self.quant_one(f, v.0, false)
    }

    /// Shared single-variable quantifier. Complement edges make the two
    /// quantifiers each other's duals (`∃v. !f = !(∀v. f)`), so the memo is
    /// kept on the regular node with the quantifier flipped by the operand's
    /// complement bit — f and !f share entries across *both* ops.
    fn quant_one(&mut self, f: NodeRef, v: u32, exists: bool) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let p = f.parity();
        let fr = f.regular();
        let ex = exists ^ (p == 1);
        let op = if ex { OP_EXISTS } else { OP_FORALL };
        let vref = NodeRef(v);
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(op, fr, vref, EMPTY) {
            self.memo_hits += 1;
            return r.xor_parity(p);
        }
        let (f0, f1) = self.cofactors_rec(fr, v);
        let r = if ex {
            self.or(f0, f1)
        } else {
            self.and(f0, f1)
        };
        self.cache.insert(op, fr, vref, EMPTY, r);
        r.xor_parity(p)
    }

    /// The positive cube (conjunction of positive literals) of `vs`, the
    /// canonical variable-set representation consumed by
    /// [`Bdd::exists_cube`], [`Bdd::forall_cube`] and [`Bdd::and_exists`].
    ///
    /// Built bottom-up in descending level order, so construction is O(k)
    /// `mk` calls with no ITE work. Duplicates are collapsed. The cube is an
    /// ordinary node: root it (gc/persistent-roots) like any other function
    /// if it must survive collection, and note that its *shape* tracks the
    /// variable order — after a [`Bdd::sift`] the handle stays valid and
    /// still denotes the same conjunction. Cube handles are always regular
    /// (every node is `(v, 0, rest)` with a regular `rest`).
    pub fn cube(&mut self, vs: impl IntoIterator<Item = Var>) -> NodeRef {
        let mut vars: Vec<Var> = vs.into_iter().collect();
        // Sort deepest-first; duplicates land adjacent (level is injective).
        vars.sort_by_key(|&v| std::cmp::Reverse(self.level(v)));
        vars.dedup();
        let mut c = NodeRef::TRUE;
        for v in vars {
            c = self.mk(v.0, NodeRef::FALSE, c);
        }
        c
    }

    /// Existential quantification of every variable in the positive cube
    /// `cube` in a single traversal of `f`:
    /// `∃ x₁…xₖ. f` in one pass instead of k full [`Bdd::exists`] sweeps.
    ///
    /// `cube` must be a positive cube (every node's low child is 0), e.g.
    /// built by [`Bdd::cube`]; debug builds assert this. Memoized in the
    /// shared operation cache keyed on the advanced cube, so sub-problems
    /// of different top-level cubes still share entries.
    pub fn exists_cube(&mut self, f: NodeRef, cube: NodeRef) -> NodeRef {
        self.cube_quant_calls += 1;
        self.quant_cube_rec(f, cube, true)
    }

    /// Universal quantification of every cube variable in a single pass:
    /// `∀ x₁…xₖ. f`. Dual of [`Bdd::exists_cube`].
    pub fn forall_cube(&mut self, f: NodeRef, cube: NodeRef) -> NodeRef {
        self.cube_quant_calls += 1;
        self.quant_cube_rec(f, cube, false)
    }

    /// Parity shim of the cube quantifier: quantification dualizes through
    /// complement (`∃c. !f = !(∀c. f)`), so the recursion proper runs on
    /// the regular node with the quantifier flipped.
    fn quant_cube_rec(&mut self, f: NodeRef, cube: NodeRef, exists: bool) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let p = f.parity();
        let ex = exists ^ (p == 1);
        self.quant_cube_reg(f.regular(), cube, ex).xor_parity(p)
    }

    /// Shared single-pass cube quantifier on a regular non-terminal `f`:
    /// `exists` selects ∨ (with an early exit on 1), `forall` selects ∧
    /// (early exit on 0).
    fn quant_cube_reg(&mut self, f: NodeRef, mut cube: NodeRef, exists: bool) -> NodeRef {
        let flevel = self.level_of_node(f);
        // Skip cube variables above f's top: f does not depend on them.
        while !cube.is_terminal() && self.level_of_node(cube) < flevel {
            debug_assert!(self.lo_col[cube.idx()].is_false(), "not a positive cube");
            cube = self.hi_col[cube.idx()];
        }
        if cube.is_terminal() {
            debug_assert!(cube.is_true(), "cube must not be the zero function");
            return f;
        }
        let op = if exists {
            OP_EXISTS_CUBE
        } else {
            OP_FORALL_CUBE
        };
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(op, f, cube, EMPTY) {
            self.memo_hits += 1;
            return r;
        }
        self.op_visits += 1;
        let i = f.idx();
        let (var, lo, hi) = (self.var_col[i], self.lo_col[i], self.hi_col[i]);
        let r = if self.level_of_node(cube) == flevel {
            debug_assert!(self.lo_col[cube.idx()].is_false(), "not a positive cube");
            let rest = self.hi_col[cube.idx()];
            let t = self.quant_cube_rec(hi, rest, exists);
            // Short-circuit: ∨ saturates at 1, ∧ at 0.
            if t.is_true() && exists {
                NodeRef::TRUE
            } else if t.is_false() && !exists {
                NodeRef::FALSE
            } else {
                let e = self.quant_cube_rec(lo, rest, exists);
                if exists {
                    self.or(t, e)
                } else {
                    self.and(t, e)
                }
            }
        } else {
            let t = self.quant_cube_rec(hi, cube, exists);
            let e = self.quant_cube_rec(lo, cube, exists);
            self.mk(var, e, t)
        };
        self.cache.insert(op, f, cube, EMPTY, r);
        r
    }

    /// The relational product `∃ cube. f ∧ g` in one recursion, without ever
    /// materializing the conjunction `f ∧ g` (CUDD's `bddAndAbstract`).
    ///
    /// This is the image-computation workhorse: the intermediate conjunct of
    /// a frontier with a transition-relation part is typically far larger
    /// than either operand or the result, and this operator never builds it.
    /// Results are memoized per call in the unified slot-memo layer and
    /// across calls in a dedicated cache (see [`BddStats`]'s
    /// `andex_lookups`/`andex_hits`) so relational products do not evict the
    /// ITE working set. `cube` must be a positive cube.
    ///
    /// Unlike the unary operators, the complement of an operand *cannot* be
    /// factored out (`∃` does not commute with negation under ∧), so keys
    /// carry the full complement-bit-tagged handles.
    pub fn and_exists(&mut self, f: NodeRef, g: NodeRef, cube: NodeRef) -> NodeRef {
        if f.is_false() || g.is_false() || f == g.complement() {
            return NodeRef::FALSE;
        }
        if f == g || g.is_true() {
            return self.exists_cube(f, cube);
        }
        if f.is_true() {
            return self.exists_cube(g, cube);
        }
        let mut memo = std::mem::take(&mut self.andex_memo);
        memo.begin(self.var_col.len());
        let r = self.and_exists_rec(f, g, cube, &mut memo);
        self.andex_memo = memo;
        r
    }

    fn and_exists_rec(
        &mut self,
        f: NodeRef,
        g: NodeRef,
        cube: NodeRef,
        memo: &mut SlotMemo,
    ) -> NodeRef {
        if f.is_false() || g.is_false() || f == g.complement() {
            return NodeRef::FALSE;
        }
        if f == g {
            return self.quant_cube_rec(f, cube, true);
        }
        if f.is_true() {
            return self.quant_cube_rec(g, cube, true);
        }
        if g.is_true() {
            return self.quant_cube_rec(f, cube, true);
        }
        // Both non-terminal. Conjunction is commutative: order the operands
        // by raw key so (f, g) and (g, f) share one cache slot.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let top = self.level_of_node(f).min(self.level_of_node(g));
        // Advance the cube past variables above both operands.
        let mut cube = cube;
        while !cube.is_terminal() && self.level_of_node(cube) < top {
            debug_assert!(self.lo_col[cube.idx()].is_false(), "not a positive cube");
            cube = self.hi_col[cube.idx()];
        }
        if cube.is_terminal() {
            debug_assert!(cube.is_true(), "cube must not be the zero function");
            return self.and(f, g);
        }
        // Slot memo first (two dense reads), dedicated cache second. The
        // slot is f's arena index; k3 carries f itself so a complemented f
        // cannot alias its regular twin in the same slot.
        self.andex_lookups += 1;
        if let Some(r) = memo.get(f.idx(), g, cube, f) {
            self.andex_hits += 1;
            return r;
        }
        if let Some(r) = self.andex.lookup(OP_ANDEX, f, g, cube) {
            self.andex_hits += 1;
            memo.insert(f.idx(), g, cube, f, r);
            return r;
        }
        self.op_visits += 1;
        let v = self.var_at_level[top as usize];
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let r = if self.level_of_node(cube) == top {
            let rest = self.hi_col[cube.idx()];
            let t = self.and_exists_rec(f1, g1, rest, memo);
            if t.is_true() {
                NodeRef::TRUE
            } else {
                let e = self.and_exists_rec(f0, g0, rest, memo);
                self.or(t, e)
            }
        } else {
            let t = self.and_exists_rec(f1, g1, cube, memo);
            let e = self.and_exists_rec(f0, g0, cube, memo);
            self.mk(v, e, t)
        };
        self.andex.insert(OP_ANDEX, f, g, cube, r);
        memo.insert(f.idx(), g, cube, f, r);
        r
    }

    /// The generalized cofactor (Coudert/Madre `constrain`): a function that
    /// agrees with `f` everywhere `c` holds and is free to simplify outside
    /// `c`, i.e. `constrain(f, c) ∧ c == f ∧ c`.
    ///
    /// Used to minimize reachability frontiers against the reached set's
    /// don't-care space. When `c` is a positive cube this reduces to the
    /// ordinary cofactor `f|_c`. `c` must be satisfiable; `constrain(f, 0)`
    /// returns 0 by convention.
    pub fn constrain(&mut self, f: NodeRef, c: NodeRef) -> NodeRef {
        if c.is_false() {
            return NodeRef::FALSE;
        }
        let mut memo = std::mem::take(&mut self.constrain_memo);
        memo.begin(self.var_col.len());
        let r = self.constrain_rec(f, c, &mut memo);
        self.constrain_memo = memo;
        r
    }

    fn constrain_rec(&mut self, f: NodeRef, c: NodeRef, memo: &mut SlotMemo) -> NodeRef {
        if c.is_true() || f.is_terminal() {
            return f;
        }
        if f == c {
            return NodeRef::TRUE;
        }
        if f == c.complement() {
            return NodeRef::FALSE;
        }
        // constrain(!f, c) = !constrain(f, c): factor the operand's
        // complement bit out and memoize on the regular node.
        let p = f.parity();
        let fr = f.regular();
        let top = self.level_of_node(fr).min(self.level_of_node(c));
        let v = self.var_at_level[top as usize];
        let (c0, c1) = self.cofactors_at(c, v);
        // A one-sided care set maps the whole level onto the live branch —
        // this is where constrain drops variables (and why it is only a
        // *generalized* cofactor).
        if c0.is_false() {
            let (_, f1) = self.cofactors_at(fr, v);
            let r = self.constrain_rec(f1, c1, memo);
            return r.xor_parity(p);
        }
        if c1.is_false() {
            let (f0, _) = self.cofactors_at(fr, v);
            let r = self.constrain_rec(f0, c0, memo);
            return r.xor_parity(p);
        }
        // Slot memo first, shared persistent cache second.
        self.memo_lookups += 1;
        if let Some(r) = memo.get(fr.idx(), c, EMPTY, EMPTY) {
            self.memo_hits += 1;
            return r.xor_parity(p);
        }
        if let Some(r) = self.cache.lookup(OP_CONSTRAIN, fr, c, EMPTY) {
            self.memo_hits += 1;
            memo.insert(fr.idx(), c, EMPTY, EMPTY, r);
            return r.xor_parity(p);
        }
        self.op_visits += 1;
        let (f0, f1) = self.cofactors_at(fr, v);
        let t = self.constrain_rec(f1, c1, memo);
        let e = self.constrain_rec(f0, c0, memo);
        let r = self.mk(v, e, t);
        self.cache.insert(OP_CONSTRAIN, fr, c, EMPTY, r);
        memo.insert(fr.idx(), c, EMPTY, EMPTY, r);
        r.xor_parity(p)
    }

    /// Difference `f ∧ ¬g` as a single ITE (`ite(g, 0, f)`), avoiding a
    /// separate negation step. The frontier step of reachability
    /// (`new ∖ reached`) is exactly this shape.
    pub fn and_not(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(g, NodeRef::FALSE, f)
    }

    /// Simultaneous variable renaming: rewrites `f` with every source
    /// variable of `pairs` replaced by its target variable.
    ///
    /// The substitution is performed bottom-up through [`Bdd::ite`], so it
    /// is correct for any variable order — targets need not occupy the
    /// levels of their sources. Sources must be distinct, and no target may
    /// also appear as a source or in the support of `f` (that would capture
    /// the renamed occurrences); the relational-image use — mapping
    /// next-state variables onto their quantified-out current-state rails —
    /// satisfies both by construction. Debug builds assert the
    /// source/target sets are disjoint.
    pub fn rename(&mut self, f: NodeRef, pairs: &[(Var, Var)]) -> NodeRef {
        let pairs: Vec<(Var, Var)> = pairs.iter().copied().filter(|&(s, t)| s != t).collect();
        if pairs.is_empty() || f.is_terminal() {
            return f;
        }
        debug_assert!(
            pairs
                .iter()
                .all(|&(_, t)| pairs.iter().all(|&(s, _)| s != t)),
            "rename target also appears as a source"
        );
        debug_assert!(
            pairs
                .iter()
                .enumerate()
                .all(|(i, &(s, _))| pairs[..i].iter().all(|&(s2, _)| s2 != s)),
            "duplicate rename source"
        );
        let mut map: Vec<u32> = (0..self.level_of_var.len() as u32).collect();
        for &(s, t) in &pairs {
            map[s.0 as usize] = t.0;
        }
        // Cross-call caching: intern the (source-sorted) map and use its
        // index as a token keying shared-cache entries, so subgraphs
        // shared between successive images skip the whole rebuild. The
        // cache's generation bump on gc/sifting invalidates these entries
        // along with everything else.
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|&(s, _)| s.0);
        let sorted: Vec<(u32, u32)> = sorted.into_iter().map(|(s, t)| (s.0, t.0)).collect();
        let token = match self.rename_maps.iter().position(|m| *m == sorted) {
            Some(i) => Some(i as u32),
            None if self.rename_maps.len() < RENAME_MAP_CAP => {
                self.rename_maps.push(sorted);
                Some(self.rename_maps.len() as u32 - 1)
            }
            None => None,
        };
        let mut memo = std::mem::take(&mut self.rename_memo);
        memo.begin(self.var_col.len());
        // Optimistic order-preserving rebuild: when the substitution keeps
        // every rebuilt node strictly above its children (checked locally,
        // which is exactly the ordered-BDD invariant), the renamed BDD has
        // `f`'s shape and plain `mk` per node suffices — no `ite`. The
        // relational-image rename (next-state rails onto their
        // quantified-out current-state neighbours) is order-preserving by
        // construction, and group-constrained sifting keeps it so. On a
        // violation the rebuild bails out to the general `ite`-based path;
        // memo entries from the partial attempt are correct renamed
        // subfunctions, so the fallback reuses them.
        let r = match self.rename_mono_rec(f, &map, token, &mut memo) {
            Some(r) => r,
            None => self.rename_rec(f, &map, token, &mut memo),
        };
        self.rename_memo = memo;
        r
    }

    /// Order-preserving rename: rebuilds `f` bottom-up substituting the
    /// variable labels directly. Returns `None` as soon as a substituted
    /// node would not sit strictly above its rebuilt children — the local
    /// ordered-BDD invariant whose node-wise validity makes the
    /// shape-preserving rebuild correct. Renaming commutes with complement,
    /// so the memo lives on the regular node and the operand's complement
    /// bit transfers to the result.
    fn rename_mono_rec(
        &mut self,
        f: NodeRef,
        map: &[u32],
        token: Option<u32>,
        memo: &mut SlotMemo,
    ) -> Option<NodeRef> {
        if f.is_terminal() {
            return Some(f);
        }
        let p = f.parity();
        let fr = f.regular();
        if let Some(r) = memo.get(fr.idx(), EMPTY, EMPTY, EMPTY) {
            return Some(r.xor_parity(p));
        }
        if let Some(tok) = token {
            if let Some(r) = self.cache.lookup(OP_RENAME, fr, EMPTY, NodeRef(tok)) {
                memo.insert(fr.idx(), EMPTY, EMPTY, EMPTY, r);
                return Some(r.xor_parity(p));
            }
        }
        let i = fr.idx();
        let (var, lo_raw, hi_raw) = (self.var_col[i], self.lo_col[i], self.hi_col[i]);
        let lo = self.rename_mono_rec(lo_raw, map, token, memo)?;
        let hi = self.rename_mono_rec(hi_raw, map, token, memo)?;
        let v = map[var as usize];
        let vl = self.level_of_var[v as usize];
        for child in [lo, hi] {
            if !child.is_terminal() && self.level_of_var[self.var_col[child.idx()] as usize] <= vl {
                return None;
            }
        }
        let r = self.mk(v, lo, hi);
        memo.insert(fr.idx(), EMPTY, EMPTY, EMPTY, r);
        if let Some(tok) = token {
            self.cache.insert(OP_RENAME, fr, EMPTY, NodeRef(tok), r);
        }
        Some(r.xor_parity(p))
    }

    fn rename_rec(
        &mut self,
        f: NodeRef,
        map: &[u32],
        token: Option<u32>,
        memo: &mut SlotMemo,
    ) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let p = f.parity();
        let fr = f.regular();
        if let Some(r) = memo.get(fr.idx(), EMPTY, EMPTY, EMPTY) {
            return r.xor_parity(p);
        }
        if let Some(tok) = token {
            if let Some(r) = self.cache.lookup(OP_RENAME, fr, EMPTY, NodeRef(tok)) {
                memo.insert(fr.idx(), EMPTY, EMPTY, EMPTY, r);
                return r.xor_parity(p);
            }
        }
        let i = fr.idx();
        let (var, lo_raw, hi_raw) = (self.var_col[i], self.lo_col[i], self.hi_col[i]);
        let lo = self.rename_rec(lo_raw, map, token, memo);
        let hi = self.rename_rec(hi_raw, map, token, memo);
        let v = map[var as usize];
        let vf = self.var(Var(v));
        let r = self.ite(vf, hi, lo);
        memo.insert(fr.idx(), EMPTY, EMPTY, EMPTY, r);
        if let Some(tok) = token {
            self.cache.insert(OP_RENAME, fr, EMPTY, NodeRef(tok), r);
        }
        r.xor_parity(p)
    }

    /// The set of variables `f` essentially depends on, sorted by current
    /// level (root-most first).
    pub fn support(&self, f: NodeRef) -> Vec<Var> {
        let mut marks = self.marks.take();
        marks.begin(self.var_col.len());
        let mut vars: Vec<u32> = Vec::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marks.mark(n) {
                continue;
            }
            let i = n.idx();
            vars.push(self.var_col[i]);
            stack.push(self.lo_col[i]);
            stack.push(self.hi_col[i]);
        }
        self.marks.replace(marks);
        vars.sort_by_key(|&v| self.level_of_var[v as usize]);
        vars.dedup();
        vars.into_iter().map(Var).collect()
    }

    /// Evaluates `f` under the assignment `val` (a predicate on variables).
    pub fn eval(&self, f: NodeRef, val: impl Fn(Var) -> bool) -> bool {
        let mut n = f;
        while !n.is_terminal() {
            let i = n.idx();
            let p = n.parity();
            let c = if val(Var(self.var_col[i])) {
                self.hi_col[i]
            } else {
                self.lo_col[i]
            };
            n = c.xor_parity(p);
        }
        n.is_true()
    }

    /// Number of satisfying assignments of `f` over all declared variables,
    /// saturating at `u128::MAX` when the count does not fit (128 or more
    /// variables can overflow). Use [`Bdd::checked_sat_count`] to detect
    /// overflow.
    pub fn sat_count(&self, f: NodeRef) -> u128 {
        self.checked_sat_count(f).unwrap_or(u128::MAX)
    }

    /// Number of satisfying assignments of `f` over all declared variables,
    /// or `None` if the count overflows `u128`.
    pub fn checked_sat_count(&self, f: NodeRef) -> Option<u128> {
        let nvars = self.num_vars() as u32;
        let mut memo: HashMap<NodeRef, u128> = HashMap::new();
        let below_root = self.sat_count_rec(f, &mut memo)?;
        // Scale by the variables above f's top level.
        let top = if f.is_terminal() {
            nvars
        } else {
            self.level_of_node(f)
        };
        shl_checked(below_root, top)
    }

    /// Counts assignments over the variables strictly below (and including)
    /// the node's level; `None` on overflow. Memoized on the full handle
    /// (complement bit included): a node and its complement count different
    /// functions.
    fn sat_count_rec(&self, f: NodeRef, memo: &mut HashMap<NodeRef, u128>) -> Option<u128> {
        let nvars = self.num_vars() as u32;
        if f.is_false() {
            return Some(0);
        }
        if f.is_true() {
            return Some(1);
        }
        if let Some(&c) = memo.get(&f) {
            return Some(c);
        }
        let i = f.idx();
        let p = f.parity();
        let level = self.level_of_var[self.var_col[i] as usize];
        let lo = self.lo_col[i].xor_parity(p);
        let hi = self.hi_col[i].xor_parity(p);
        let clevel = |child: NodeRef| {
            if child.is_terminal() {
                nvars
            } else {
                self.level_of_node(child)
            }
        };
        let lc = self.sat_count_rec(lo, memo)?;
        let hc = self.sat_count_rec(hi, memo)?;
        let wlo = shl_checked(lc, clevel(lo) - level - 1)?;
        let whi = shl_checked(hc, clevel(hi) - level - 1)?;
        let c = wlo.checked_add(whi)?;
        memo.insert(f, c);
        Some(c)
    }

    /// Returns one satisfying assignment of `f` as `(Var, bool)` pairs for
    /// the variables on the chosen path, or `None` if `f` is unsatisfiable.
    pub fn pick_cube(&self, f: NodeRef) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut n = f;
        // Every non-FALSE function is satisfiable (canonical form), so
        // descending into any non-FALSE cofactor maintains the invariant.
        while !n.is_terminal() {
            let i = n.idx();
            let p = n.parity();
            let hc = self.hi_col[i].xor_parity(p);
            if hc.is_false() {
                cube.push((Var(self.var_col[i]), false));
                n = self.lo_col[i].xor_parity(p);
            } else {
                cube.push((Var(self.var_col[i]), true));
                n = hc;
            }
        }
        debug_assert!(n.is_true());
        Some(cube)
    }

    /// Number of distinct nodes (terminals excluded) reachable from `roots`.
    /// A node and its complement handle count once — they are one node.
    pub fn size(&self, roots: &[NodeRef]) -> usize {
        let mut marks = self.marks.take();
        marks.begin(self.var_col.len());
        let mut stack: Vec<NodeRef> = roots.to_vec();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marks.mark(n) {
                continue;
            }
            count += 1;
            let i = n.idx();
            stack.push(self.lo_col[i]);
            stack.push(self.hi_col[i]);
        }
        self.marks.replace(marks);
        count
    }

    /// Total allocated (live or dead) non-terminal nodes in the store.
    pub fn allocated_nodes(&self) -> usize {
        self.var_col.len() - 1 - self.free_len
    }

    /// Mark-and-sweep garbage collection: frees every node not reachable
    /// from `roots` and invalidates the operation cache. Handles reachable
    /// from `roots` remain valid. Returns the number of nodes freed.
    pub fn gc(&mut self, roots: &[NodeRef]) -> usize {
        let mut marks = self.marks.take();
        marks.begin(self.var_col.len());
        let mut stack: Vec<NodeRef> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marks.mark(n) {
                continue;
            }
            let i = n.idx();
            stack.push(self.lo_col[i]);
            stack.push(self.hi_col[i]);
        }
        let mut dropped: Vec<NodeRef> = Vec::new();
        for table in &mut self.unique {
            table.retain(|n| marks.is_marked(n), &mut dropped);
        }
        self.marks.replace(marks);
        let freed = dropped.len();
        for n in dropped {
            self.free_push(n.idx());
        }
        self.reclaimed_nodes += freed as u64;
        // Collection moves no node, so a cache entry stays valid exactly
        // when everything it mentions survived. Freed slots are not reused
        // until a later `mk`, so the FREE_VAR test below is race-free.
        // `EMPTY` passes as key padding; token keys (variable ids, rename
        // signatures) are at worst dropped spuriously.
        let (var_col, n) = (&self.var_col, self.var_col.len());
        let alive = |r: NodeRef| {
            r.is_terminal() || r == EMPTY || (r.idx() < n && var_col[r.idx()] != FREE_VAR)
        };
        self.cache.retain(alive);
        self.andex.retain(alive);
        freed
    }

    /// Invalidates both operation caches in O(1) (needed after reordering;
    /// done automatically by [`Bdd::sift`]).
    pub fn clear_cache(&mut self) {
        self.cache.invalidate();
        self.andex.invalidate();
    }

    /// Walks the whole store and panics on any violation of the kernel's
    /// representation invariants:
    ///
    /// * stored handles (table values and hi edges) are regular — no
    ///   complemented then-edges anywhere;
    /// * every unique-table entry matches the arena columns, labels its own
    ///   variable, is reduced (`lo != hi`), respects the level order, and
    ///   appears in exactly one table;
    /// * children are live (never free-list slots);
    /// * table entries + free-list slots exactly tile the arena, and the
    ///   free-list thread has the recorded length;
    /// * while sifting-time refcounts are active, every count is at least
    ///   the node's in-table reference count.
    ///
    /// Intended for tests and `debug_assert!`-gated self-checks (the sift
    /// epilogue runs it in debug builds); it is O(arena) and allocates.
    pub fn check_canonical(&self) {
        let n = self.var_col.len();
        assert_eq!(self.lo_col.len(), n, "column length mismatch");
        assert_eq!(self.hi_col.len(), n, "column length mismatch");
        assert_eq!(
            self.var_col[0], TERMINAL_VAR,
            "index 0 must be the terminal"
        );
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut entries = 0usize;
        let mut table_refs = vec![0u32; n];
        for (var, table) in self.unique.iter().enumerate() {
            for (lo, hi, node) in table.iter() {
                entries += 1;
                assert_eq!(node.parity(), 0, "table holds a complemented handle");
                let i = node.idx();
                assert!(i < n, "table handle out of bounds");
                assert!(!seen[i], "node {i} appears in two tables");
                seen[i] = true;
                assert_eq!(self.var_col[i], var as u32, "table/column var mismatch");
                assert_eq!(self.lo_col[i], lo, "table/column lo mismatch");
                assert_eq!(self.hi_col[i], hi, "table/column hi mismatch");
                assert_eq!(hi.parity(), 0, "complemented hi edge at node {i}");
                assert_ne!(lo, hi, "unreduced node {i}");
                for child in [lo, hi] {
                    if !child.is_terminal() {
                        let ci = child.idx();
                        assert!(ci < n, "child out of bounds");
                        let cv = self.var_col[ci];
                        assert_ne!(cv, FREE_VAR, "node {i} points at freed slot {ci}");
                        assert!(
                            self.level_of_var[var] < self.level_of_var[cv as usize],
                            "level order violated at node {i}"
                        );
                        table_refs[ci] += 1;
                    }
                }
            }
        }
        assert_eq!(
            entries,
            self.allocated_nodes(),
            "unique-table entries vs allocated nodes"
        );
        let mut free_cnt = 0usize;
        let mut i = self.free_head;
        while i != NO_FREE {
            let ii = i as usize;
            assert!(ii < n, "free-list index out of bounds");
            assert_eq!(self.var_col[ii], FREE_VAR, "free slot not marked FREE_VAR");
            assert!(!seen[ii], "free slot {ii} also sits in a unique table");
            free_cnt += 1;
            assert!(free_cnt <= self.free_len, "free-list longer than recorded");
            i = self.lo_col[ii].0;
        }
        assert_eq!(free_cnt, self.free_len, "free-list length mismatch");
        assert_eq!(
            entries + self.free_len + 1,
            n,
            "arena not tiled by tables + free-list"
        );
        if self.rc_active {
            for (idx, &refs) in table_refs.iter().enumerate() {
                if refs > 0 {
                    assert!(
                        self.rc[idx] >= refs,
                        "rc[{idx}] = {} below its in-table reference count {refs}",
                        self.rc[idx]
                    );
                }
            }
        }
    }

    /// Renders the graph rooted at `roots` in Graphviz DOT format. The
    /// single terminal renders as a box labelled `1`; complemented edges
    /// carry a dot-shaped arrowhead, low edges are dashed.
    pub fn to_dot(&self, roots: &[(&str, NodeRef)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = Vec::new();
        let edge_attrs = |to: NodeRef, dashed: bool| -> String {
            let mut attrs = Vec::new();
            if dashed {
                attrs.push("style=dashed");
            }
            if to.parity() == 1 {
                attrs.push("arrowhead=odot");
            }
            if attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", attrs.join(","))
            }
        };
        for (name, r) in roots {
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(
                out,
                "  \"{name}\" -> n{}{};",
                r.idx(),
                edge_attrs(*r, false)
            );
            stack.push(r.regular());
        }
        let _ = writeln!(out, "  n0 [shape=box,label=\"1\"];");
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n.idx()) {
                continue;
            }
            let i = n.idx();
            let (lo, hi) = (self.lo_col[i], self.hi_col[i]);
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\"];",
                self.var_names[self.var_col[i] as usize]
            );
            let _ = writeln!(out, "  n{i} -> n{}{};", lo.idx(), edge_attrs(lo, true));
            let _ = writeln!(out, "  n{i} -> n{}{};", hi.idx(), edge_attrs(hi, false));
            stack.push(lo.regular());
            stack.push(hi.regular());
        }
        out.push_str("}\n");
        out
    }

    // ---- internals shared with the reorder module ----

    /// Raw stored fields of a (regular) node handle: `(var, lo, hi)` with
    /// the hi edge regular by canonical form.
    pub(crate) fn node(&self, n: NodeRef) -> (u32, NodeRef, NodeRef) {
        let i = n.idx();
        (self.var_col[i], self.lo_col[i], self.hi_col[i])
    }

    pub(crate) fn rewrite_node(&mut self, n: NodeRef, var: u32, lo: NodeRef, hi: NodeRef) {
        debug_assert_eq!(hi.parity(), 0, "rewrite would store a complemented hi edge");
        let i = n.idx();
        self.var_col[i] = var;
        self.lo_col[i] = lo;
        self.hi_col[i] = hi;
    }

    pub(crate) fn unique_table(&self, var: u32) -> &UniqueTable {
        &self.unique[var as usize]
    }

    pub(crate) fn unique_table_mut(&mut self, var: u32) -> &mut UniqueTable {
        &mut self.unique[var as usize]
    }

    pub(crate) fn make_inner(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk_raw(var, lo, hi)
    }

    pub(crate) fn set_level(&mut self, v: u32, level: u32) {
        self.level_of_var[v as usize] = level;
        self.var_at_level[level as usize] = v;
    }

    /// Installs reference counts for every live node (callers must have
    /// garbage-collected first so the tables contain exactly the reachable
    /// nodes) and turns on sifting-time reclamation.
    pub(crate) fn rc_begin(&mut self, roots: &[NodeRef]) {
        self.rc.clear();
        self.rc.resize(self.var_col.len(), 0);
        let rc = &mut self.rc;
        for table in &self.unique {
            for (lo, hi, _) in table.iter() {
                if !lo.is_terminal() {
                    rc[lo.idx()] += 1;
                }
                if !hi.is_terminal() {
                    rc[hi.idx()] += 1;
                }
            }
        }
        for &r in roots {
            if !r.is_terminal() {
                rc[r.idx()] += 1;
            }
        }
        self.rc_active = true;
    }

    /// Turns sifting-time reclamation back off and drops the counts.
    pub(crate) fn rc_end(&mut self) {
        self.rc_active = false;
        self.rc.clear();
    }

    pub(crate) fn rc_is_active(&self) -> bool {
        self.rc_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (Bdd, Var, Var, Var) {
        let mut b = Bdd::new();
        let x = b.new_var("x");
        let y = b.new_var("y");
        let z = b.new_var("z");
        (b, x, y, z)
    }

    #[test]
    fn constants_and_vars() {
        let (mut b, x, _, _) = setup3();
        assert!(b.constant(true).is_true());
        assert!(b.constant(false).is_false());
        let fx = b.var(x);
        assert!(b.eval(fx, |_| true));
        assert!(!b.eval(fx, |_| false));
        let nx = b.nvar(x);
        let alt = b.not(fx);
        assert_eq!(nx, alt, "canonical: !x built two ways is one handle");
        b.check_canonical();
    }

    #[test]
    fn not_performs_zero_mk_calls() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let t = b.and(fx, fy);
        let f = b.xor(t, fz);
        let mk_before = b.mk_calls();
        let stats_before = b.stats();
        let nf = b.not(f);
        assert_eq!(b.mk_calls(), mk_before, "not() must perform zero mk calls");
        assert_eq!(
            b.stats().cache_lookups,
            stats_before.cache_lookups,
            "not() must not even probe the operation cache"
        );
        assert_ne!(nf, f);
        for bits in 0..8u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            assert_eq!(b.eval(nf, assign), !b.eval(f, assign), "bits={bits:03b}");
        }
    }

    #[test]
    fn double_negation_is_identity() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let t = b.or(fx, fy);
        let f = b.iff(t, fz);
        let n1 = b.not(f);
        let n2 = b.not(n1);
        assert_eq!(n2, f, "double negation must be the identity handle");
        assert_eq!(b.not(NodeRef::TRUE), NodeRef::FALSE);
        assert_eq!(b.not(NodeRef::FALSE), NodeRef::TRUE);
    }

    #[test]
    fn complement_halves_live_nodes() {
        // A function and its negation must share every node: materializing
        // ¬f after f allocates nothing.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..8).map(|i| b.new_var(format!("v{i}"))).collect();
        let mut f = NodeRef::FALSE;
        for w in vars.windows(2) {
            let a = b.var(w[0]);
            let c = b.var(w[1]);
            let t = b.and(a, c);
            f = b.xor(f, t);
        }
        let allocated = b.allocated_nodes();
        let nf = b.not(f);
        assert_eq!(b.allocated_nodes(), allocated, "¬f allocated new nodes");
        assert_eq!(b.size(&[f, nf]), b.size(&[f]), "f and ¬f share every node");
        b.check_canonical();
    }

    #[test]
    fn canonical_hash_consing() {
        let (mut b, x, y, _) = setup3();
        let fx = b.var(x);
        let fy = b.var(y);
        let f1 = b.and(fx, fy);
        let f2 = b.and(fy, fx);
        assert_eq!(f1, f2, "and is commutative up to node identity");
        let g1 = b.or(fx, fy);
        let nfx = b.not(fx);
        let nfy = b.not(fy);
        let ng = b.and(nfx, nfy);
        let g2 = b.not(ng);
        assert_eq!(g1, g2, "De Morgan holds up to node identity");
        b.check_canonical();
    }

    #[test]
    fn ite_truth_table() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let f = b.ite(fx, fy, fz);
        for bits in 0..8u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            let want = if assign(x) { assign(y) } else { assign(z) };
            assert_eq!(b.eval(f, assign), want, "bits={bits:03b}");
        }
    }

    #[test]
    fn xor_iff_implies() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let fxor = b.xor(fx, fy);
        let fiff = b.iff(fx, fy);
        let fimp = b.implies(fx, fy);
        for bits in 0..4u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            assert_eq!(b.eval(fxor, assign), assign(x) ^ assign(y));
            assert_eq!(b.eval(fiff, assign), assign(x) == assign(y));
            assert_eq!(b.eval(fimp, assign), !assign(x) | assign(y));
        }
        assert_eq!(fiff, b.not(fxor), "iff is xor's complement handle");
    }

    #[test]
    fn commutative_ops_share_cache_slots() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let _f = b.or(fx, fy);
        let hits_before = b.stats().cache_hits;
        let _g = b.or(fy, fx); // normalized to the same cache key
        assert!(
            b.stats().cache_hits > hits_before,
            "or(b, a) must hit the cache entry left by or(a, b)"
        );
        let _h = b.and(fx, fy);
        let hits_before = b.stats().cache_hits;
        let _k = b.and(fy, fx);
        assert!(
            b.stats().cache_hits > hits_before,
            "and(b, a) must hit the cache entry left by and(a, b)"
        );
    }

    #[test]
    fn negated_ops_share_cache_slots() {
        // Complement-edge normalization folds and/or through De Morgan onto
        // one canonical ITE triple, so or(¬a, ¬b) must hit the cache entry
        // left by and(a, b).
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let conj = b.and(fx, fy);
        let hits_before = b.stats().cache_hits;
        let (nx, ny) = (b.not(fx), b.not(fy));
        let disj = b.or(nx, ny);
        assert!(
            b.stats().cache_hits > hits_before,
            "or(!a, !b) must share and(a, b)'s cache entry"
        );
        assert_eq!(disj, b.not(conj));
    }

    #[test]
    fn restrict_and_exists() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy);
        let f_x1 = b.restrict(f, x, true);
        assert_eq!(f_x1, fy);
        let f_x0 = b.restrict(f, x, false);
        assert!(f_x0.is_false());
        let ex = b.exists(f, x);
        assert_eq!(ex, fy);
        let fa = b.forall(f, x);
        assert!(fa.is_false());
    }

    #[test]
    fn quantifier_duality_shares_memo_entries() {
        // ∃v. ¬f = ¬(∀v. f): the duality must hold up to handle identity.
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let t = b.and(fx, fy);
        let f = b.or(t, fz);
        let nf = b.not(f);
        for v in [x, y, z] {
            let e = b.exists(nf, v);
            let a = b.forall(f, v);
            assert_eq!(e, b.not(a), "∃{v}.!f must equal !(∀{v}.f)");
        }
    }

    #[test]
    fn cofactors_match_restrict() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let t = b.and(fx, fy);
        let u = b.xor(fy, fz);
        let f = b.or(t, u);
        for root in [f, b.not(f)] {
            for v in [x, y, z] {
                let r0 = b.restrict(root, v, false);
                let r1 = b.restrict(root, v, true);
                b.clear_cache();
                let (c0, c1) = b.cofactors(root, v);
                assert_eq!((c0, c1), (r0, r1), "cofactors vs restrict at {v}");
            }
        }
    }

    #[test]
    fn shared_cofactor_pass_halves_visits() {
        // Build a function wide enough that the traversal count is
        // meaningful, then compare two restrict sweeps against one
        // cofactors sweep on a cold cache.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..10).map(|i| b.new_var(format!("v{i}"))).collect();
        let mut f = NodeRef::FALSE;
        for w in vars.windows(2) {
            let a = b.var(w[0]);
            let c = b.var(w[1]);
            let t = b.and(a, c);
            f = b.xor(f, t);
        }
        let v = vars[9]; // bottom variable: every node is above it
        b.clear_cache();
        let before = b.stats().op_visits;
        let r0 = b.restrict(f, v, false);
        let r1 = b.restrict(f, v, true);
        let two_pass_visits = b.stats().op_visits - before;
        b.clear_cache();
        let before = b.stats().op_visits;
        let (c0, c1) = b.cofactors(f, v);
        let one_pass_visits = b.stats().op_visits - before;
        assert_eq!((c0, c1), (r0, r1));
        // Ideally one pass does half the visits of two; the lossy cache can
        // cost a few re-traversals, so assert a 25% drop at minimum.
        assert!(
            4 * one_pass_visits <= 3 * two_pass_visits,
            "shared pass must visit substantially fewer nodes: \
             one-pass {one_pass_visits} vs two-pass {two_pass_visits}"
        );
    }

    #[test]
    fn support_is_essential_dependence() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        // f = x·y + x·!y = x : support must not include y.
        let nfy = b.not(fy);
        let a = b.and(fx, fy);
        let c = b.and(fx, nfy);
        let f = b.or(a, c);
        assert_eq!(b.support(f), vec![x]);
        let g = b.and(fy, fz);
        assert_eq!(b.support(g), vec![y, z]);
        let ng = b.not(g);
        assert_eq!(
            b.support(ng),
            vec![y, z],
            "support ignores the complement bit"
        );
    }

    #[test]
    fn sat_count_small() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        assert_eq!(b.sat_count(NodeRef::TRUE), 8);
        assert_eq!(b.sat_count(NodeRef::FALSE), 0);
        assert_eq!(b.sat_count(fx), 4);
        let f = b.and(fx, fy);
        assert_eq!(b.sat_count(f), 2);
        let g = b.or_all([fx, fy, fz]);
        assert_eq!(b.sat_count(g), 7);
        let h = b.xor(fx, fy);
        assert_eq!(b.sat_count(h), 4);
        let nh = b.not(h);
        assert_eq!(b.sat_count(nh), 4, "complement counts the complement set");
        let nf = b.not(f);
        assert_eq!(b.sat_count(nf), 6);
    }

    #[test]
    fn sat_count_at_the_u128_boundary() {
        // 127 variables: every count fits in u128.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..127).map(|i| b.new_var(format!("v{i}"))).collect();
        assert_eq!(b.checked_sat_count(NodeRef::TRUE), Some(1u128 << 127));
        let fx = b.var(vars[0]);
        assert_eq!(b.checked_sat_count(fx), Some(1u128 << 126));

        // 128 variables: the tautology's count (2^128) overflows, but
        // narrower functions still fit exactly.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..128).map(|i| b.new_var(format!("v{i}"))).collect();
        assert_eq!(b.checked_sat_count(NodeRef::TRUE), None);
        assert_eq!(b.sat_count(NodeRef::TRUE), u128::MAX, "saturates, no panic");
        assert_eq!(b.checked_sat_count(NodeRef::FALSE), Some(0));
        let fx = b.var(vars[0]);
        assert_eq!(b.checked_sat_count(fx), Some(1u128 << 127));
        let nfx = b.not(fx);
        let taut = b.or(fx, nfx);
        assert_eq!(b.checked_sat_count(taut), None);
    }

    #[test]
    fn pick_cube_satisfies() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let nfx = b.not(fx);
        let f = b.and(nfx, fy);
        let cube = b.pick_cube(f).unwrap();
        let assign = |v: Var| cube.iter().any(|&(cv, val)| cv == v && val);
        assert!(b.eval(f, assign));
        assert_eq!(b.pick_cube(NodeRef::FALSE), None);
        // A witness from a complemented handle satisfies the complement.
        let nf = b.not(f);
        let ncube = b.pick_cube(nf).unwrap();
        let nassign = |v: Var| ncube.iter().any(|&(cv, val)| cv == v && val);
        assert!(b.eval(nf, nassign));
        assert!(!b.eval(f, nassign));
    }

    #[test]
    fn gc_frees_unreachable_keeps_reachable() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let keep = b.and(fx, fy);
        let _garbage = b.xor(fy, fz);
        let before = b.allocated_nodes();
        let freed = b.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(b.allocated_nodes(), before - freed);
        // keep still evaluates correctly after gc
        assert!(b.eval(keep, |_| true));
        // and rebuilding the collected structure lands on the same handle
        let fx2 = b.var(x);
        let fy2 = b.var(y);
        let again = b.and(fx2, fy2);
        assert_eq!(again, keep);
        b.check_canonical();
    }

    #[test]
    fn check_canonical_accepts_a_worked_manager() {
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..6).map(|i| b.new_var(format!("v{i}"))).collect();
        let mut f = NodeRef::TRUE;
        for w in vars.windows(2) {
            let a = b.var(w[0]);
            let c = b.nvar(w[1]);
            let t = b.or(a, c);
            f = b.and(f, t);
        }
        let g = b.xor(f, b.constant(true));
        b.check_canonical();
        // Free-list threading must survive a gc + re-allocation cycle.
        b.gc(&[f]);
        b.check_canonical();
        let _ = g; // g was collected; rebuild something over the free slots
        let lits: Vec<NodeRef> = vars.iter().map(|&v| b.var(v)).collect();
        let h = b.or_all(lits);
        assert!(!h.is_false());
        b.check_canonical();
    }

    #[test]
    fn unique_table_remove_keeps_probe_chains_intact() {
        // Stress the backward-shift deletion: insert a batch, remove half
        // in an interleaved pattern, and verify every survivor is still
        // found and every removed key is gone.
        let mut t = UniqueTable::new();
        let n = 512u32;
        for i in 0..n {
            t.insert(NodeRef(i), NodeRef(i + 1), NodeRef(1000 + i));
        }
        for i in (0..n).step_by(2) {
            assert_eq!(
                t.remove(NodeRef(i), NodeRef(i + 1)),
                Some(NodeRef(1000 + i))
            );
        }
        assert_eq!(t.len(), n as usize / 2);
        for i in 0..n {
            let got = t.get(NodeRef(i), NodeRef(i + 1));
            if i % 2 == 0 {
                assert_eq!(got, None, "removed key {i} must be gone");
            } else {
                assert_eq!(got, Some(NodeRef(1000 + i)), "survivor {i} must be found");
            }
        }
        // Re-inserting removed keys must work and not duplicate.
        for i in (0..n).step_by(2) {
            assert_eq!(
                t.insert(NodeRef(i), NodeRef(i + 1), NodeRef(2000 + i)),
                None
            );
        }
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn op_cache_generation_invalidation() {
        let mut c = OpCache::new();
        c.insert(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7), NodeRef(8));
        assert_eq!(
            c.lookup(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7)),
            Some(NodeRef(8))
        );
        c.invalidate();
        assert_eq!(c.lookup(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7)), None);
        assert_eq!(c.len, 0);
        // Entries written after invalidation are visible again.
        c.insert(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7), NodeRef(9));
        assert_eq!(
            c.lookup(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7)),
            Some(NodeRef(9))
        );
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy);
        let g = b.or(fx, fy);
        let both = b.size(&[f, g]);
        assert!(both <= b.size(&[f]) + b.size(&[g]));
        assert_eq!(b.size(&[NodeRef::TRUE]), 0);
    }

    #[test]
    fn to_dot_contains_roots_and_terminals() {
        let (mut b, x, _, _) = setup3();
        let fx = b.var(x);
        let dot = b.to_dot(&[("f", fx)]);
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("label=\"x\""));
        // Complement edges are visible: ¬x's root edge carries the marker.
        let nfx = b.not(fx);
        let ndot = b.to_dot(&[("g", nfx)]);
        assert!(ndot.contains("arrowhead=odot"));
    }

    #[test]
    fn var_metadata() {
        let (b, x, y, z) = setup3();
        assert_eq!(b.num_vars(), 3);
        assert_eq!(b.var_name(y), "y");
        assert_eq!(b.level(x), 0);
        assert_eq!(b.var_at(2), z);
        assert_eq!(b.order(), vec![x, y, z]);
    }

    #[test]
    fn rename_substitutes_variables() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy); // x & y
        let r = b.rename(f, &[(y, z)]); // -> x & z
        let fz = b.var(z);
        let expect = b.and(fx, fz);
        assert_eq!(r, expect);
        // Untouched variables and empty maps are identities.
        assert_eq!(b.rename(f, &[]), f);
        assert_eq!(b.rename(f, &[(z, z)]), f);
        // Renaming commutes with complement up to handle identity.
        let nf = b.not(f);
        let nr = b.rename(nf, &[(y, z)]);
        assert_eq!(nr, b.not(expect));
    }

    #[test]
    fn rename_is_simultaneous_and_order_independent() {
        let mut b = Bdd::new();
        // Next-state rail declared *before* its current rail: renaming must
        // move functions upward in the order correctly.
        let xn = b.new_var("x'");
        let yn = b.new_var("y'");
        let x = b.new_var("x");
        let y = b.new_var("y");
        let (fxn, fyn) = (b.var(xn), b.var(yn));
        let nyn = b.not(fyn);
        let f = b.and(fxn, nyn); // x' & !y'
        let r = b.rename(f, &[(xn, x), (yn, y)]);
        let (fx, fy) = (b.var(x), b.var(y));
        let nfy = b.not(fy);
        let expect = b.and(fx, nfy);
        assert_eq!(r, expect);
        // Truth table agrees under the variable swap.
        for bits in 0..4u32 {
            let val = |v: Var| (v == x && bits & 1 != 0) || (v == y && bits & 2 != 0);
            let val_next = |v: Var| (v == xn && bits & 1 != 0) || (v == yn && bits & 2 != 0);
            assert_eq!(b.eval(r, val), b.eval(f, val_next));
        }
    }

    #[test]
    fn rename_preserves_sharing_with_xor() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.xor(fx, fy);
        let g = b.rename(f, &[(x, z)]);
        let fz = b.var(z);
        let expect = b.xor(fz, fy);
        assert_eq!(g, expect);
        assert_eq!(b.support(g), vec![y, z]);
    }
}
