//! End-to-end tests of the `polis` command-line tool.

use std::path::Path;
use std::process::Command;

const SPEC: &str = r#"
module pinger {
    input go;
    output ping;
    state s;
    from s to s when go do { emit ping; }
}
module ponger {
    input ping;
    output pong;
    state s;
    from s to s when ping do { emit pong; }
}
"#;

const PROPS: &str = r#"
properties {
    assert reachable ponger@s;
    assert never pinger.go && ponger.ping;
}
"#;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_polis"))
}

fn write(dir: &Path, name: &str, content: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p.to_string_lossy().into_owned()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("polis_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn synth_writes_c_files_and_cost_table() {
    let dir = tmpdir("synth");
    let spec = write(&dir, "pp.pol", SPEC);
    let out = bin()
        .args(["synth", &spec, "-o"])
        .arg(dir.join("gen"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pinger"));
    assert!(stdout.contains("total ROM"));
    for f in ["polis_rtos.h", "rtos.c", "pinger.c", "ponger.c"] {
        assert!(dir.join("gen").join(f).exists(), "missing {f}");
    }
    let c = std::fs::read_to_string(dir.join("gen/pinger.c")).unwrap();
    assert!(c.contains("void pinger_react"));
}

#[test]
fn estimate_prints_error_columns() {
    let dir = tmpdir("est");
    let spec = write(&dir, "pp.pol", SPEC);
    let out = bin().args(["estimate", &spec]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("err%"), "{stdout}");
    assert!(stdout.contains("pinger"));
}

#[test]
fn sim_runs_a_stimulus_file() {
    let dir = tmpdir("sim");
    let spec = write(&dir, "pp.pol", SPEC);
    let stim = write(&dir, "stim.txt", "# demo\n0 go\n1000 go\n");
    let out = bin()
        .args(["sim", &spec, "--stim", &stim])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("ping ").count(), 2, "{stdout}");
    assert_eq!(stdout.matches("pong ").count(), 2, "{stdout}");
    assert!(stdout.contains("busy"));
}

#[test]
fn verify_reports_reachability_verdicts() {
    let dir = tmpdir("verify");
    let spec = write(&dir, "pp.pol", SPEC);
    let out = bin().args(["verify", &spec]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fixpoint:"), "{stdout}");
    assert!(stdout.contains("reachable states"), "{stdout}");
    // The environment can always redeliver `go` before pinger reacts.
    assert!(stdout.contains("env -> pinger.go: POSSIBLE"), "{stdout}");
    assert!(stdout.contains("dead transitions: none"), "{stdout}");

    // An impossibly small node budget aborts with a structured message.
    let out = bin()
        .args(["verify", &spec, "--node-budget", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("node budget exceeded"), "{stderr}");

    let bad = bin()
        .args(["verify", &spec, "--node-budget", "zero"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}

#[test]
fn verify_props_appends_verdicts_and_keeps_default_output_identical() {
    let dir = tmpdir("props");
    let plain = write(&dir, "pp.pol", SPEC);
    let sub = dir.join("suite");
    std::fs::create_dir_all(&sub).unwrap();
    let with_props = write(&sub, "pp.pol", &format!("{SPEC}\n{PROPS}"));

    // A properties block does not disturb the default verify output.
    let base = bin().args(["verify", &plain]).output().unwrap();
    let ignored = bin().args(["verify", &with_props]).output().unwrap();
    assert!(base.status.success() && ignored.status.success());
    assert_eq!(
        strip_wall(&String::from_utf8_lossy(&base.stdout)),
        strip_wall(&String::from_utf8_lossy(&ignored.stdout)),
        "properties changed the default verify output"
    );

    let out = bin()
        .args(["verify", &with_props, "--props"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The plain report still leads, verbatim.
    assert!(stdout.contains("fixpoint:"), "{stdout}");
    assert!(stdout.contains("env -> pinger.go: POSSIBLE"), "{stdout}");
    assert!(
        stdout.contains("properties: 2 checked, 1 violated"),
        "{stdout}"
    );
    assert!(
        stdout.contains("assert reachable ponger@s: holds"),
        "{stdout}"
    );
    assert!(
        stdout.contains("assert never (pinger.go && ponger.ping): VIOLATED"),
        "{stdout}"
    );
    assert!(stdout.contains("counterexample ("), "{stdout}");
    assert!(stdout.contains("deliver go"), "{stdout}");
}

fn strip_wall(out: &str) -> String {
    out.lines()
        .filter(|l| !l.starts_with("verification took"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn prop_subcommand_prints_traces_and_requires_a_suite() {
    let dir = tmpdir("prop");
    let spec = write(&dir, "ppp.pol", &format!("{SPEC}\n{PROPS}"));
    let out = bin().args(["prop", &spec]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("properties: 2 checked, 1 violated"),
        "{stdout}"
    );
    assert!(stdout.contains("react pinger #0 (s -> s)"), "{stdout}");
    assert!(stdout.contains("checked 2 properties in"), "{stdout}");

    // Without a properties block the subcommand refuses.
    let bare = write(&dir, "pp.pol", SPEC);
    let out = bin().args(["prop", &bare]).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no properties block"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Unknown names in a property are positioned diagnostics.
    let bad = write(
        &dir,
        "bad.pol",
        &format!("{SPEC}\nproperties {{\n    assert never pinger@missing;\n}}\n"),
    );
    let out = bin().args(["prop", &bad]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("has no state `missing`"), "{stderr}");
}

#[test]
fn synth_verify_flag_appends_report_and_keeps_output_identical() {
    let dir = tmpdir("synth_verify");
    let spec = write(&dir, "pp.pol", SPEC);
    let run = |extra: &[&str], sub: &str| -> (std::path::PathBuf, String) {
        let gen = dir.join(sub);
        std::fs::create_dir_all(&gen).unwrap();
        let out = bin()
            .args(["synth", &spec, "-o"])
            .arg(&gen)
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (gen, String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let (plain_dir, plain_out) = run(&[], "plain");
    let (verified_dir, verified_out) = run(&["--verify"], "verified");
    assert!(!plain_out.contains("fixpoint:"));
    assert!(verified_out.contains("fixpoint:"), "{verified_out}");
    assert!(verified_out.contains("lost events:"), "{verified_out}");
    // Verification is post-codegen: generated C is byte-identical.
    for f in ["rtos.c", "pinger.c", "ponger.c", "polis_rtos.h"] {
        let a = std::fs::read(plain_dir.join(f)).unwrap();
        let b = std::fs::read(verified_dir.join(f)).unwrap();
        assert_eq!(a, b, "{f} differs with --verify");
    }
}

#[test]
fn dot_emits_graphviz_for_selected_module() {
    let dir = tmpdir("dot");
    let spec = write(&dir, "pp.pol", SPEC);
    let out = bin()
        .args(["dot", &spec, "--module", "ponger"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("digraph \"ponger\""));
    assert!(!stdout.contains("digraph \"pinger\""));
}

#[test]
fn fmt_normalizes_and_roundtrips() {
    let dir = tmpdir("fmt");
    let spec = write(&dir, "pp.pol", SPEC);
    let out = bin().args(["fmt", &spec]).output().unwrap();
    assert!(out.status.success());
    let formatted = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(formatted.contains("module pinger {"));
    // Formatting the formatter's output is a fixpoint.
    let spec2 = write(&dir, "pp2.pol", &formatted);
    let out2 = bin().args(["fmt", &spec2]).output().unwrap();
    assert!(out2.status.success());
    assert_eq!(String::from_utf8_lossy(&out2.stdout), formatted);

    // Property blocks are normalized and roundtrip too.
    let spec3 = write(&dir, "pp3.pol", &format!("{SPEC}\n{PROPS}"));
    let out3 = bin().args(["fmt", &spec3]).output().unwrap();
    assert!(out3.status.success());
    let formatted = String::from_utf8_lossy(&out3.stdout).into_owned();
    assert!(formatted.contains("properties {"), "{formatted}");
    assert!(
        formatted.contains("assert never (pinger.go && ponger.ping);"),
        "{formatted}"
    );
    let spec4 = write(&dir, "pp4.pol", &formatted);
    let out4 = bin().args(["fmt", &spec4]).output().unwrap();
    assert!(out4.status.success());
    assert_eq!(String::from_utf8_lossy(&out4.stdout), formatted);
}

#[test]
fn synth_jobs_is_deterministic_and_trace_is_written() {
    let dir = tmpdir("jobs");
    let spec = write(&dir, "pp.pol", SPEC);
    let run = |jobs: &str, sub: &str| -> std::path::PathBuf {
        let gen = dir.join(sub);
        let trace = gen.join("trace.json");
        std::fs::create_dir_all(&gen).unwrap();
        let out = bin()
            .args(["synth", &spec, "--jobs", jobs, "-o"])
            .arg(&gen)
            .arg("--trace")
            .arg(&trace)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        gen
    };
    let g1 = run("1", "gen1");
    let g4 = run("4", "gen4");
    // Byte-identical generated sources regardless of --jobs.
    for f in ["rtos.c", "pinger.c", "ponger.c", "polis_rtos.h"] {
        let a = std::fs::read(g1.join(f)).unwrap();
        let b = std::fs::read(g4.join(f)).unwrap();
        assert_eq!(a, b, "{f} differs between --jobs 1 and --jobs 4");
    }
    // The trace is JSON with the expected stages, parse first.
    let trace = std::fs::read_to_string(g1.join("trace.json")).unwrap();
    assert!(trace.starts_with('{'), "{trace}");
    for stage in [
        "parse", "chi", "sift", "sgraph", "compile", "emit_c", "estimate", "measure", "rtos",
    ] {
        assert!(
            trace.contains(&format!("\"stage\": \"{stage}\"")),
            "missing {stage}: {trace}"
        );
    }
    assert!(trace.contains("\"machine\": \"pinger\""));
    assert!(trace.contains("\"wall_us\":"));

    // A bad jobs value is rejected.
    let bad = bin()
        .args(["synth", &spec, "--jobs", "0"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}

#[test]
fn errors_are_reported_with_positions() {
    let dir = tmpdir("err");
    let spec = write(&dir, "bad.pol", "module m {\n  input $;\n}");
    let out = bin().args(["synth", &spec]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2:"), "{stderr}");

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn style_and_target_flags_change_output() {
    let dir = tmpdir("style");
    let spec = write(&dir, "pp.pol", SPEC);
    let run = |extra: &[&str]| -> String {
        let out = bin()
            .args(["estimate", &spec])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let dg = run(&[]);
    let chain = run(&["--style", "chain"]);
    let risc = run(&["--target", "risc32"]);
    assert_ne!(dg, chain);
    assert_ne!(dg, risc);
    let bad = bin()
        .args(["estimate", &spec, "--style", "bogus"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}
