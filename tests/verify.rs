//! Integration tests of the symbolic verification engine against the
//! rest of the system: the RTOS co-simulator (lost events), the s-graph
//! evaluator (χ conformance), the estimator (reach-aware false-path
//! bounds), and the staged pipeline (graceful budget aborts).

use polis::cfsm::{Cfsm, Network, ReactiveFn, RfVarKind};
use polis::core::random::{random_network, RandomSpec, Rng};
use polis::core::{synthesize_network_staged, workloads, SynthError, SynthesisOptions};
use polis::estimate::Incompat;
use polis::expr::{Expr, Type, Value};
use polis::rtos::{RtosConfig, Simulator, Stimulus};
use polis::sgraph::{build, EvalError, SgEnv};
use polis::verify::{verify_network, Verifier, VerifyError, VerifyOptions};
use std::collections::HashMap;

fn example_networks() -> Vec<Network> {
    vec![
        Network::new("simple", vec![workloads::simple()]).unwrap(),
        workloads::dashboard(),
        workloads::shock_absorber(),
        workloads::seat_belt(),
    ]
}

// ---------------------------------------------------------------------
// Satellite (a): whenever the co-simulator drops an event, verification
// must flag the loss as reachable — for every seeded random network.
// ---------------------------------------------------------------------

#[test]
fn sim_losses_are_flagged_by_verification() {
    let mut losses_observed = 0u64;
    for case in 0..12u64 {
        let mut rng = Rng::new(0x0010_57e4 ^ case.wrapping_mul(0x9e3779b9));
        let n = rng.usize(2..5);
        let net = random_network(n, &RandomSpec::default(), rng.u64(0..1_000));
        // Dense bursts on every primary input force one-place buffer
        // overwrites in the simulator.
        let mut stim = Vec::new();
        for k in 0..n {
            for _ in 0..rng.usize(2..8) {
                stim.push(Stimulus::pure(rng.u64(0..2_000), format!("ext{k}")));
            }
        }
        let mut sim = Simulator::build(&net, RtosConfig::default());
        sim.run(&stim);
        let overwritten = sim.stats().overwritten.clone();

        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        for (i, &lost) in overwritten.iter().enumerate() {
            if lost > 0 {
                losses_observed += lost;
                assert!(
                    report.lost_possible(net.cfsms()[i].name()),
                    "case {case}: sim dropped {lost} events at `{}` but \
                     verification claims no loss is reachable",
                    net.cfsms()[i].name()
                );
            }
        }
    }
    assert!(
        losses_observed > 0,
        "the stimulus bursts never caused a loss; the property was vacuous"
    );
}

// ---------------------------------------------------------------------
// Satellite (c): the s-graph evaluator and the characteristic-function
// BDD agree on every example CFSM, for random input vectors.
// ---------------------------------------------------------------------

struct VecEnv {
    presence: Vec<bool>,
    tests: Vec<bool>,
}

impl SgEnv for VecEnv {
    fn present(&mut self, input: usize) -> bool {
        self.presence[input]
    }
    fn test(&mut self, test: usize) -> Result<bool, EvalError> {
        Ok(self.tests[test])
    }
}

/// Encodes one evaluation (inputs chosen, outcome observed) as a total
/// assignment of χ's BDD variables; multi-bit variables are MSB-first.
fn chi_assignment(
    rf: &ReactiveFn,
    env: &VecEnv,
    ctrl: u64,
    fired: bool,
    actions: &[usize],
    next_ctrl: u64,
) -> HashMap<u32, bool> {
    let mut assign = HashMap::new();
    let encode = |bits: &[polis::bdd::Var], value: u64, map: &mut HashMap<u32, bool>| {
        for (j, bit) in bits.iter().enumerate() {
            map.insert(bit.0, (value >> (bits.len() - 1 - j)) & 1 == 1);
        }
    };
    for v in rf.inputs() {
        match v.kind {
            RfVarKind::Present { input } => {
                assign.insert(v.bits[0].0, env.presence[input]);
            }
            RfVarKind::Test { test } => {
                assign.insert(v.bits[0].0, env.tests[test]);
            }
            RfVarKind::Ctrl => encode(&v.bits, ctrl, &mut assign),
            _ => {}
        }
    }
    for v in rf.outputs() {
        match v.kind {
            RfVarKind::Consume => {
                assign.insert(v.bits[0].0, fired);
            }
            RfVarKind::Action { action } => {
                assign.insert(v.bits[0].0, actions.contains(&action));
            }
            RfVarKind::NextCtrl => encode(&v.bits, next_ctrl, &mut assign),
            _ => {}
        }
    }
    assign
}

#[test]
fn sgraph_evaluation_conforms_to_chi_bdd_on_every_example_machine() {
    let mut rng = Rng::new(0xc0_f0_12);
    for net in example_networks() {
        for m in net.cfsms() {
            let rf = ReactiveFn::build(m);
            let graph = build(&rf).unwrap();
            for ctrl in 0..m.states().len() as u64 {
                for _ in 0..32 {
                    let mut env = VecEnv {
                        presence: (0..m.inputs().len()).map(|_| rng.bool()).collect(),
                        tests: (0..m.tests().len()).map(|_| rng.bool()).collect(),
                    };
                    let out = graph.evaluate(&mut env, ctrl).unwrap();
                    let assign =
                        chi_assignment(&rf, &env, ctrl, out.fired, &out.actions, out.next_ctrl);
                    assert!(
                        rf.bdd().eval(rf.chi(), |v| assign[&v.0]),
                        "{}.{}: χ rejects the s-graph outcome {:?} from ctrl {ctrl} \
                         with presence {:?} tests {:?}",
                        net.name(),
                        m.name(),
                        out,
                        env.presence,
                        env.tests,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite (b): the verified reachability invariant tightens at least
// one false-path bound, and never loosens any.
// ---------------------------------------------------------------------

/// `driver` hands a token through `worker`, so `p` and `q` are never
/// co-pending — which kills `worker`'s expensive both-present path.
fn token_ring() -> Network {
    let mut b = Cfsm::builder("driver");
    b.input_pure("start");
    b.input_pure("tok");
    b.output_pure("p");
    b.output_pure("q");
    let s0 = b.ctrl_state("idle");
    let s1 = b.ctrl_state("sent_p");
    let s2 = b.ctrl_state("sent_q");
    b.transition(s0, s1).when_present("start").emit("p").done();
    b.transition(s1, s2).when_present("tok").emit("q").done();
    let driver = b.build().unwrap();

    let mut b = Cfsm::builder("worker");
    b.input_pure("p");
    b.input_pure("q");
    b.output_pure("tok");
    b.output_pure("out");
    b.state_var("n", Type::uint(8), Value::Int(0));
    let s = b.ctrl_state("s");
    b.transition(s, s)
        .when_present("p")
        .when_present("q")
        .emit("out")
        .assign("n", Expr::var("n").mul(Expr::var("n")).div(Expr::int(3)))
        .done();
    b.transition(s, s).when_present("p").emit("tok").done();
    b.transition(s, s).when_present("q").emit("out").done();
    let worker = b.build().unwrap();
    Network::new("token_ring", vec![driver, worker]).unwrap()
}

#[test]
fn reach_invariant_tightens_worker_bound_on_token_ring() {
    let net = token_ring();
    let opts = SynthesisOptions {
        verify: true,
        verify_refine_estimates: true,
        ..SynthesisOptions::default()
    };
    let (result, trace) =
        synthesize_network_staged(&net, &opts, &RtosConfig::default(), 1).unwrap();
    assert!(result.verify.is_some(), "verification report missing");
    assert!(trace.records().iter().any(|r| r.stage == "verify"));
    assert!(trace.records().iter().any(|r| r.stage == "refine"));

    let worker = net.machine_index("worker").unwrap();
    let r = &result.machines[worker];
    let baseline = r
        .max_cycles_false_path_aware
        .unwrap_or(r.estimate.max_cycles);
    let reach = r
        .max_cycles_reach_aware
        .expect("the exclusion must produce a reach-aware bound");
    assert!(
        reach < baseline,
        "reach-aware bound {reach} did not tighten the baseline {baseline}"
    );
}

#[test]
fn reach_invariant_never_loosens_any_example_bound() {
    let opts = SynthesisOptions {
        verify: true,
        verify_refine_estimates: true,
        ..SynthesisOptions::default()
    };
    for net in example_networks() {
        let (result, _) =
            synthesize_network_staged(&net, &opts, &RtosConfig::default(), 1).unwrap();
        for (m, r) in net.cfsms().iter().zip(&result.machines) {
            if let Some(reach) = r.max_cycles_reach_aware {
                assert!(
                    reach <= r.estimate.max_cycles,
                    "{}.{}: reach-aware {reach} above plain {}",
                    net.name(),
                    m.name(),
                    r.estimate.max_cycles
                );
                if let Some(fp) = r.max_cycles_false_path_aware {
                    assert!(
                        reach <= fp,
                        "{}.{}: reach-aware {reach} above derived {fp}",
                        net.name(),
                        m.name()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite (f): node-budget overflow aborts with a structured error
// and the partial trace intact.
// ---------------------------------------------------------------------

#[test]
fn budget_overflow_preserves_partial_trace() {
    let net = workloads::dashboard();
    let opts = SynthesisOptions {
        verify: true,
        verify_node_budget: 8,
        ..SynthesisOptions::default()
    };
    let failure = synthesize_network_staged(&net, &opts, &RtosConfig::default(), 2)
        .expect_err("an 8-node budget cannot hold the dashboard product");
    match failure.error {
        SynthError::Verify(VerifyError::NodeBudgetExceeded {
            budget, allocated, ..
        }) => {
            assert_eq!(budget, 8);
            assert!(allocated > 8);
        }
        other => panic!("expected a node-budget abort, got {other}"),
    }
    // The per-machine stages completed before the abort — their records
    // must survive, and the aborted verify stage itself is recorded.
    let records = failure.trace.records();
    for m in net.cfsms() {
        assert!(
            records
                .iter()
                .any(|r| r.machine.as_deref() == Some(m.name()) && r.stage == "compile"),
            "missing compile record for {}",
            m.name()
        );
    }
    assert!(records.iter().any(|r| r.stage == "verify"));
}

// ---------------------------------------------------------------------
// Direct cross-check on the examples: verification verdicts are
// consistent with a simulator run (one-directional by construction).
// ---------------------------------------------------------------------

#[test]
fn example_verdicts_are_consistent_with_simulated_losses() {
    for net in example_networks() {
        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        // Burst every primary input; anything the sim then drops must be
        // covered by a `possible` verdict.
        let mut stim = Vec::new();
        for sig in net.primary_inputs() {
            for t in 0..6u64 {
                stim.push(Stimulus::pure(t * 97, sig.clone()));
            }
        }
        let mut sim = Simulator::build(&net, RtosConfig::default());
        sim.run(&stim);
        for (i, &lost) in sim.stats().overwritten.iter().enumerate() {
            if lost > 0 {
                assert!(
                    report.lost_possible(net.cfsms()[i].name()),
                    "{}: sim dropped events at `{}` without a possible-loss verdict",
                    net.name(),
                    net.cfsms()[i].name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The exported invariant is sound on the examples: every claimed
// incompatibility really has no witness in a long random simulation.
// ---------------------------------------------------------------------

#[test]
fn exported_incompats_have_no_simulation_witness_on_token_ring() {
    let net = token_ring();
    let mut v = Verifier::run(&net, &VerifyOptions::default()).unwrap();
    let worker = net.machine_index("worker").unwrap();
    let incs = v.presence_incompats(worker);
    assert!(incs.contains(&Incompat {
        a: (polis::estimate::PathAtom::Present(0), true),
        b: (polis::estimate::PathAtom::Present(1), true),
    }));
}
