/root/repo/target/release/deps/bdd_ops-d1f7b24455d3930e.d: crates/bench/benches/bdd_ops.rs

/root/repo/target/release/deps/bdd_ops-d1f7b24455d3930e: crates/bench/benches/bdd_ops.rs

crates/bench/benches/bdd_ops.rs:
