//! The s-graph data structure (Definition 1).

use crate::cond::Cond;
use std::fmt;

/// Index of a node within an [`SGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The BEGIN node (always index 0).
    pub const BEGIN: NodeId = NodeId(0);
    /// The END node (always index 1).
    pub const END: NodeId = NodeId(1);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a TEST vertex examines at run time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TestLabel {
    /// Presence flag of an input event — an RTOS event-detection call in
    /// generated code. Two children.
    Present {
        /// Index into the CFSM's inputs.
        input: usize,
    },
    /// A data test (expression over state variables and event values). Two
    /// children.
    TestExpr {
        /// Index into the CFSM's tests.
        test: usize,
    },
    /// One bit of the binary-encoded control state (bit 0 = MSB). Two
    /// children.
    CtrlBit {
        /// Bit position, MSB first.
        bit: usize,
        /// Total encoding width.
        width: usize,
    },
    /// Multi-way branch on the whole control state; `children[s]` is taken
    /// in state `s` (footnote 3: TEST vertices may have more than two
    /// children).
    CtrlSwitch {
        /// Number of control states (= number of children).
        states: usize,
    },
    /// A collapsed test: a boolean function of several atoms
    /// (Section III-B3d). Two children.
    Compound {
        /// The branch predicate.
        cond: Cond,
    },
}

/// What an ASSIGN vertex does at run time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AssignLabel {
    /// Record that a transition fired: the RTOS must consume the input
    /// events of this execution (Section IV-D).
    Consume,
    /// Execute a CFSM action (an event emission or a state-variable
    /// assignment).
    Action {
        /// Index into the CFSM's actions.
        action: usize,
    },
    /// Set bits of the next control state (bit 0 = MSB). Bits not listed
    /// keep their current value (don't cares resolved by "no write").
    NextCtrlBits {
        /// `(bit, value)` pairs.
        bits: Vec<(usize, bool)>,
        /// Total encoding width.
        width: usize,
    },
    /// Computed assignment used by the TEST-free ITE-chain form
    /// (Section III-B3c): evaluate `cond` and apply it to `target`.
    Computed {
        /// What receives the computed boolean.
        target: ComputedTarget,
        /// The computed condition.
        cond: Cond,
    },
}

/// Target of a [`AssignLabel::Computed`] assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputedTarget {
    /// The consume/fired flag.
    Consume,
    /// Run the action iff the condition is true.
    Action {
        /// Index into the CFSM's actions.
        action: usize,
    },
    /// One bit of the next control state (bit 0 = MSB).
    CtrlBit {
        /// Bit position.
        bit: usize,
        /// Encoding width.
        width: usize,
    },
}

/// One s-graph vertex.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SNode {
    /// The unique source.
    Begin {
        /// Successor.
        next: NodeId,
    },
    /// The unique sink.
    End,
    /// A branch; `children[outcome]` is the successor. Binary tests use
    /// `children[0]` for false and `children[1]` for true.
    Test {
        /// What to examine.
        label: TestLabel,
        /// Successors by outcome.
        children: Vec<NodeId>,
    },
    /// An action followed by `next`.
    Assign {
        /// What to do.
        label: AssignLabel,
        /// Successor.
        next: NodeId,
    },
}

/// A software graph: the control-flow skeleton of one CFSM's reaction.
///
/// Size measures of an s-graph, collected in one reachability pass by
/// [`SGraph::stats`]. Recorded into the synthesis trace before and after
/// collapsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SGraphStats {
    /// Total arena nodes, including BEGIN/END and unreachable leftovers.
    pub nodes: usize,
    /// Nodes reachable from BEGIN.
    pub reachable: usize,
    /// Reachable TEST vertices.
    pub tests: usize,
    /// Reachable ASSIGN vertices.
    pub assigns: usize,
    /// Maximum TEST vertices on any BEGIN→END path.
    pub depth: usize,
}

/// Nodes are stored in an arena; node 0 is BEGIN, node 1 is END. The graph
/// is a DAG from BEGIN to END (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SGraph {
    name: String,
    nodes: Vec<SNode>,
}

impl SGraph {
    /// Creates an s-graph whose BEGIN points directly at END; extend with
    /// [`SGraph::add_node`] and [`SGraph::set_begin`].
    pub fn new(name: impl Into<String>) -> SGraph {
        SGraph {
            name: name.into(),
            nodes: vec![SNode::Begin { next: NodeId::END }, SNode::End],
        }
    }

    /// The CFSM this graph implements.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: SNode) -> NodeId {
        assert!(
            !matches!(node, SNode::Begin { .. } | SNode::End),
            "BEGIN/END are fixed at indices 0 and 1"
        );
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Points BEGIN at `first`.
    pub fn set_begin(&mut self, first: NodeId) {
        self.nodes[0] = SNode::Begin { next: first };
    }

    /// The node BEGIN points at.
    pub fn begin_next(&self) -> NodeId {
        match self.nodes[0] {
            SNode::Begin { next } => next,
            _ => unreachable!("node 0 is BEGIN"),
        }
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &SNode {
        &self.nodes[id.index()]
    }

    /// Total number of nodes (including BEGIN/END and any unreachable
    /// leftovers; see [`SGraph::reachable`]).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph is just BEGIN → END.
    pub fn is_empty(&self) -> bool {
        self.begin_next() == NodeId::END
    }

    /// Ids of nodes reachable from BEGIN, in depth-first preorder.
    pub fn reachable(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut stack = vec![NodeId::BEGIN];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            order.push(id);
            match &self.nodes[id.index()] {
                SNode::Begin { next } => stack.push(*next),
                SNode::End => {}
                SNode::Test { children, .. } => {
                    for &c in children.iter().rev() {
                        stack.push(c);
                    }
                }
                SNode::Assign { next, .. } => stack.push(*next),
            }
        }
        order
    }

    /// One-pass snapshot of the graph's size measures, for pipeline
    /// instrumentation (cheaper than calling each accessor separately,
    /// which would redo the reachability walk).
    pub fn stats(&self) -> SGraphStats {
        let reachable = self.reachable();
        let mut tests = 0;
        let mut assigns = 0;
        for id in &reachable {
            match self.node(*id) {
                SNode::Test { .. } => tests += 1,
                SNode::Assign { .. } => assigns += 1,
                _ => {}
            }
        }
        SGraphStats {
            nodes: self.len(),
            reachable: reachable.len(),
            tests,
            assigns,
            depth: self.depth(),
        }
    }

    /// Number of reachable TEST vertices.
    pub fn num_tests(&self) -> usize {
        self.reachable()
            .iter()
            .filter(|id| matches!(self.node(**id), SNode::Test { .. }))
            .count()
    }

    /// Number of reachable ASSIGN vertices.
    pub fn num_assigns(&self) -> usize {
        self.reachable()
            .iter()
            .filter(|id| matches!(self.node(**id), SNode::Assign { .. }))
            .count()
    }

    /// Maximum number of TEST vertices on any BEGIN→END path — the paper's
    /// depth measure (each input is tested at most once per path in the
    /// BDD-derived form, giving minimum-depth graphs).
    pub fn depth(&self) -> usize {
        let order = self.topo_order();
        let mut depth = vec![0usize; self.nodes.len()];
        for &id in order.iter().rev() {
            match &self.nodes[id.index()] {
                SNode::End => depth[id.index()] = 0,
                SNode::Begin { next } => depth[id.index()] = depth[next.index()],
                SNode::Assign { next, .. } => depth[id.index()] = depth[next.index()],
                SNode::Test { children, .. } => {
                    depth[id.index()] =
                        1 + children.iter().map(|c| depth[c.index()]).max().unwrap_or(0);
                }
            }
        }
        depth[0]
    }

    /// Reachable nodes in a topological order (parents before children).
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (which [`SGraph::validate`]
    /// would report as an error instead).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut state = vec![0u8; self.nodes.len()]; // 0 new, 1 open, 2 done
        let mut order = Vec::new();
        // Iterative DFS with explicit post-order.
        let mut stack = vec![(NodeId::BEGIN, false)];
        while let Some((id, processed)) = stack.pop() {
            if processed {
                state[id.index()] = 2;
                order.push(id);
                continue;
            }
            match state[id.index()] {
                2 => continue,
                1 => panic!("s-graph contains a cycle through node {}", id.0),
                _ => {}
            }
            state[id.index()] = 1;
            stack.push((id, true));
            match &self.nodes[id.index()] {
                SNode::Begin { next } => stack.push((*next, false)),
                SNode::End => {}
                SNode::Test { children, .. } => {
                    for &c in children {
                        if state[c.index()] == 1 {
                            panic!("s-graph contains a cycle through node {}", c.0);
                        }
                        stack.push((c, false));
                    }
                }
                SNode::Assign { next, .. } => stack.push((*next, false)),
            }
        }
        order.reverse();
        order
    }

    /// Checks structural invariants: acyclicity, child arity, and child
    /// indices in range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        // Arity and range checks.
        for (i, n) in self.nodes.iter().enumerate() {
            let check = |c: NodeId| -> Result<(), String> {
                if c.index() >= self.nodes.len() {
                    Err(format!("node {i}: child {} out of range", c.0))
                } else if c == NodeId::BEGIN {
                    Err(format!("node {i}: BEGIN has a parent"))
                } else {
                    Ok(())
                }
            };
            match n {
                SNode::Begin { next } => check(*next)?,
                SNode::End => {}
                SNode::Test { label, children } => {
                    let want = match label {
                        TestLabel::CtrlSwitch { states } => *states,
                        _ => 2,
                    };
                    if children.len() != want {
                        return Err(format!(
                            "node {i}: TEST has {} children, expected {want}",
                            children.len()
                        ));
                    }
                    for &c in children {
                        check(c)?;
                    }
                }
                SNode::Assign { next, .. } => check(*next)?,
            }
        }
        // Acyclicity via DFS colors.
        let mut state = vec![0u8; self.nodes.len()];
        fn dfs(g: &SGraph, id: NodeId, state: &mut [u8]) -> Result<(), String> {
            match state[id.index()] {
                2 => return Ok(()),
                1 => return Err(format!("cycle through node {}", id.0)),
                _ => {}
            }
            state[id.index()] = 1;
            match g.node(id) {
                SNode::Begin { next } | SNode::Assign { next, .. } => dfs(g, *next, state)?,
                SNode::End => {}
                SNode::Test { children, .. } => {
                    for &c in children {
                        dfs(g, c, state)?;
                    }
                }
            }
            state[id.index()] = 2;
            Ok(())
        }
        dfs(self, NodeId::BEGIN, &mut state)?;
        Ok(())
    }

    /// Rebuilds the graph keeping only reachable nodes and sharing
    /// structurally identical subgraphs, exactly as the paper's `reduce`
    /// (graphs produced by [`crate::build`] are already reduced because the
    /// source BDD is; this pass exists for graphs assembled by other
    /// means).
    pub fn reduce(&self) -> SGraph {
        use std::collections::HashMap;
        let mut out = SGraph::new(self.name.clone());
        let mut canon: HashMap<SNode, NodeId> = HashMap::new();
        let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
        let order = self.topo_order();
        for &id in order.iter().rev() {
            let mapped = match self.node(id) {
                SNode::End => NodeId::END,
                SNode::Begin { .. } => continue,
                SNode::Test { label, children } => {
                    let node = SNode::Test {
                        label: label.clone(),
                        children: children.iter().map(|c| memo[c]).collect(),
                    };
                    // A TEST with all-equal children is redundant.
                    if let SNode::Test { children, .. } = &node {
                        if children.windows(2).all(|w| w[0] == w[1]) {
                            memo.insert(id, children[0]);
                            continue;
                        }
                    }
                    *canon
                        .entry(node.clone())
                        .or_insert_with(|| out.add_node(node))
                }
                SNode::Assign { label, next } => {
                    let node = SNode::Assign {
                        label: label.clone(),
                        next: memo[next],
                    };
                    *canon
                        .entry(node.clone())
                        .or_insert_with(|| out.add_node(node))
                }
            };
            memo.insert(id, mapped);
        }
        out.set_begin(memo[&self.begin_next()]);
        out
    }

    /// Graphviz DOT rendering for debugging and documentation.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("digraph \"{}\" {{\n  rankdir=TB;\n", self.name);
        for id in self.reachable() {
            match self.node(id) {
                SNode::Begin { next } => {
                    let _ = writeln!(s, "  n{} [label=\"BEGIN\",shape=circle];", id.0);
                    let _ = writeln!(s, "  n{} -> n{};", id.0, next.0);
                }
                SNode::End => {
                    let _ = writeln!(s, "  n{} [label=\"END\",shape=doublecircle];", id.0);
                }
                SNode::Test { label, children } => {
                    let _ = writeln!(s, "  n{} [label=\"{label}\",shape=diamond];", id.0);
                    for (v, c) in children.iter().enumerate() {
                        let _ = writeln!(s, "  n{} -> n{} [label=\"{v}\"];", id.0, c.0);
                    }
                }
                SNode::Assign { label, next } => {
                    let _ = writeln!(s, "  n{} [label=\"{label}\",shape=box];", id.0);
                    let _ = writeln!(s, "  n{} -> n{};", id.0, next.0);
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for TestLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestLabel::Present { input } => write!(f, "present(in{input})?"),
            TestLabel::TestExpr { test } => write!(f, "test{test}?"),
            TestLabel::CtrlBit { bit, .. } => write!(f, "ctrl.{bit}?"),
            TestLabel::CtrlSwitch { .. } => write!(f, "switch(ctrl)"),
            TestLabel::Compound { cond } => write!(f, "[{cond}]?"),
        }
    }
}

impl fmt::Display for AssignLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignLabel::Consume => write!(f, "consume"),
            AssignLabel::Action { action } => write!(f, "act{action}"),
            AssignLabel::NextCtrlBits { bits, .. } => {
                write!(f, "ctrl := ")?;
                for (b, v) in bits {
                    write!(f, "[{b}]={}", u8::from(*v))?;
                }
                Ok(())
            }
            AssignLabel::Computed { target, cond } => match target {
                ComputedTarget::Consume => write!(f, "consume := {cond}"),
                ComputedTarget::Action { action } => write!(f, "act{action} := {cond}"),
                ComputedTarget::CtrlBit { bit, .. } => write!(f, "ctrl.{bit} := {cond}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SGraph {
        // BEGIN -> test -> {assign -> END, END}
        let mut g = SGraph::new("diamond");
        let a = g.add_node(SNode::Assign {
            label: AssignLabel::Consume,
            next: NodeId::END,
        });
        let t = g.add_node(SNode::Test {
            label: TestLabel::Present { input: 0 },
            children: vec![NodeId::END, a],
        });
        g.set_begin(t);
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = diamond();
        assert_eq!(g.num_tests(), 1);
        assert_eq!(g.num_assigns(), 1);
        assert_eq!(g.depth(), 1);
        assert!(!g.is_empty());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_graph() {
        let g = SGraph::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.depth(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn topo_order_is_consistent() {
        let g = diamond();
        let order = g.topo_order();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for &id in &order {
            match g.node(id) {
                SNode::Begin { next } | SNode::Assign { next, .. } => {
                    assert!(pos(id) < pos(*next));
                }
                SNode::Test { children, .. } => {
                    for &c in children {
                        assert!(pos(id) < pos(c));
                    }
                }
                SNode::End => {}
            }
        }
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut g = SGraph::new("bad");
        let t = g.add_node(SNode::Test {
            label: TestLabel::CtrlSwitch { states: 3 },
            children: vec![NodeId::END, NodeId::END], // should be 3
        });
        g.set_begin(t);
        assert!(g.validate().is_err());
    }

    #[test]
    fn reduce_shares_isomorphic_subgraphs() {
        // Two identical assign->END tails under a test.
        let mut g = SGraph::new("dup");
        let a1 = g.add_node(SNode::Assign {
            label: AssignLabel::Action { action: 0 },
            next: NodeId::END,
        });
        let a2 = g.add_node(SNode::Assign {
            label: AssignLabel::Action { action: 0 },
            next: NodeId::END,
        });
        let t = g.add_node(SNode::Test {
            label: TestLabel::Present { input: 0 },
            children: vec![a1, a2],
        });
        g.set_begin(t);
        let r = g.reduce();
        // After sharing, the TEST has equal children and vanishes too.
        assert_eq!(r.num_tests(), 0);
        assert_eq!(r.num_assigns(), 1);
    }

    #[test]
    fn reduce_preserves_distinct_structure() {
        let g = diamond();
        let r = g.reduce();
        assert_eq!(r.num_tests(), 1);
        assert_eq!(r.num_assigns(), 1);
    }

    #[test]
    fn dot_output_mentions_all_nodes() {
        let g = diamond();
        let dot = g.to_dot();
        assert!(dot.contains("BEGIN"));
        assert!(dot.contains("END"));
        assert!(dot.contains("diamond"));
        assert!(dot.contains("present"));
    }
}
