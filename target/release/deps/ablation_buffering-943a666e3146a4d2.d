/root/repo/target/release/deps/ablation_buffering-943a666e3146a4d2.d: crates/bench/src/bin/ablation_buffering.rs

/root/repo/target/release/deps/ablation_buffering-943a666e3146a4d2: crates/bench/src/bin/ablation_buffering.rs

crates/bench/src/bin/ablation_buffering.rs:
