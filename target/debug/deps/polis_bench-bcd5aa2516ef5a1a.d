/root/repo/target/debug/deps/polis_bench-bcd5aa2516ef5a1a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_bench-bcd5aa2516ef5a1a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
