/root/repo/target/debug/deps/bdd_ops-fb6abbabf857b716.d: crates/bench/benches/bdd_ops.rs Cargo.toml

/root/repo/target/debug/deps/libbdd_ops-fb6abbabf857b716.rmeta: crates/bench/benches/bdd_ops.rs Cargo.toml

crates/bench/benches/bdd_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
