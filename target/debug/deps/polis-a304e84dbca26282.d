/root/repo/target/debug/deps/polis-a304e84dbca26282.d: src/bin/polis.rs

/root/repo/target/debug/deps/polis-a304e84dbca26282: src/bin/polis.rs

src/bin/polis.rs:
