//! A virtual micro-controller target: instruction set, compiler from
//! s-graphs, assembler with per-target cost models, cycle-accurate
//! executor, and static path analysis of object code.
//!
//! **Substitution note** (see DESIGN.md): the paper measures its generated
//! code on a Motorola 68HC11 through the INTROL C compiler, and on a MIPS
//! R3000 through `pixie`. Neither is available here, so this crate provides
//! an *independent measurement artifact* with the properties that make the
//! paper's estimation-vs-measurement comparison meaningful: real
//! instruction encodings with context-dependent sizes (short/long branches,
//! small/large immediates, direct/extended addressing), per-instruction
//! cycle counts, and a separate executable semantics the synthesized code
//! can be validated against.
//!
//! Two cost profiles mirror the paper's two targets:
//!
//! * [`Profile::Mcu8`] — an 8-bit accumulator-style controller in the
//!   68HC11 mould: variable-length instructions, expensive multiply/divide,
//!   two-byte short branches with a ±127 range;
//! * [`Profile::Risc32`] — a 32-bit RISC in the R3000 mould: fixed 4-byte
//!   instructions, cheap ALU ops, branch-taken penalty.
//!
//! # Examples
//!
//! ```
//! use polis_cfsm::{Cfsm, ReactiveFn};
//! use polis_expr::{Expr, Type, Value};
//! use polis_sgraph::build;
//! use polis_vm::{assemble, compile, BufferPolicy, Profile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Cfsm::builder("counter");
//! b.input_pure("tick");
//! b.output_pure("fire");
//! b.state_var("n", Type::uint(8), Value::Int(0));
//! let s = b.ctrl_state("s");
//! let full = b.test("full", Expr::var("n").ge(Expr::int(3)));
//! b.transition(s, s).when_present("tick").when_test(full)
//!     .assign("n", Expr::int(0)).emit("fire").done();
//! b.transition(s, s).when_present("tick")
//!     .assign("n", Expr::var("n").add(Expr::int(1))).done();
//! let m = b.build()?;
//! let rf = ReactiveFn::build(&m);
//! let sg = build(&rf)?;
//! let prog = compile(&m, &sg, BufferPolicy::All);
//! let obj = assemble(&prog, Profile::Mcu8);
//! assert!(obj.size_bytes() > 0);
//! # Ok(())
//! # }
//! ```

mod analyze;
mod compile;
mod exec;
mod inst;
mod profile;

pub use analyze::{analyze, PathBounds};
pub use compile::{compile, BufferPolicy};
pub use exec::{run_reaction, CollectingHost, ReactionHost, RunError, RunStats, VmMemory};
pub use inst::{Inst, SlotInfo, SlotKind, VmProgram};
pub use profile::{assemble, InstCost, ObjectCode, Profile};
