//! End-to-end integration test on the paper's Fig. 1 `simple` module:
//! language front-end → characteristic function → s-graph → C and object
//! code → behavioural equivalence at every layer.

use polis::cfsm::{OrderScheme, ReactiveFn};
use polis::core::{synthesize, workloads, ImplStyle, SynthesisOptions};
use polis::expr::{MapEnv, Value};
use polis::sgraph::{build, execute};
use polis::vm::{run_reaction, CollectingHost, VmMemory};
use std::collections::BTreeSet;

#[test]
fn all_layers_agree_on_fig1() {
    let m = workloads::simple();
    let mut rf = ReactiveFn::build(&m);
    rf.sift(OrderScheme::OutputsAfterSupport);
    let g = build(&rf).unwrap();
    let synth = synthesize(&m, &SynthesisOptions::default());

    let mut st_ref = m.initial_state();
    let mut st_sg = m.initial_state();
    let mut mem = VmMemory::new(&synth.program);

    // Count-to-match behaviour with resets mixed in.
    let stimulus: Vec<(bool, i64)> = vec![
        (true, 3),
        (true, 3),
        (false, 0),
        (true, 3),
        (true, 3), // a reaches 3 -> emit y, reset
        (true, 0), // a == 0 immediately -> emit y
        (true, 5),
    ];
    let mut y_count_ref = 0;
    let mut y_count_vm = 0;
    for (has_c, cval) in stimulus {
        let present: BTreeSet<String> = if has_c {
            ["c".to_string()].into()
        } else {
            BTreeSet::new()
        };
        let mut vals = MapEnv::new();
        vals.set("c_value", Value::Int(cval));

        let want = m.react(&present, &vals, &st_ref).unwrap();
        let got = execute(&m, &g, &present, &vals, &st_sg).unwrap();
        assert_eq!(got.fired, want.fired);
        assert_eq!(got.next, want.next);
        y_count_ref += want.emissions.len();

        if let Some(slot) = synth.program.input_value_slot(0) {
            mem.set(slot, cval);
        }
        let mut host = CollectingHost::new(vec![has_c]);
        let stats = run_reaction(&synth.program, &synth.object, &mut mem, &mut host).unwrap();
        assert_eq!(host.consumed, want.fired);
        y_count_vm += host.emissions.len();
        assert!(
            (synth.measured.min_cycles..=synth.measured.max_cycles).contains(&stats.cycles),
            "dynamic cycles outside the measured static bounds"
        );

        st_ref = want.next;
        st_sg = got.next;
    }
    assert_eq!(y_count_ref, 2);
    assert_eq!(y_count_vm, 2);
}

#[test]
fn fig1_c_code_matches_paper_structure() {
    let m = workloads::simple();
    let synth = synthesize(&m, &SynthesisOptions::default());
    let c = &synth.c_code;
    // The Fig. 1 shape: detect c, test a == ?c, the three actions.
    assert!(c.contains("POLIS_DETECT(c)"));
    assert!(c.contains("POLIS_VALUE(c)"));
    assert!(c.contains("POLIS_EMIT(y);"));
    assert!(c.contains("= 0;"), "a := 0 present");
    assert!(c.contains("+ 1"), "a := a + 1 present");
}

#[test]
fn fig1_ite_chain_has_four_assigns() {
    // Section III-B3c: "the s-graph in Fig. 1 would be reduced to four
    // ASSIGN vertices" (consume + a:=0/emit y/a:=a+1 under ITE labels).
    let m = workloads::simple();
    let r = synthesize(
        &m,
        &SynthesisOptions {
            style: ImplStyle::IteChain,
            ..SynthesisOptions::default()
        },
    );
    assert_eq!(r.graph.num_tests(), 0);
    assert_eq!(r.graph.num_assigns(), 4);
    // Constant-time at s-graph granularity: every vertex executes on every
    // reaction, so the only cycle spread left in the object code comes from
    // the guarded action bodies, not from control decisions.
    let dg = synthesize(&m, &SynthesisOptions::default());
    let spread = |min: u64, max: u64| max - min;
    assert!(
        spread(r.measured.min_cycles, r.measured.max_cycles)
            < spread(dg.measured.min_cycles, dg.measured.max_cycles),
        "ITE chain must spread less than the decision graph"
    );
}

#[test]
fn estimation_tracks_measurement_on_fig1() {
    let m = workloads::simple();
    let r = synthesize(&m, &SynthesisOptions::default());
    let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
    assert!(
        rel(r.estimate.size_bytes, r.measured.size_bytes) < 0.35,
        "size: estimated {} vs measured {}",
        r.estimate.size_bytes,
        r.measured.size_bytes
    );
    assert!(
        rel(r.estimate.max_cycles, r.measured.max_cycles) < 0.35,
        "max cycles: estimated {} vs measured {}",
        r.estimate.max_cycles,
        r.measured.max_cycles
    );
}
