/root/repo/target/debug/deps/polis-33dbf2ef60acc08a.d: src/lib.rs

/root/repo/target/debug/deps/libpolis-33dbf2ef60acc08a.rmeta: src/lib.rs

src/lib.rs:
