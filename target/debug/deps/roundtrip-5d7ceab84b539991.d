/root/repo/target/debug/deps/roundtrip-5d7ceab84b539991.d: crates/core/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-5d7ceab84b539991: crates/core/tests/roundtrip.rs

crates/core/tests/roundtrip.rs:
