/root/repo/target/debug/deps/polis_codegen-50a8ef3cf5698657.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/debug/deps/libpolis_codegen-50a8ef3cf5698657.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/two_level.rs:
