/root/repo/target/debug/deps/ablation_collapse-415d1fd0dc317e59.d: crates/bench/src/bin/ablation_collapse.rs

/root/repo/target/debug/deps/libablation_collapse-415d1fd0dc317e59.rmeta: crates/bench/src/bin/ablation_collapse.rs

crates/bench/src/bin/ablation_collapse.rs:
