/root/repo/target/debug/deps/falsepath-a5216a4a5ce619f3.d: crates/bench/src/bin/falsepath.rs Cargo.toml

/root/repo/target/debug/deps/libfalsepath-a5216a4a5ce619f3.rmeta: crates/bench/src/bin/falsepath.rs Cargo.toml

crates/bench/src/bin/falsepath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
