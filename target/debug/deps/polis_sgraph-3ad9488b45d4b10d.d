/root/repo/target/debug/deps/polis_sgraph-3ad9488b45d4b10d.d: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

/root/repo/target/debug/deps/libpolis_sgraph-3ad9488b45d4b10d.rmeta: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

crates/sgraph/src/lib.rs:
crates/sgraph/src/analysis.rs:
crates/sgraph/src/builder.rs:
crates/sgraph/src/chain.rs:
crates/sgraph/src/collapse.rs:
crates/sgraph/src/cond.rs:
crates/sgraph/src/eval.rs:
crates/sgraph/src/graph.rs:
