//! The two-level multi-way jump baseline of Table II.
//!
//! "As a reference, we also compare the result with an implementation which
//! uses a two-level multiway jump structure. The first jump is done based
//! on the current state, the second jump is done based on the concatenation
//! of all the decision variable[s] into a single integer. The jumps are
//! followed by an appropriate sequence of ASSIGNs. This simple
//! implementation (similar to what is often done during structured
//! hand-coding of reactive systems) performs better than the naive
//! ordering, but worse than the optimized decision graph."
//!
//! We materialize the second level as the complete (unshared) decision
//! structure over the state's decision variables — one leaf per variable
//! combination, each holding the ASSIGN sequence of the transition that
//! combination selects. Code size therefore scales with `2^k` per state,
//! which is the behaviour the baseline exists to demonstrate.

use polis_cfsm::Cfsm;
use polis_sgraph::{AssignLabel, NodeId, SGraph, SNode, TestLabel};

/// Decision atoms of one state: presence flags and data tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    Present(usize),
    Test(usize),
}

/// Builds the two-level-jump s-graph for `cfsm`.
pub fn two_level_sgraph(cfsm: &Cfsm) -> SGraph {
    let mut g = SGraph::new(format!("{}_2lvl", cfsm.name()));
    let nstates = cfsm.states().len();
    let width = ctrl_width(nstates);

    let mut state_entries = Vec::with_capacity(nstates);
    for s in 0..nstates {
        state_entries.push(build_state(cfsm, &mut g, s, width));
    }
    if nstates > 1 {
        let root = g.add_node(SNode::Test {
            label: TestLabel::CtrlSwitch { states: nstates },
            children: state_entries,
        });
        g.set_begin(root);
    } else {
        g.set_begin(state_entries[0]);
    }
    debug_assert_eq!(g.validate(), Ok(()));
    g
}

fn ctrl_width(domain: usize) -> usize {
    if domain <= 2 {
        1
    } else {
        (64 - (domain as u64 - 1).leading_zeros()) as usize
    }
}

/// Builds the complete decision structure for one state.
fn build_state(cfsm: &Cfsm, g: &mut SGraph, state: usize, width: usize) -> NodeId {
    // Decision variables: atoms referenced by this state's guards.
    let mut presents: Vec<usize> = Vec::new();
    let mut tests: Vec<usize> = Vec::new();
    for t in cfsm.transitions().iter().filter(|t| t.from == state) {
        t.guard.visit_atoms(
            &mut |i| {
                if !presents.contains(&i) {
                    presents.push(i);
                }
            },
            &mut |i| {
                if !tests.contains(&i) {
                    tests.push(i);
                }
            },
        );
    }
    let atoms: Vec<Atom> = presents
        .into_iter()
        .map(Atom::Present)
        .chain(tests.into_iter().map(Atom::Test))
        .collect();
    expand(cfsm, g, state, width, &atoms, &mut Vec::new())
}

/// Recursively expands the decision tree over `atoms[depth..]`; at a leaf,
/// the assignment sequence of the selected transition.
fn expand(
    cfsm: &Cfsm,
    g: &mut SGraph,
    state: usize,
    width: usize,
    atoms: &[Atom],
    taken: &mut Vec<bool>,
) -> NodeId {
    if taken.len() == atoms.len() {
        return leaf(cfsm, g, state, width, atoms, taken);
    }
    let atom = atoms[taken.len()];
    taken.push(false);
    let lo = expand(cfsm, g, state, width, atoms, taken);
    taken.pop();
    taken.push(true);
    let hi = expand(cfsm, g, state, width, atoms, taken);
    taken.pop();
    // Hand-coded style: no sharing, but a test with equal children is
    // something no programmer writes either.
    if lo == hi {
        return lo;
    }
    let label = match atom {
        Atom::Present(input) => TestLabel::Present { input },
        Atom::Test(test) => TestLabel::TestExpr { test },
    };
    g.add_node(SNode::Test {
        label,
        children: vec![lo, hi],
    })
}

fn leaf(
    cfsm: &Cfsm,
    g: &mut SGraph,
    state: usize,
    width: usize,
    atoms: &[Atom],
    taken: &[bool],
) -> NodeId {
    // Reconstruct full presence/test vectors for guard evaluation.
    let mut present = vec![false; cfsm.inputs().len()];
    let mut tests = vec![false; cfsm.tests().len()];
    for (atom, &v) in atoms.iter().zip(taken) {
        match atom {
            Atom::Present(i) => present[*i] = v,
            Atom::Test(i) => tests[*i] = v,
        }
    }
    let fired = cfsm
        .transitions()
        .iter()
        .find(|t| t.from == state && t.guard.eval(&present, &tests));
    let Some(tr) = fired else {
        return NodeId::END; // no transition: empty reaction
    };

    // ASSIGN chain: consume, actions, next state — built back to front.
    let mut next = NodeId::END;
    if cfsm.states().len() > 1 {
        let bits: Vec<(usize, bool)> = (0..width)
            .map(|b| (b, (tr.to >> (width - 1 - b)) & 1 == 1))
            .collect();
        next = g.add_node(SNode::Assign {
            label: AssignLabel::NextCtrlBits { bits, width },
            next,
        });
    }
    for &a in tr.actions.iter().rev() {
        next = g.add_node(SNode::Assign {
            label: AssignLabel::Action { action: a },
            next,
        });
    }
    g.add_node(SNode::Assign {
        label: AssignLabel::Consume,
        next,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_cfsm::ReactiveFn;
    use polis_expr::{Expr, MapEnv, Type, Value};
    use polis_sgraph::{build, execute, input_values};
    use std::collections::BTreeSet;

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    fn toggler() -> Cfsm {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("on");
        b.output_pure("off");
        let s_off = b.ctrl_state("off");
        let s_on = b.ctrl_state("on");
        b.transition(s_off, s_on)
            .when_present("tick")
            .emit("on")
            .done();
        b.transition(s_on, s_off)
            .when_present("tick")
            .emit("off")
            .done();
        b.build().unwrap()
    }

    #[test]
    fn two_level_matches_reference_semantics() {
        for m in [simple(), toggler()] {
            let g = two_level_sgraph(&m);
            let mut st = m.initial_state();
            // Exhaust the input alphabet for a few steps.
            for step in 0..6 {
                for sigs in [
                    vec![],
                    m.inputs()
                        .iter()
                        .map(|s| s.name().to_owned())
                        .collect::<Vec<_>>(),
                ] {
                    let p: BTreeSet<String> = sigs.iter().cloned().collect();
                    let vals = if m.name() == "simple" {
                        input_values(&[("c", (step % 4) as i64)])
                    } else {
                        MapEnv::new()
                    };
                    let want = m.react(&p, &vals, &st).unwrap();
                    let got = execute(&m, &g, &p, &vals, &st).unwrap();
                    assert_eq!(got.fired, want.fired, "{} step {step}", m.name());
                    assert_eq!(got.next, want.next);
                    assert_eq!(got.emissions.len(), want.emissions.len());
                    st = want.next;
                }
            }
        }
    }

    #[test]
    fn two_level_root_is_state_switch_for_multi_state() {
        let g = two_level_sgraph(&toggler());
        let root = g.begin_next();
        assert!(matches!(
            g.node(root),
            SNode::Test {
                label: TestLabel::CtrlSwitch { states: 2 },
                ..
            }
        ));
    }

    #[test]
    fn two_level_is_larger_than_optimized_graph() {
        // The baseline expands a complete tree; the BDD-derived graph
        // shares subgraphs. On `simple` both are tiny; build a machine
        // with more decision variables to see separation.
        let mut b = Cfsm::builder("wide");
        for i in 0..4 {
            b.input_pure(format!("i{i}"));
        }
        b.output_pure("o");
        let s = b.ctrl_state("s");
        // Fire when any input is present (hand-coders write a cascade).
        for i in 0..4 {
            b.transition(s, s)
                .when_present(&format!("i{i}"))
                .emit("o")
                .done();
        }
        let m = b.build().unwrap();
        let two = two_level_sgraph(&m);
        let rf = ReactiveFn::build(&m);
        let opt = build(&rf).unwrap();
        assert!(
            two.reachable().len() > opt.reachable().len(),
            "two-level {} <= optimized {}",
            two.reachable().len(),
            opt.reachable().len()
        );
    }
}
