//! The `evaluate` procedure (Definition 2) and a full-reaction wrapper.
//!
//! `evaluate` walks the s-graph from BEGIN to END, querying input atoms
//! lazily ("tests are evaluated as they are needed", Section III-B1) and
//! recording the actions encountered. [`execute`] wraps it into a complete
//! CFSM reaction so synthesized graphs can be checked against the reference
//! semantics of [`Cfsm::react`] — the executable form of Theorem 1.

use crate::graph::{AssignLabel, ComputedTarget, SGraph, SNode, TestLabel};
use polis_cfsm::{value_var_name, Action, Cfsm, CfsmState, Emission, Reaction};
use polis_expr::{Env, EvalExprError, MapEnv, Value};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Input-atom oracle for [`SGraph::evaluate`].
///
/// Implementations may evaluate lazily and memoize; the s-graph guarantees
/// each atom is queried at most once per path in BDD-derived graphs.
pub trait SgEnv {
    /// Presence of the input event with the given CFSM input index.
    fn present(&mut self, input: usize) -> bool;
    /// Value of the data test with the given CFSM test index.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Test`] when the underlying expression cannot be
    /// evaluated.
    fn test(&mut self, test: usize) -> Result<bool, EvalError>;
}

/// The result of walking an s-graph once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// `true` if a Consume assignment was executed (a transition fired).
    pub fired: bool,
    /// Indices of CFSM actions encountered, in path order.
    pub actions: Vec<usize>,
    /// The next control state (bits not written keep their old value).
    pub next_ctrl: u64,
    /// Number of vertices visited (a dynamic cost measure).
    pub visited: usize,
}

/// Failure while evaluating an s-graph.
#[derive(Debug)]
pub enum EvalError {
    /// A data test's expression failed to evaluate.
    Test {
        /// The test index.
        test: usize,
        /// The underlying error.
        source: EvalExprError,
    },
    /// The control state is outside a CtrlSwitch's arm count.
    CtrlOutOfRange {
        /// The offending control value.
        ctrl: u64,
        /// Number of switch arms.
        states: usize,
    },
    /// An action or emission expression failed to evaluate.
    Action {
        /// The action index.
        action: usize,
        /// The underlying error.
        source: EvalExprError,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Test { test, source } => write!(f, "evaluating test {test}: {source}"),
            EvalError::CtrlOutOfRange { ctrl, states } => {
                write!(f, "control state {ctrl} outside {states} switch arms")
            }
            EvalError::Action { action, source } => {
                write!(f, "executing action {action}: {source}")
            }
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Test { source, .. } | EvalError::Action { source, .. } => Some(source),
            EvalError::CtrlOutOfRange { .. } => None,
        }
    }
}

impl SGraph {
    /// Walks the graph once from BEGIN to END (Definition 2's `evaluate`).
    ///
    /// `ctrl` is the current control state; bits the path does not assign
    /// carry over to `next_ctrl` (don't cares resolved as "keep").
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the atom oracle or a malformed
    /// CtrlSwitch.
    pub fn evaluate(&self, env: &mut dyn SgEnv, ctrl: u64) -> Result<EvalOutcome, EvalError> {
        let mut out = EvalOutcome {
            fired: false,
            actions: Vec::new(),
            next_ctrl: ctrl,
            visited: 0,
        };
        let mut cur = crate::NodeId::BEGIN;
        loop {
            out.visited += 1;
            match self.node(cur) {
                SNode::Begin { next } => cur = *next,
                SNode::End => return Ok(out),
                SNode::Test { label, children } => {
                    let idx = match label {
                        TestLabel::Present { input } => usize::from(env.present(*input)),
                        TestLabel::TestExpr { test } => usize::from(env.test(*test)?),
                        TestLabel::CtrlBit { bit, width } => {
                            ((ctrl >> (width - 1 - bit)) & 1) as usize
                        }
                        TestLabel::CtrlSwitch { states } => {
                            if (ctrl as usize) >= *states {
                                return Err(EvalError::CtrlOutOfRange {
                                    ctrl,
                                    states: *states,
                                });
                            }
                            ctrl as usize
                        }
                        TestLabel::Compound { cond } => usize::from(eval_cond(cond, env, ctrl)?),
                    };
                    cur = children[idx];
                }
                SNode::Assign { label, next } => {
                    match label {
                        AssignLabel::Consume => out.fired = true,
                        AssignLabel::Action { action } => out.actions.push(*action),
                        AssignLabel::NextCtrlBits { bits, width } => {
                            for (bit, v) in bits {
                                let mask = 1u64 << (width - 1 - bit);
                                if *v {
                                    out.next_ctrl |= mask;
                                } else {
                                    out.next_ctrl &= !mask;
                                }
                            }
                        }
                        AssignLabel::Computed { target, cond } => {
                            let v = eval_cond(cond, env, ctrl)?;
                            match target {
                                ComputedTarget::Consume => out.fired = v,
                                ComputedTarget::Action { action } => {
                                    if v {
                                        out.actions.push(*action);
                                    }
                                }
                                ComputedTarget::CtrlBit { bit, width } => {
                                    let mask = 1u64 << (width - 1 - bit);
                                    if v {
                                        out.next_ctrl |= mask;
                                    } else {
                                        out.next_ctrl &= !mask;
                                    }
                                }
                            }
                        }
                    }
                    cur = *next;
                }
            }
        }
    }
}

fn eval_cond(cond: &crate::Cond, env: &mut dyn SgEnv, ctrl: u64) -> Result<bool, EvalError> {
    let mut err = None;
    let result = eval_cond_rec(cond, env, ctrl, &mut err);
    match err {
        Some(e) => Err(e),
        None => Ok(result),
    }
}

fn eval_cond_rec(
    cond: &crate::Cond,
    env: &mut dyn SgEnv,
    ctrl: u64,
    err: &mut Option<EvalError>,
) -> bool {
    use crate::Cond;
    match cond {
        Cond::Const(b) => *b,
        Cond::Present(i) => env.present(*i),
        Cond::Test(i) => match env.test(*i) {
            Ok(v) => v,
            Err(e) => {
                err.get_or_insert(e);
                false
            }
        },
        Cond::CtrlBit { bit, width } => (ctrl >> (width - 1 - bit)) & 1 == 1,
        Cond::Not(a) => !eval_cond_rec(a, env, ctrl, err),
        Cond::And(a, b) => eval_cond_rec(a, env, ctrl, err) && eval_cond_rec(b, env, ctrl, err),
        Cond::Or(a, b) => eval_cond_rec(a, env, ctrl, err) || eval_cond_rec(b, env, ctrl, err),
    }
}

/// Lazy, memoizing atom oracle over a CFSM's concrete inputs and state.
struct RuntimeEnv<'a> {
    cfsm: &'a Cfsm,
    present: Vec<bool>,
    tests: Vec<Option<bool>>,
    env: CombinedEnv<'a>,
}

struct CombinedEnv<'a> {
    data: &'a MapEnv,
    values: &'a MapEnv,
}

impl Env for CombinedEnv<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        self.values.get(name).or_else(|| self.data.get(name))
    }
}

impl SgEnv for RuntimeEnv<'_> {
    fn present(&mut self, input: usize) -> bool {
        self.present[input]
    }

    fn test(&mut self, test: usize) -> Result<bool, EvalError> {
        if let Some(v) = self.tests[test] {
            return Ok(v);
        }
        let def = &self.cfsm.tests()[test];
        let v = def
            .expr
            .eval(&self.env)
            .and_then(|v| v.as_bool().map_err(EvalExprError::from))
            .map_err(|source| EvalError::Test { test, source })?;
        self.tests[test] = Some(v);
        Ok(v)
    }
}

/// Runs one full CFSM reaction through a synthesized s-graph: evaluates the
/// graph, then executes the selected actions against the pre-reaction
/// environment — the synthesized counterpart of [`Cfsm::react`].
///
/// Emission *order* follows the s-graph path (the paper: "the ordering of
/// emission of output events is decided statically by our synthesis
/// algorithm"), so compare emission *sets* against the reference.
///
/// # Errors
///
/// Propagates [`EvalError`] from test or action expressions.
pub fn execute(
    cfsm: &Cfsm,
    graph: &SGraph,
    present: &BTreeSet<String>,
    input_values: &MapEnv,
    state: &CfsmState,
) -> Result<Reaction, EvalError> {
    let mut env = RuntimeEnv {
        cfsm,
        present: cfsm
            .inputs()
            .iter()
            .map(|s| present.contains(s.name()))
            .collect(),
        tests: vec![None; cfsm.tests().len()],
        env: CombinedEnv {
            data: &state.data,
            values: input_values,
        },
    };
    let outcome = graph.evaluate(&mut env, state.ctrl as u64)?;

    let eval_env = CombinedEnv {
        data: &state.data,
        values: input_values,
    };
    let mut emissions = Vec::new();
    let mut next_data = state.data.clone();
    for &ai in &outcome.actions {
        match &cfsm.actions()[ai] {
            Action::Emit { signal, value } => {
                let sig = &cfsm.outputs()[*signal];
                let value = match value {
                    None => None,
                    Some(e) => Some(
                        e.eval(&eval_env)
                            .map_err(|source| EvalError::Action { action: ai, source })?
                            .coerce(sig.value_type().expect("valued signal")),
                    ),
                };
                emissions.push(Emission {
                    signal: sig.name().to_owned(),
                    value,
                });
            }
            Action::Assign { var, value } => {
                let sv = &cfsm.state_vars()[*var];
                let v = value
                    .eval(&eval_env)
                    .map_err(|source| EvalError::Action { action: ai, source })?;
                next_data.set(sv.name.clone(), v.coerce(sv.ty));
            }
        }
    }
    Ok(Reaction {
        fired: outcome.fired,
        transition: None,
        emissions,
        next: CfsmState {
            ctrl: outcome.next_ctrl as usize,
            data: next_data,
        },
    })
}

/// Convenience: bundles present-set and value map construction for tests
/// and examples.
pub fn input_values(pairs: &[(&str, i64)]) -> MapEnv {
    pairs
        .iter()
        .map(|(s, v)| (value_var_name(s), Value::Int(*v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use polis_cfsm::{OrderScheme, ReactiveFn};
    use polis_expr::{Expr, Type};

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    fn present(sigs: &[&str]) -> BTreeSet<String> {
        sigs.iter().map(|s| (*s).to_string()).collect()
    }

    /// Reactions agree up to emission order and the (synthesis-opaque)
    /// transition index.
    fn assert_equivalent(a: &Reaction, b: &Reaction) {
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.next, b.next);
        let mut ea = a.emissions.clone();
        let mut eb = b.emissions.clone();
        ea.sort_by(|x, y| x.signal.cmp(&y.signal));
        eb.sort_by(|x, y| x.signal.cmp(&y.signal));
        assert_eq!(ea, eb);
    }

    #[test]
    fn theorem_1_on_simple_exhaustively() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        // Drive both semantics through a stimulus covering all paths and
        // several data values.
        let mut st_ref = m.initial_state();
        let mut st_sg = m.initial_state();
        let stimulus: Vec<(Vec<&str>, i64)> = vec![
            (vec!["c"], 2),
            (vec!["c"], 2),
            (vec![], 5),
            (vec!["c"], 2),
            (vec!["c"], 0),
            (vec!["c"], 1),
        ];
        for (sigs, val) in stimulus {
            let p = present(&sigs);
            let vals = input_values(&[("c", val)]);
            let want = m.react(&p, &vals, &st_ref).unwrap();
            let got = execute(&m, &g, &p, &vals, &st_sg).unwrap();
            assert_equivalent(&got, &want);
            st_ref = want.next;
            st_sg = got.next;
        }
    }

    #[test]
    fn theorem_1_holds_under_all_orderings() {
        let m = simple();
        for scheme in [
            OrderScheme::Natural,
            OrderScheme::OutputsAfterAllInputs,
            OrderScheme::OutputsAfterSupport,
        ] {
            let mut rf = ReactiveFn::build(&m);
            rf.sift(scheme);
            let g = build(&rf).unwrap();
            let mut st = m.initial_state();
            for val in [1i64, 1, 3, 0, 1] {
                let p = present(&["c"]);
                let vals = input_values(&[("c", val)]);
                let want = m.react(&p, &vals, &st).unwrap();
                let got = execute(&m, &g, &p, &vals, &st).unwrap();
                assert_equivalent(&got, &want);
                st = want.next;
            }
        }
    }

    #[test]
    fn no_firing_preserves_state_and_reports_unfired() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let st = m.initial_state();
        let r = execute(&m, &g, &present(&[]), &input_values(&[("c", 9)]), &st).unwrap();
        assert!(!r.fired);
        assert_eq!(r.next, st);
        assert!(r.emissions.is_empty());
    }

    #[test]
    fn tests_are_lazy() {
        // When c is absent the a==?c test must not be evaluated: give it an
        // unbound variable environment and check no error surfaces.
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let st = m.initial_state();
        let empty_vals = MapEnv::new(); // c_value unbound!
        let r = execute(&m, &g, &present(&[]), &empty_vals, &st).unwrap();
        assert!(!r.fired);
        // And with c present it *does* error, proving the test runs then.
        let err = execute(&m, &g, &present(&["c"]), &empty_vals, &st);
        assert!(err.is_err());
    }

    #[test]
    fn visited_counts_are_positive_and_bounded() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let mut env_impl = RuntimeEnv {
            cfsm: &m,
            present: vec![true],
            tests: vec![Some(true)],
            env: CombinedEnv {
                data: &m.initial_state().data,
                values: &MapEnv::new(),
            },
        };
        let out = g.evaluate(&mut env_impl, 0).unwrap();
        assert!(out.visited >= 2); // at least BEGIN and END
        assert!(out.visited <= g.len());
    }
}
