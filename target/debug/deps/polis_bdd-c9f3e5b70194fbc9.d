/root/repo/target/debug/deps/polis_bdd-c9f3e5b70194fbc9.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libpolis_bdd-c9f3e5b70194fbc9.rmeta: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
