//! Criterion benchmarks for the execution substrates: single-reaction
//! virtual-machine runs and RTOS co-simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use polis_bench::dashboard_stimulus;
use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::workloads;
use polis_rtos::{RtosConfig, Simulator};
use polis_sgraph::build;
use polis_vm::{
    assemble, compile, run_reaction, BufferPolicy, CollectingHost, Profile, VmMemory,
};

fn bench_reaction(c: &mut Criterion) {
    let net = workloads::dashboard();
    let m = net.cfsms()[net.machine_index("fuel").unwrap()].clone();
    let mut rf = ReactiveFn::build(&m);
    rf.sift(OrderScheme::OutputsAfterSupport);
    let g = build(&rf).expect("builds");
    let prog = compile(&m, &g, BufferPolicy::All);
    let obj = assemble(&prog, Profile::Mcu8);
    c.bench_function("vm/react_fuel", |b| {
        b.iter_batched(
            || (VmMemory::new(&prog), CollectingHost::new(vec![true])),
            |(mut mem, mut host)| {
                run_reaction(&prog, &obj, &mut mem, &mut host).expect("runs")
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation(c: &mut Criterion) {
    let net = workloads::dashboard();
    let stim = dashboard_stimulus(400);
    c.bench_function("rtos/simulate_dashboard_400", |b| {
        b.iter_batched(
            || Simulator::build(&net, RtosConfig::default()),
            |mut sim| {
                sim.run(&stim);
                sim.stats().total_cycles
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_reaction, bench_simulation);
criterion_main!(benches);
