/root/repo/target/debug/deps/fig1_simple-97318c03b3d13a78.d: tests/fig1_simple.rs

/root/repo/target/debug/deps/libfig1_simple-97318c03b3d13a78.rmeta: tests/fig1_simple.rs

tests/fig1_simple.rs:
