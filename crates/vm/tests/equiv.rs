//! Cross-layer properties: compiled object code behaves exactly like the
//! s-graph it was compiled from (and hence like the CFSM, by Theorem 1),
//! and its dynamic cycle counts always fall inside the static min/max
//! bounds of the object-code analyzer. Deterministically seeded.

use polis_cfsm::{Cfsm, OrderScheme, ReactiveFn};
use polis_core::random::Rng;
use polis_expr::{Env, Expr, MapEnv, Type, Value};
use polis_sgraph::{build, ite_chain, SGraph};
use polis_vm::{
    analyze, assemble, compile, run_reaction, BufferPolicy, CollectingHost, Profile, VmMemory,
    VmProgram,
};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct TransitionSpec {
    from: usize,
    to: usize,
    need_a: u8,
    need_b: u8,
    need_t: u8,
    emit_x: bool,
    emit_v: bool,
    bump: bool,
    reset: bool,
}

#[derive(Debug, Clone)]
struct MachineSpec {
    num_states: usize,
    transitions: Vec<TransitionSpec>,
}

fn gen_machine(rng: &mut Rng) -> MachineSpec {
    let num_states = rng.usize(1..4);
    let transitions = (0..rng.usize(1..6))
        .map(|_| TransitionSpec {
            from: rng.usize(0..num_states),
            to: rng.usize(0..num_states),
            need_a: rng.usize(0..3) as u8,
            need_b: rng.usize(0..3) as u8,
            need_t: rng.usize(0..3) as u8,
            emit_x: rng.bool(),
            emit_v: rng.bool(),
            bump: rng.bool(),
            reset: rng.bool(),
        })
        .collect();
    MachineSpec {
        num_states,
        transitions,
    }
}

fn gen_stimulus(rng: &mut Rng, max_len: usize) -> Vec<(bool, bool, i64)> {
    (0..rng.usize(1..max_len))
        .map(|_| (rng.bool(), rng.bool(), rng.i64(0..16)))
        .collect()
}

fn instantiate(spec: &MachineSpec) -> Cfsm {
    let mut b = Cfsm::builder("random");
    b.input_pure("a");
    b.input_valued("b", Type::uint(4));
    b.output_pure("x");
    b.output_valued("v", Type::uint(4));
    b.state_var("n", Type::uint(4), Value::Int(0));
    let states: Vec<_> = (0..spec.num_states)
        .map(|i| b.ctrl_state(format!("s{i}")))
        .collect();
    let t = b.test("n_lt_b", Expr::var("n").lt(Expr::var("b_value")));
    for ts in &spec.transitions {
        let mut tb = b.transition(states[ts.from], states[ts.to]);
        tb = match ts.need_a {
            1 => tb.when_present("a"),
            2 => tb.when_absent("a"),
            _ => tb,
        };
        tb = match ts.need_b {
            1 => tb.when_present("b"),
            2 => tb.when_absent("b"),
            _ => tb,
        };
        tb = match ts.need_t {
            1 => tb.when_test(t),
            2 => tb.when_not_test(t),
            _ => tb,
        };
        if ts.emit_x {
            tb = tb.emit("x");
        }
        if ts.emit_v {
            tb = tb.emit_value("v", Expr::var("n").add(Expr::var("b_value")));
        }
        if ts.reset {
            tb = tb.assign("n", Expr::int(0));
        } else if ts.bump {
            tb = tb.assign("n", Expr::var("n").add(Expr::int(1)));
        }
        tb.done();
    }
    b.build().unwrap()
}

/// Drive the compiled routine and the reference CFSM in lock-step.
fn check_machine(
    m: &Cfsm,
    g: &SGraph,
    policy: BufferPolicy,
    profile: Profile,
    stimulus: &[(bool, bool, i64)],
) {
    let prog: VmProgram = compile(m, g, policy);
    let obj = assemble(&prog, profile);
    let bounds = analyze(&prog, &obj);
    let mut mem = VmMemory::new(&prog);
    let mut st = m.initial_state();

    for &(pa, pb, bval) in stimulus {
        // Reference reaction.
        let mut present = BTreeSet::new();
        if pa {
            present.insert("a".to_string());
        }
        if pb {
            present.insert("b".to_string());
        }
        let mut vals = MapEnv::new();
        vals.set("b_value", Value::Int(bval));
        let want = m.react(&present, &vals, &st).unwrap();

        // Compiled reaction. The RTOS would write the buffered value of b
        // whenever the event is (re-)emitted; model a one-place buffer by
        // always updating it.
        if let Some(slot) = prog.input_value_slot(1) {
            mem.set(slot, bval);
        }
        let mut host = CollectingHost::new(vec![pa, pb]);
        let stats = run_reaction(&prog, &obj, &mut mem, &mut host).unwrap();

        // Equivalence: fired, emissions (as sets), state variables, ctrl.
        assert_eq!(host.consumed, want.fired, "fired mismatch");
        let mut got: Vec<(usize, Option<i64>)> = host.emissions.clone();
        let mut exp: Vec<(usize, Option<i64>)> = want
            .emissions
            .iter()
            .map(|e| {
                let oi = m.output_index(&e.signal).unwrap();
                (oi, e.value.map(|v| v.as_int().unwrap()))
            })
            .collect();
        got.sort();
        exp.sort();
        assert_eq!(got, exp, "emission mismatch");
        let n_slot = prog.state_slot("n").unwrap();
        assert_eq!(
            mem.get(n_slot),
            want.next.data.get("n").unwrap().as_int().unwrap(),
            "state variable mismatch"
        );
        if let Some(cs) = prog.ctrl_slot() {
            assert_eq!(mem.get(cs) as usize, want.next.ctrl, "ctrl mismatch");
        }

        // Static bounds contain the dynamic cost.
        assert!(
            (bounds.min_cycles..=bounds.max_cycles).contains(&stats.cycles),
            "cycles {} outside [{}, {}]",
            stats.cycles,
            bounds.min_cycles,
            bounds.max_cycles
        );

        st = want.next;
    }
}

/// Runs `f` over 48 seeded (machine, stimulus) cases.
fn for_each_case(tag: u64, stim_max: usize, f: impl Fn(&Cfsm, &[(bool, bool, i64)])) {
    for case in 0..48u64 {
        let mut rng = Rng::new(tag ^ case.wrapping_mul(0x517c_c1b7));
        let spec = gen_machine(&mut rng);
        let stim = gen_stimulus(&mut rng, stim_max);
        let m = instantiate(&spec);
        f(&m, &stim);
    }
}

#[test]
fn compiled_code_matches_reference_mcu8() {
    for_each_case(0x11, 10, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        rf.sift(OrderScheme::OutputsAfterSupport);
        let g = build(&rf).unwrap();
        check_machine(m, &g, BufferPolicy::All, Profile::Mcu8, stim);
    });
}

#[test]
fn compiled_code_matches_reference_risc32() {
    for_each_case(0x12, 10, |m, stim| {
        let rf = ReactiveFn::build(m);
        let g = build(&rf).unwrap();
        check_machine(m, &g, BufferPolicy::All, Profile::Risc32, stim);
    });
}

#[test]
fn minimal_buffering_is_still_correct() {
    for_each_case(0x13, 10, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        rf.sift(OrderScheme::OutputsAfterSupport);
        let g = build(&rf).unwrap();
        check_machine(m, &g, BufferPolicy::Minimal, Profile::Mcu8, stim);
    });
}

#[test]
fn ite_chain_compiles_and_matches() {
    for_each_case(0x14, 8, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        let g = ite_chain(&mut rf);
        check_machine(m, &g, BufferPolicy::All, Profile::Mcu8, stim);
    });
}

#[test]
fn minimal_buffering_never_uses_more_ram() {
    for_each_case(0x15, 2, |m, _stim| {
        let rf = ReactiveFn::build(m);
        let g = build(&rf).unwrap();
        let all = compile(m, &g, BufferPolicy::All);
        let min = compile(m, &g, BufferPolicy::Minimal);
        assert!(min.ram_bytes() <= all.ram_bytes());
        assert!(min.num_local_copies() <= all.num_local_copies());
    });
}
