/root/repo/target/debug/deps/compose_prop-55ebb0b18b5b3a28.d: crates/cfsm/tests/compose_prop.rs Cargo.toml

/root/repo/target/debug/deps/libcompose_prop-55ebb0b18b5b3a28.rmeta: crates/cfsm/tests/compose_prop.rs Cargo.toml

crates/cfsm/tests/compose_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
