/root/repo/target/debug/deps/prop-9570fdf74902874b.d: crates/bdd/tests/prop.rs

/root/repo/target/debug/deps/libprop-9570fdf74902874b.rmeta: crates/bdd/tests/prop.rs

crates/bdd/tests/prop.rs:
