/root/repo/target/debug/deps/ablation_collapse-cfa66a0fcee262f1.d: crates/bench/src/bin/ablation_collapse.rs

/root/repo/target/debug/deps/ablation_collapse-cfa66a0fcee262f1: crates/bench/src/bin/ablation_collapse.rs

crates/bench/src/bin/ablation_collapse.rs:
