/root/repo/target/debug/libpolis_bdd.rlib: /root/repo/crates/bdd/src/encode.rs /root/repo/crates/bdd/src/lib.rs /root/repo/crates/bdd/src/reorder.rs
