//! Cross-baseline integration tests: all implementation styles of a
//! machine agree behaviourally, and composition (the single-FSM baseline)
//! agrees with the synchronous interpretation of the network.

use polis::cfsm::{compose, Network};
use polis::core::{synthesize, workloads, ImplStyle, SynthesisOptions};
use polis::expr::MapEnv;
use polis::rtos::{RtosConfig, Simulator, Stimulus};
use polis::sgraph::execute;
use std::collections::BTreeSet;

/// Drives every style of every dashboard machine against the reference
/// semantics on a pseudo-random stimulus.
#[test]
fn styles_agree_behaviourally_on_dashboard_machines() {
    let net = workloads::dashboard();
    for m in net.cfsms() {
        let styles = [
            ImplStyle::DecisionGraph,
            ImplStyle::IteChain,
            ImplStyle::TwoLevel,
        ];
        let graphs: Vec<_> = styles
            .iter()
            .map(|&style| {
                synthesize(
                    m,
                    &SynthesisOptions {
                        style,
                        ..SynthesisOptions::default()
                    },
                )
                .graph
            })
            .collect();

        let mut st_ref = m.initial_state();
        let mut st_g: Vec<_> = graphs.iter().map(|_| m.initial_state()).collect();
        // A deterministic pseudo-random input walk.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for step in 0..24 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut present = BTreeSet::new();
            let mut vals = MapEnv::new();
            for (i, sig) in m.inputs().iter().enumerate() {
                if (x >> (i * 7)) & 1 == 1 {
                    present.insert(sig.name().to_owned());
                }
                if let Some(ty) = sig.value_type() {
                    let v = ((x >> (i * 11)) & 0x7f) as i64;
                    vals.set(
                        polis::cfsm::value_var_name(sig.name()),
                        polis::expr::Value::Int(v).coerce(ty),
                    );
                }
            }
            let want = m.react(&present, &vals, &st_ref).unwrap();
            for (k, g) in graphs.iter().enumerate() {
                let got = execute(m, g, &present, &vals, &st_g[k]).unwrap();
                assert_eq!(
                    got.fired,
                    want.fired,
                    "{} style {:?} step {step}",
                    m.name(),
                    styles[k]
                );
                assert_eq!(got.next, want.next, "{} style {:?}", m.name(), styles[k]);
                assert_eq!(
                    got.emissions.len(),
                    want.emissions.len(),
                    "{} style {:?}",
                    m.name(),
                    styles[k]
                );
                st_g[k] = got.next;
            }
            st_ref = want.next;
        }
    }
}

/// The composed single FSM reacts like the synchronous network and like a
/// POLIS RTOS run when events are spaced far enough apart.
#[test]
fn composition_agrees_with_distributed_execution_when_slow() {
    let net = workloads::dashboard();
    let product = compose::compose(&net).expect("dashboard composes");
    let product_net = Network::new("dash1", vec![product]).unwrap();

    // Widely spaced stimuli: the asynchronous network quiesces between
    // events, so its observable emissions match the synchronous product.
    let stim = vec![
        Stimulus::pure(0, "wheel_pulse"),
        Stimulus::pure(1_000_000, "wheel_pulse"),
        Stimulus::pure(2_000_000, "timebase"),
        Stimulus::valued(3_000_000, "fuel_sample", 60),
    ];

    let mut multi = Simulator::build(&net, RtosConfig::default());
    multi.run(&stim);
    let mut single = Simulator::build(&product_net, RtosConfig::default());
    single.run(&stim);

    let observable = |sim: &Simulator| -> Vec<(String, Option<i64>)> {
        let mut v: Vec<(String, Option<i64>)> = sim
            .trace()
            .iter()
            .map(|t| (t.signal.clone(), t.value))
            .collect();
        v.sort();
        v
    };
    assert_eq!(observable(&multi), observable(&single));
}

/// Table III's headline: the composed machine reacts in fewer cycles per
/// external event (no internal communication) but costs more ROM than the
/// sum of the parts.
#[test]
fn composition_trades_size_for_speed() {
    let net = workloads::dashboard();
    let product = compose::compose(&net).expect("composes");

    let opts = SynthesisOptions::default();
    let product_synth = synthesize(&product, &opts);
    let parts: Vec<_> = net.cfsms().iter().map(|m| synthesize(m, &opts)).collect();
    let parts_rom: u64 = parts.iter().map(|p| p.measured.size_bytes).sum();

    assert!(
        product_synth.measured.size_bytes > parts_rom,
        "single FSM {} B should exceed the sum of parts {} B",
        product_synth.measured.size_bytes,
        parts_rom
    );
}

/// Granularity sweep (Section I-H): merging a subnetwork grows code but
/// removes communication overhead for events inside the island.
#[test]
fn granularity_merge_keeps_behaviour() {
    let net = workloads::dashboard();
    let merged = compose::compose_subset(&net, &["frc", "speedo"]).expect("merge");
    assert_eq!(merged.cfsms().len(), net.cfsms().len() - 1);

    let stim = vec![
        Stimulus::pure(0, "wheel_pulse"),
        Stimulus::pure(500_000, "wheel_pulse"),
        Stimulus::pure(1_000_000, "timebase"),
    ];
    let mut a = Simulator::build(&net, RtosConfig::default());
    a.run(&stim);
    let mut b = Simulator::build(&merged, RtosConfig::default());
    b.run(&stim);
    let speeds = |sim: &Simulator| -> Vec<Option<i64>> {
        sim.trace()
            .iter()
            .filter(|t| t.signal == "speed")
            .map(|t| t.value)
            .collect()
    };
    assert_eq!(speeds(&a), speeds(&b));
}
