//! The paper's `build` procedure (Section III-B2, Theorem 1): structural
//! translation of the characteristic-function BDD into an s-graph.
//!
//! With every output ordered after its support (the default scheme), the
//! s-graph *is* the BDD: input-variable nodes become TEST vertices and
//! output-variable nodes become ASSIGN vertices. On any path, an output
//! node has its false branch at the 0-terminal exactly when the output is
//! *forced*; an output absent from the path is a don't care, resolved by
//! the cheapest option — no assignment (so the implementation keeps old
//! state / emits nothing). For relational specifications where both
//! branches of an output node are satisfiable, we follow the 1-branch — a
//! legal resolution by the paper's flexibility condition.

use crate::graph::{AssignLabel, NodeId, SGraph, SNode, TestLabel};
use polis_bdd::NodeRef;
use polis_cfsm::{ReactiveFn, RfVarKind, Side};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Failure translating a characteristic function into an s-graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `χ` is the constant false — no behaviour at all.
    UnsatisfiableChi,
    /// Some input combination admits no output assignment; `χ` is not
    /// complete over its inputs (violates the CFSM completion invariant).
    IncompleteSpec {
        /// Diagnostic name of the input variable at the failure point.
        at: String,
    },
    /// A BDD variable in `χ` has no reactive-function metadata (indicates a
    /// corrupted [`ReactiveFn`]).
    UnmappedVar {
        /// The stray variable's name.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnsatisfiableChi => {
                write!(f, "characteristic function is unsatisfiable")
            }
            BuildError::IncompleteSpec { at } => {
                write!(f, "characteristic function is incomplete at input `{at}`")
            }
            BuildError::UnmappedVar { name } => {
                write!(f, "BDD variable `{name}` has no reactive-function metadata")
            }
        }
    }
}

impl Error for BuildError {}

/// Builds an s-graph computing the reactive function of `rf`.
///
/// The graph mirrors the current BDD structure, so call
/// [`ReactiveFn::sift`] first to pick the ordering scheme (Table II
/// compares the outcomes).
///
/// # Errors
///
/// See [`BuildError`]. A [`ReactiveFn`] built by
/// [`ReactiveFn::build`] never triggers `UnsatisfiableChi` or
/// `IncompleteSpec`; they guard hand-constructed characteristic functions.
pub fn build(rf: &ReactiveFn) -> Result<SGraph, BuildError> {
    let mut g = SGraph::new(rf.name().to_owned());
    if rf.chi().is_false() {
        return Err(BuildError::UnsatisfiableChi);
    }
    let mut memo: HashMap<NodeRef, NodeId> = HashMap::new();
    let first = conv(rf, &mut g, rf.chi(), &mut memo)?;
    g.set_begin(first);
    debug_assert_eq!(g.validate(), Ok(()));
    Ok(g)
}

fn conv(
    rf: &ReactiveFn,
    g: &mut SGraph,
    n: NodeRef,
    memo: &mut HashMap<NodeRef, NodeId>,
) -> Result<NodeId, BuildError> {
    if n.is_true() {
        return Ok(NodeId::END);
    }
    debug_assert!(!n.is_false(), "conv called on the 0-terminal");
    if let Some(&id) = memo.get(&n) {
        return Ok(id);
    }
    let bdd = rf.bdd();
    let v = bdd.node_var(n).expect("non-terminal");
    let loc = rf.locate(v).ok_or_else(|| BuildError::UnmappedVar {
        name: bdd.var_name(v).to_owned(),
    })?;

    let id = match loc.side {
        Side::Input => {
            let rv = &rf.inputs()[loc.var];
            let label = match rv.kind {
                RfVarKind::Present { input } => TestLabel::Present { input },
                RfVarKind::Test { test } => TestLabel::TestExpr { test },
                RfVarKind::Ctrl => TestLabel::CtrlBit {
                    bit: loc.bit,
                    width: rv.bits.len(),
                },
                _ => unreachable!("input side has input kinds"),
            };
            let (lo, hi) = (bdd.lo(n), bdd.hi(n));
            if lo.is_false() || hi.is_false() {
                // Some completion of this input has no legal output.
                return Err(BuildError::IncompleteSpec {
                    at: bdd.var_name(v).to_owned(),
                });
            }
            let lo_id = conv(rf, g, lo, memo)?;
            let hi_id = conv(rf, g, hi, memo)?;
            g.add_node(SNode::Test {
                label,
                children: vec![lo_id, hi_id],
            })
        }
        Side::Output => {
            let rv = &rf.outputs()[loc.var];
            match rv.kind {
                RfVarKind::Consume | RfVarKind::Action { .. } => {
                    let (value, rest) = forced_branch(bdd, n);
                    let next = conv(rf, g, rest, memo)?;
                    if value {
                        let label = match rv.kind {
                            RfVarKind::Consume => AssignLabel::Consume,
                            RfVarKind::Action { action } => AssignLabel::Action { action },
                            _ => unreachable!(),
                        };
                        g.add_node(SNode::Assign { label, next })
                    } else {
                        // Output forced to 0: no code, fall through.
                        next
                    }
                }
                RfVarKind::NextCtrl => {
                    // Collect the (contiguous) run of next-state bits.
                    let width = rv.bits.len();
                    let mut bits = Vec::new();
                    let mut cur = n;
                    // Consume the contiguous run of next-state bit nodes.
                    while let Some(cl) =
                        bdd.node_var(cur).and_then(|cv| rf.locate(cv)).filter(|cl| {
                            cl.side == Side::Output
                                && rf.outputs()[cl.var].kind == RfVarKind::NextCtrl
                        })
                    {
                        let (value, rest) = forced_branch(bdd, cur);
                        bits.push((cl.bit, value));
                        cur = rest;
                    }
                    let next = conv(rf, g, cur, memo)?;
                    g.add_node(SNode::Assign {
                        label: AssignLabel::NextCtrlBits { bits, width },
                        next,
                    })
                }
                _ => unreachable!("output side has output kinds"),
            }
        }
    };
    memo.insert(n, id);
    Ok(id)
}

/// At an output node: the forced value and the continuation. When both
/// branches are satisfiable (a relational don't care), follows the
/// 1-branch — a legal choice per Section III-B2.
fn forced_branch(bdd: &polis_bdd::Bdd, n: NodeRef) -> (bool, NodeRef) {
    let (lo, hi) = (bdd.lo(n), bdd.hi(n));
    if lo.is_false() {
        (true, hi)
    } else if hi.is_false() {
        (false, lo)
    } else {
        (true, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_cfsm::{Cfsm, OrderScheme};
    use polis_expr::{Expr, Type, Value};

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    fn toggler() -> Cfsm {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("on");
        b.output_pure("off");
        let s_off = b.ctrl_state("off");
        let s_on = b.ctrl_state("on");
        b.transition(s_off, s_on)
            .when_present("tick")
            .emit("on")
            .done();
        b.transition(s_on, s_off)
            .when_present("tick")
            .emit("off")
            .done();
        b.build().unwrap()
    }

    #[test]
    fn simple_matches_figure_1_shape() {
        // Fig. 1: test present_c, then test a == ?c, then the assigns.
        let rf = ReactiveFn::build(&simple());
        let g = build(&rf).unwrap();
        assert!(g.validate().is_ok());
        // Two TESTs (present_c, a == ?c); ASSIGNs: consume twice shared? —
        // consume on both fired paths (shared node), plus a:=0, emit y,
        // a:=a+1.
        assert_eq!(g.num_tests(), 2);
        assert_eq!(g.depth(), 2);
        // Path absent(c): no assigns at all.
        // Paths present: consume + their actions.
        assert!(g.num_assigns() >= 3);
    }

    #[test]
    fn toggler_tests_ctrl_bit() {
        let rf = ReactiveFn::build(&toggler());
        let g = build(&rf).unwrap();
        let has_ctrl_test = g.reachable().iter().any(|&id| {
            matches!(
                g.node(id),
                SNode::Test {
                    label: TestLabel::CtrlBit { .. },
                    ..
                }
            )
        });
        assert!(has_ctrl_test);
        let has_next_ctrl = g.reachable().iter().any(|&id| {
            matches!(
                g.node(id),
                SNode::Assign {
                    label: AssignLabel::NextCtrlBits { .. },
                    ..
                }
            )
        });
        assert!(has_next_ctrl);
    }

    #[test]
    fn build_after_each_ordering_scheme() {
        for scheme in [
            OrderScheme::Natural,
            OrderScheme::OutputsAfterAllInputs,
            OrderScheme::OutputsAfterSupport,
        ] {
            let mut rf = ReactiveFn::build(&toggler());
            rf.sift(scheme);
            let g = build(&rf).expect("builds under every scheme");
            assert!(g.validate().is_ok(), "{scheme:?}");
        }
    }

    #[test]
    fn inputs_tested_at_most_once_per_path() {
        // BDD property: each variable appears once per path; check depth
        // bound = number of input variables.
        let rf = ReactiveFn::build(&simple());
        let g = build(&rf).unwrap();
        assert!(g.depth() <= rf.inputs().iter().map(|v| v.bits.len()).sum());
    }
}
