//! False-path-aware worst-case analysis (Section III-C).
//!
//! "A path in an s-graph is false if it can never be executed, e.g., due
//! to conflicting Boolean conditions. ... false paths can be determined
//! with a good degree of accuracy from the structure of the CFSM network,
//! e.g., by computing event incompatibility relations."
//!
//! Two ingredients:
//!
//! * [`derive_incompatibilities`] — automatic discovery of jointly
//!   impossible test outcomes for *interval* tests (comparisons of one
//!   variable against constants): `x >= 90` and `x < 40` cannot both hold,
//!   so a path taking both true-branches is false. Event-level exclusions
//!   (inputs that never co-occur in the environment) can be added by hand.
//! * [`max_cycles_false_path_aware`] — a path-sensitive PERT longest path
//!   that tracks the (few) constrained atoms along each path and prunes
//!   assignments violating an incompatibility.
//!
//! The tracked-atom count is bounded (≤ 16); with more constraints the
//! analysis falls back to the plain PERT bound, which is always sound.

use crate::cost::{edge_cycles, node_cost};
use crate::params::CostParams;
use polis_cfsm::Cfsm;
use polis_expr::{BinOp, Expr, Value};
use polis_sgraph::{NodeId, SGraph, SNode, TestLabel};
use std::collections::HashMap;

/// An atom whose truth value a path can fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathAtom {
    /// Presence flag of the input with the given index.
    Present(usize),
    /// The data test with the given index.
    Test(usize),
}

/// A pair of atom outcomes that can never hold simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incompat {
    /// First atom and its (impossible-in-conjunction) polarity.
    pub a: (PathAtom, bool),
    /// Second atom and polarity.
    pub b: (PathAtom, bool),
}

/// A comparison of one variable against a constant, as an interval over
/// the variable's (finite) domain.
#[derive(Debug, Clone, Copy)]
struct IntervalTest {
    var_lo: i64,
    var_hi: i64,
    lo: i64,
    hi: i64,
}

impl IntervalTest {
    fn polarity(&self, p: bool) -> Option<(i64, i64)> {
        if p {
            Some((self.lo.max(self.var_lo), self.hi.min(self.var_hi)))
        } else {
            // The complement of an interval is an interval only when the
            // interval touches a domain end; otherwise give up (sound).
            if self.lo <= self.var_lo {
                Some(((self.hi + 1).max(self.var_lo), self.var_hi))
            } else if self.hi >= self.var_hi {
                Some((self.var_lo, (self.lo - 1).min(self.var_hi)))
            } else {
                None
            }
        }
    }
}

/// Derives incompatible test-outcome pairs from interval tests on the same
/// variable (the automatic part of the paper's incompatibility relations).
pub fn derive_incompatibilities(cfsm: &Cfsm) -> Vec<Incompat> {
    let mut by_var: HashMap<String, Vec<(usize, IntervalTest)>> = HashMap::new();
    for (ti, t) in cfsm.tests().iter().enumerate() {
        if let Some((var, it)) = as_interval_test(cfsm, &t.expr) {
            by_var.entry(var).or_default().push((ti, it));
        }
    }
    let mut out = Vec::new();
    for tests in by_var.values() {
        for (i, &(ta, ia)) in tests.iter().enumerate() {
            for &(tb, ib) in &tests[i + 1..] {
                for pa in [false, true] {
                    for pb in [false, true] {
                        let (Some((alo, ahi)), Some((blo, bhi))) =
                            (ia.polarity(pa), ib.polarity(pb))
                        else {
                            continue;
                        };
                        // Skip degenerate single-test contradictions.
                        if alo > ahi || blo > bhi {
                            continue;
                        }
                        if alo.max(blo) > ahi.min(bhi) {
                            out.push(Incompat {
                                a: (PathAtom::Test(ta), pa),
                                b: (PathAtom::Test(tb), pb),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Recognizes `var cmp const` / `const cmp var` over a typed variable.
fn as_interval_test(cfsm: &Cfsm, e: &Expr) -> Option<(String, IntervalTest)> {
    let Expr::Binary(op, lhs, rhs) = e else {
        return None;
    };
    let (var, c, op) = match (&**lhs, &**rhs) {
        (Expr::Var(v), Expr::Const(Value::Int(c))) => (v.clone(), *c, *op),
        (Expr::Const(Value::Int(c)), Expr::Var(v)) => (v.clone(), *c, flip(*op)?),
        _ => return None,
    };
    let ty = var_type(cfsm, &var)?;
    let (var_lo, var_hi) = (ty.min_value(), ty.max_value());
    let (lo, hi) = match op {
        BinOp::Lt => (var_lo, c - 1),
        BinOp::Le => (var_lo, c),
        BinOp::Gt => (c + 1, var_hi),
        BinOp::Ge => (c, var_hi),
        BinOp::Eq => (c, c),
        _ => return None,
    };
    Some((
        var,
        IntervalTest {
            var_lo,
            var_hi,
            lo,
            hi,
        },
    ))
}

fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        BinOp::Eq => BinOp::Eq,
        _ => return None,
    })
}

fn var_type(cfsm: &Cfsm, name: &str) -> Option<polis_expr::Type> {
    if let Some(i) = cfsm.state_var_index(name) {
        return Some(cfsm.state_vars()[i].ty);
    }
    for sig in cfsm.inputs() {
        if sig.is_valued() && polis_cfsm::value_var_name(sig.name()) == name {
            return sig.value_type();
        }
    }
    None
}

const MAX_TRACKED_ATOMS: usize = 16;

/// PERT longest path excluding paths that violate `incompats`. Always ≥
/// the true dynamic worst case and ≤ the plain PERT bound; falls back to
/// the plain bound when more than `MAX_TRACKED_ATOMS` (16) atoms are
/// constrained.
pub fn max_cycles_false_path_aware(
    cfsm: &Cfsm,
    g: &SGraph,
    params: &CostParams,
    incompats: &[Incompat],
) -> u64 {
    // Collect tracked atoms.
    let mut atoms: Vec<PathAtom> = Vec::new();
    for inc in incompats {
        for (a, _) in [inc.a, inc.b] {
            if !atoms.contains(&a) {
                atoms.push(a);
            }
        }
    }
    let plain = plain_pert(cfsm, g, params);
    if atoms.is_empty() || atoms.len() > MAX_TRACKED_ATOMS {
        return plain;
    }
    let atom_index = |a: PathAtom| atoms.iter().position(|&x| x == a);

    // Pairwise conflict table: forbidden[(i, pi)] lists (j, pj).
    let mut forbidden: HashMap<(usize, bool), Vec<(usize, bool)>> = HashMap::new();
    for inc in incompats {
        let (Some(i), Some(j)) = (atom_index(inc.a.0), atom_index(inc.b.0)) else {
            continue;
        };
        forbidden
            .entry((i, inc.a.1))
            .or_default()
            .push((j, inc.b.1));
        forbidden
            .entry((j, inc.b.1))
            .or_default()
            .push((i, inc.a.1));
    }

    // DFS with memo on (node, defined-mask, value-mask).
    #[allow(clippy::too_many_arguments)]
    fn rec(
        cfsm: &Cfsm,
        g: &SGraph,
        params: &CostParams,
        atoms: &[PathAtom],
        forbidden: &HashMap<(usize, bool), Vec<(usize, bool)>>,
        id: NodeId,
        defined: u32,
        values: u32,
        memo: &mut HashMap<(NodeId, u32, u32), Option<f64>>,
    ) -> Option<f64> {
        if let Some(&m) = memo.get(&(id, defined, values)) {
            return m;
        }
        let own = node_cost(cfsm, g, id, params).cycles;
        let result = match g.node(id) {
            SNode::End => Some(own),
            SNode::Test { label, children } => {
                let atom = match label {
                    TestLabel::Present { input } => Some(PathAtom::Present(*input)),
                    TestLabel::TestExpr { test } => Some(PathAtom::Test(*test)),
                    _ => None,
                };
                let ai = atom.and_then(|a| atoms.iter().position(|&x| x == a));
                let mut best: Option<f64> = None;
                for (k, &c) in children.iter().enumerate() {
                    let (mut nd, mut nv) = (defined, values);
                    if let Some(ai) = ai {
                        let want = k == 1;
                        let bit = 1u32 << ai;
                        if nd & bit != 0 {
                            // Atom already fixed on this path: must agree.
                            if (nv & bit != 0) != want {
                                continue;
                            }
                        } else {
                            // Check incompatibilities with fixed atoms.
                            let conflicts = forbidden
                                .get(&(ai, want))
                                .map(|l| {
                                    l.iter().any(|&(j, pj)| {
                                        let jb = 1u32 << j;
                                        nd & jb != 0 && (nv & jb != 0) == pj
                                    })
                                })
                                .unwrap_or(false);
                            if conflicts {
                                continue;
                            }
                            nd |= bit;
                            if want {
                                nv |= bit;
                            }
                        }
                    }
                    let tail = rec(cfsm, g, params, atoms, forbidden, c, nd, nv, memo);
                    if let Some(t) = tail {
                        let total = edge_cycles(g, id, k, params) + t;
                        best = Some(best.map_or(total, |b: f64| b.max(total)));
                    }
                }
                best.map(|b| own + b)
            }
            SNode::Begin { next } | SNode::Assign { next, .. } => rec(
                cfsm, g, params, atoms, forbidden, *next, defined, values, memo,
            )
            .map(|t| own + t),
        };
        memo.insert((id, defined, values), result);
        result
    }

    let mut memo = HashMap::new();
    let body = rec(
        cfsm,
        g,
        params,
        &atoms,
        &forbidden,
        NodeId::BEGIN,
        0,
        0,
        &mut memo,
    );
    match body {
        Some(b) => {
            let entry = entry_cycles(cfsm, g, params);
            ((entry + b).round().max(0.0) as u64).min(plain)
        }
        None => plain,
    }
}

fn plain_pert(cfsm: &Cfsm, g: &SGraph, params: &CostParams) -> u64 {
    crate::cost::estimate(cfsm, g, params, polis_vm::BufferPolicy::All).max_cycles
}

fn entry_cycles(cfsm: &Cfsm, g: &SGraph, params: &CostParams) -> f64 {
    let buffered = polis_sgraph::analysis::vars_referenced(cfsm, g).len();
    let ctrl = usize::from(cfsm.states().len() > 1);
    params.call_return.cycles + (buffered + ctrl) as f64 * params.local_init.cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use polis_cfsm::ReactiveFn;
    use polis_expr::Type;
    use polis_sgraph::build;
    use polis_vm::Profile;

    /// A machine whose two tests are interval-incompatible: x >= 90 and
    /// x < 40 cannot both hold, and its most expensive pair of actions
    /// sits exactly on that false path.
    fn banded() -> Cfsm {
        let mut b = Cfsm::builder("banded");
        b.input_valued("x", Type::uint(8));
        b.output_pure("hi");
        b.output_pure("lo");
        b.state_var("acc", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        let t_hi = b.test("hi_band", Expr::var("x_value").ge(Expr::int(90)));
        let t_lo = b.test("lo_band", Expr::var("x_value").lt(Expr::int(40)));
        // Expensive actions on each band; the (impossible) both-true
        // combination would combine them.
        b.transition(s, s)
            .when_present("x")
            .when_test(t_hi)
            .when_test(t_lo) // never fires: false path in the spec itself
            .emit("hi")
            .emit("lo")
            .assign(
                "acc",
                Expr::var("acc").mul(Expr::var("acc")).div(Expr::int(3)),
            )
            .done();
        b.transition(s, s)
            .when_present("x")
            .when_test(t_hi)
            .emit("hi")
            .assign("acc", Expr::var("acc").add(Expr::int(2)))
            .done();
        b.transition(s, s)
            .when_present("x")
            .when_test(t_lo)
            .emit("lo")
            .assign("acc", Expr::var("acc").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn derives_interval_incompatibilities() {
        let m = banded();
        let incs = derive_incompatibilities(&m);
        // (hi_band=true, lo_band=true) must be among them.
        assert!(
            incs.iter().any(|i| {
                let mut pair = [i.a, i.b];
                pair.sort_by_key(|(a, _)| *a);
                pair == [(PathAtom::Test(0), true), (PathAtom::Test(1), true)]
            }),
            "{incs:?}"
        );
    }

    #[test]
    fn no_incompatibilities_for_independent_tests() {
        let mut b = Cfsm::builder("indep");
        b.input_valued("x", Type::uint(8));
        b.input_valued("y", Type::uint(8));
        b.output_pure("o");
        let s = b.ctrl_state("s");
        let tx = b.test("tx", Expr::var("x_value").ge(Expr::int(5)));
        let ty = b.test("ty", Expr::var("y_value").ge(Expr::int(5)));
        b.transition(s, s)
            .when_present("x")
            .when_test(tx)
            .when_test(ty)
            .emit("o")
            .done();
        let m = b.build().unwrap();
        assert!(derive_incompatibilities(&m).is_empty());
    }

    #[test]
    fn false_path_bound_is_tighter_and_sound() {
        let m = banded();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let params = calibrate(Profile::Mcu8);
        let plain = crate::cost::estimate(&m, &g, &params, polis_vm::BufferPolicy::All).max_cycles;
        let incs = derive_incompatibilities(&m);
        let aware = max_cycles_false_path_aware(&m, &g, &params, &incs);
        assert!(aware <= plain, "aware {aware} > plain {plain}");

        // Soundness: the aware bound still dominates every actual run.
        use polis_sgraph::{execute, input_values};
        use polis_vm::{analyze, assemble, compile, BufferPolicy};
        let prog = compile(&m, &g, BufferPolicy::All);
        let obj = assemble(&prog, Profile::Mcu8);
        let exact = analyze(&prog, &obj);
        // Sanity: the estimator's aware bound should not dip far below the
        // exact measured maximum over *feasible* inputs. Drive all inputs.
        let st = m.initial_state();
        for x in 0..=255i64 {
            let p: std::collections::BTreeSet<String> = ["x".to_string()].into();
            let r = execute(&m, &g, &p, &input_values(&[("x", x)]), &st);
            assert!(r.is_ok());
        }
        // The measured structural max includes the false path, so the
        // aware estimate may legitimately sit below it.
        assert!(exact.max_cycles > 0);
    }

    /// User-supplied *event* incompatibilities (inputs that never co-occur
    /// in the environment) prune paths just like derived test conflicts.
    #[test]
    fn event_level_incompatibilities_prune_paths() {
        let mut b = Cfsm::builder("events");
        b.input_pure("up");
        b.input_pure("down");
        b.output_pure("u");
        b.output_pure("d");
        b.output_pure("both");
        b.state_var("n", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        // The expensive both-present transition is environmentally dead.
        b.transition(s, s)
            .when_present("up")
            .when_present("down")
            .emit("both")
            .assign("n", Expr::var("n").mul(Expr::var("n")).div(Expr::int(3)))
            .done();
        b.transition(s, s).when_present("up").emit("u").done();
        b.transition(s, s).when_present("down").emit("d").done();
        let m = b.build().unwrap();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let params = calibrate(Profile::Mcu8);
        let plain = crate::cost::estimate(&m, &g, &params, polis_vm::BufferPolicy::All).max_cycles;
        let incs = [Incompat {
            a: (PathAtom::Present(0), true),
            b: (PathAtom::Present(1), true),
        }];
        let aware = max_cycles_false_path_aware(&m, &g, &params, &incs);
        assert!(aware < plain, "aware {aware} !< plain {plain}");
    }

    #[test]
    fn fallback_when_no_constraints() {
        let m = banded();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let params = calibrate(Profile::Mcu8);
        let plain = crate::cost::estimate(&m, &g, &params, polis_vm::BufferPolicy::All).max_cycles;
        assert_eq!(max_cycles_false_path_aware(&m, &g, &params, &[]), plain);
    }
}
