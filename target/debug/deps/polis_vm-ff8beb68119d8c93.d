/root/repo/target/debug/deps/polis_vm-ff8beb68119d8c93.d: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/debug/deps/libpolis_vm-ff8beb68119d8c93.rlib: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/debug/deps/libpolis_vm-ff8beb68119d8c93.rmeta: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

crates/vm/src/lib.rs:
crates/vm/src/analyze.rs:
crates/vm/src/compile.rs:
crates/vm/src/exec.rs:
crates/vm/src/inst.rs:
crates/vm/src/profile.rs:
