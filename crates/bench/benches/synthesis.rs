//! Criterion benchmarks for the synthesis pipeline: s-graph construction,
//! instruction selection, assembly, and the end-to-end flow per dashboard
//! module.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::{synthesize_with_params, workloads, SynthesisOptions};
use polis_estimate::calibrate;
use polis_sgraph::build;
use polis_vm::{assemble, compile, BufferPolicy, Profile};

fn bench_sgraph_build(c: &mut Criterion) {
    let net = workloads::dashboard();
    let m = net.cfsms()[net.machine_index("odometer").unwrap()].clone();
    c.bench_function("sgraph/build_odometer", |b| {
        b.iter_batched(
            || {
                let mut rf = ReactiveFn::build(&m);
                rf.sift(OrderScheme::OutputsAfterSupport);
                rf
            },
            |rf| build(&rf).expect("builds"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_compile_assemble(c: &mut Criterion) {
    let net = workloads::shock_absorber();
    let m = net.cfsms()[net.machine_index("mode").unwrap()].clone();
    let mut rf = ReactiveFn::build(&m);
    rf.sift(OrderScheme::OutputsAfterSupport);
    let g = build(&rf).expect("builds");
    c.bench_function("vm/compile_mode", |b| {
        b.iter(|| compile(&m, &g, BufferPolicy::All))
    });
    let prog = compile(&m, &g, BufferPolicy::All);
    c.bench_function("vm/assemble_mode_mcu8", |b| {
        b.iter(|| assemble(&prog, Profile::Mcu8))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let net = workloads::dashboard();
    let params = calibrate(Profile::Mcu8);
    let opts = SynthesisOptions::default();
    c.bench_function("pipeline/dashboard_all_modules", |b| {
        b.iter(|| {
            net.cfsms()
                .iter()
                .map(|m| synthesize_with_params(m, &opts, &params).measured.size_bytes)
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, bench_sgraph_build, bench_compile_assemble, bench_pipeline);
criterion_main!(benches);
