/root/repo/target/release/deps/table3-3ef629e3a65a731a.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-3ef629e3a65a731a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
