#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, build, and the full test suite.
# The workspace has zero external dependencies, so every step below works
# without network access (no `cargo fetch` required).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> kernel bench smoke (regression thresholds)"
./target/release/kernel --smoke --check --out /tmp/bench_bdd_kernel_smoke.json

echo "==> symbolic verification of the example networks"
for spec in examples/specs/*.pol; do
  echo "--- polis verify $spec"
  ./target/release/polis verify "$spec"
done

echo "==> verify bench smoke (sanity thresholds + deterministic regression gate)"
./target/release/verify --smoke --check --gate BENCH_verify.json --out /tmp/bench_verify_smoke.json

echo "CI OK"
