/root/repo/target/debug/deps/polis-96330cbebb16738a.d: src/lib.rs

/root/repo/target/debug/deps/libpolis-96330cbebb16738a.rmeta: src/lib.rs

src/lib.rs:
