/root/repo/target/debug/deps/theorem1-4cf64f6a8f590bb7.d: crates/sgraph/tests/theorem1.rs

/root/repo/target/debug/deps/libtheorem1-4cf64f6a8f590bb7.rmeta: crates/sgraph/tests/theorem1.rs

crates/sgraph/tests/theorem1.rs:
