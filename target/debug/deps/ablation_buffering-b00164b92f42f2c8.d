/root/repo/target/debug/deps/ablation_buffering-b00164b92f42f2c8.d: crates/bench/src/bin/ablation_buffering.rs

/root/repo/target/debug/deps/libablation_buffering-b00164b92f42f2c8.rmeta: crates/bench/src/bin/ablation_buffering.rs

crates/bench/src/bin/ablation_buffering.rs:
