//! Structured synthesis trace: per-stage wall times and layer-native
//! counters, serializable to JSON without external dependencies.
//!
//! Every pipeline stage ([`crate::pipeline`]) appends one [`StageRecord`]
//! with its wall time and whatever counters the owning layer reports:
//! BDD unique-table and operation-cache statistics, s-graph node counts,
//! emitted-C line counts, estimated cycle bounds. The CLI writes the
//! trace with `polis synth --trace out.json`.

use std::time::Duration;

/// A counter value: layers report either integral counts or ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// An integral count (node counts, bytes, cycles, swaps, …).
    Int(u64),
    /// A ratio or rate (cache hit rate, relative error, …).
    Float(f64),
}

/// One executed pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (`"chi"`, `"sift"`, `"sgraph"`, …).
    pub stage: &'static str,
    /// The CFSM being synthesized, or `None` for network-level stages
    /// (parse, rtos).
    pub machine: Option<String>,
    /// Wall-clock time spent in the stage.
    pub wall: Duration,
    /// Layer-native counters, in report order.
    pub counters: Vec<(String, MetricValue)>,
}

impl StageRecord {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<MetricValue> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// The full trace of one synthesis run, in execution order (per-machine
/// stages are merged in network order regardless of `--jobs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthTrace {
    records: Vec<StageRecord>,
}

impl SynthTrace {
    /// An empty trace.
    pub fn new() -> SynthTrace {
        SynthTrace::default()
    }

    /// Appends a finished stage record.
    pub fn push(&mut self, record: StageRecord) {
        self.records.push(record);
    }

    /// Appends every record of `other`, preserving order.
    pub fn extend(&mut self, other: SynthTrace) {
        self.records.extend(other.records);
    }

    /// The recorded stages, in execution order.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Serializes the trace as JSON (hand-rolled; the workspace has no
    /// serialization dependency). Durations are reported in microseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"stages\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"stage\": \"");
            out.push_str(&escape_json(r.stage));
            out.push_str("\",\n      \"machine\": ");
            match &r.machine {
                Some(m) => {
                    out.push('"');
                    out.push_str(&escape_json(m));
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str(",\n      \"wall_us\": ");
            out.push_str(&r.wall.as_micros().to_string());
            out.push_str(",\n      \"counters\": {");
            for (j, (name, value)) in r.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        \"");
                out.push_str(&escape_json(name));
                out.push_str("\": ");
                out.push_str(&json_number(*value));
            }
            if !r.counters.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("}\n    }");
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Formats a metric as a JSON number. Non-finite floats (which JSON cannot
/// represent) become `null`.
fn json_number(v: MetricValue) -> String {
    match v {
        MetricValue::Int(n) => n.to_string(),
        MetricValue::Float(f) if f.is_finite() => {
            // Rust's shortest-roundtrip Display is valid JSON except that
            // integral values print without a decimal point; keep them
            // recognizably floating.
            let s = f.to_string();
            if s.contains('.') || s.contains('e') || s.contains('E') {
                s
            } else {
                format!("{s}.0")
            }
        }
        MetricValue::Float(_) => "null".to_string(),
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("héllo"), "héllo");
    }

    #[test]
    fn numbers_serialize_as_json() {
        assert_eq!(json_number(MetricValue::Int(42)), "42");
        assert_eq!(json_number(MetricValue::Float(0.5)), "0.5");
        assert_eq!(json_number(MetricValue::Float(2.0)), "2.0");
        assert_eq!(json_number(MetricValue::Float(f64::NAN)), "null");
        assert_eq!(json_number(MetricValue::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn trace_serializes_round_shapes() {
        let mut t = SynthTrace::new();
        t.push(StageRecord {
            stage: "chi",
            machine: Some("be\"lt".into()),
            wall: Duration::from_micros(7),
            counters: vec![
                ("mk_calls".into(), MetricValue::Int(3)),
                ("hit_rate".into(), MetricValue::Float(0.25)),
            ],
        });
        t.push(StageRecord {
            stage: "rtos",
            machine: None,
            wall: Duration::from_micros(1),
            counters: vec![],
        });
        let json = t.to_json();
        assert!(json.contains("\"stage\": \"chi\""));
        assert!(json.contains("\"machine\": \"be\\\"lt\""));
        assert!(json.contains("\"wall_us\": 7"));
        assert!(json.contains("\"mk_calls\": 3"));
        assert!(json.contains("\"hit_rate\": 0.25"));
        assert!(json.contains("\"machine\": null"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = SynthTrace::new().to_json();
        assert_eq!(json, "{\n  \"stages\": []\n}\n");
    }
}
