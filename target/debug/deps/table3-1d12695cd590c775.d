/root/repo/target/debug/deps/table3-1d12695cd590c775.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-1d12695cd590c775: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
