/root/repo/target/release/deps/polis_bdd-fd97ed5271ac6cae.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/release/deps/libpolis_bdd-fd97ed5271ac6cae.rlib: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/release/deps/libpolis_bdd-fd97ed5271ac6cae.rmeta: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
