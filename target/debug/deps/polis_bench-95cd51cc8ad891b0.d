/root/repo/target/debug/deps/polis_bench-95cd51cc8ad891b0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_bench-95cd51cc8ad891b0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
