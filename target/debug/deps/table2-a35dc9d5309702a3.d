/root/repo/target/debug/deps/table2-a35dc9d5309702a3.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a35dc9d5309702a3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
