/root/repo/target/debug/deps/prop-b1434c999e081173.d: crates/bdd/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-b1434c999e081173.rmeta: crates/bdd/tests/prop.rs Cargo.toml

crates/bdd/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
