/root/repo/target/debug/deps/synthesis-32a7f02cb3334782.d: crates/bench/benches/synthesis.rs

/root/repo/target/debug/deps/libsynthesis-32a7f02cb3334782.rmeta: crates/bench/benches/synthesis.rs

crates/bench/benches/synthesis.rs:
