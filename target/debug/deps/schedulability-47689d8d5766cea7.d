/root/repo/target/debug/deps/schedulability-47689d8d5766cea7.d: crates/bench/src/bin/schedulability.rs

/root/repo/target/debug/deps/schedulability-47689d8d5766cea7: crates/bench/src/bin/schedulability.rs

crates/bench/src/bin/schedulability.rs:
