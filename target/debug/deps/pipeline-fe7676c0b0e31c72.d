/root/repo/target/debug/deps/pipeline-fe7676c0b0e31c72.d: crates/core/tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-fe7676c0b0e31c72.rmeta: crates/core/tests/pipeline.rs

crates/core/tests/pipeline.rs:
