/root/repo/target/debug/deps/accuracy-875061495aa49acd.d: crates/estimate/tests/accuracy.rs

/root/repo/target/debug/deps/accuracy-875061495aa49acd: crates/estimate/tests/accuracy.rs

crates/estimate/tests/accuracy.rs:
