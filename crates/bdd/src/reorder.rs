//! Dynamic variable reordering by sifting (Rudell, ICCAD'93), as used in
//! Section III-B3b of the paper.
//!
//! The s-graph synthesis flow constrains reordering in two ways:
//!
//! * **precedence** — an output variable of the reactive function must not
//!   sift above any input in its support ("we must add the constraint that no
//!   output can sift before any input in its support");
//! * **groups** — the bits encoding one multi-valued CFSM variable must stay
//!   adjacent and keep their relative order, so that the s-graph can regroup
//!   them into a single multi-way TEST or ASSIGN.
//!
//! Both are expressed through [`SiftConfig`]. The implementation uses
//! in-place adjacent level swaps, so [`NodeRef`] handles remain valid across
//! reordering.

use crate::{Bdd, NodeRef, Var};

/// Constraints and options for [`Bdd::sift`].
#[derive(Debug, Clone, Default)]
pub struct SiftConfig {
    /// `(a, b)` requires `a` to stay *above* `b` (closer to the root) in the
    /// order. Used for "output after its support".
    pub precedence: Vec<(Var, Var)>,
    /// Each group is a list of variables that must remain contiguous, in the
    /// given top-to-bottom order. Variables not mentioned form singleton
    /// groups. Used for the bits of multi-valued variables.
    pub groups: Vec<Vec<Var>>,
    /// Maximum number of sift passes; sifting stops earlier when a pass
    /// yields no improvement. The paper uses a single pass
    /// ("single-pass dynamic variable ordering (sift)").
    pub max_passes: usize,
}

impl SiftConfig {
    /// A single unconstrained sifting pass.
    pub fn single_pass() -> SiftConfig {
        SiftConfig {
            max_passes: 1,
            ..SiftConfig::default()
        }
    }

    /// Sift until convergence (no improvement in a full pass).
    pub fn to_convergence() -> SiftConfig {
        SiftConfig {
            max_passes: usize::MAX,
            ..SiftConfig::default()
        }
    }
}

impl Bdd {
    /// Swaps the variables at `level` and `level + 1` in place.
    ///
    /// Node handles remain valid and keep denoting the same functions; the
    /// operation cache is invalidated. This is the primitive underlying
    /// [`Bdd::sift`]. During sifting (reference counting active), child
    /// nodes orphaned by the rewrite are reclaimed immediately through the
    /// free-list instead of leaking until the next [`Bdd::gc`].
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= num_vars()`.
    pub fn swap_levels(&mut self, level: usize) {
        assert!(
            level + 1 < self.num_vars(),
            "swap_levels: level {level} out of range"
        );
        self.swap_count += 1;
        let x = self.var_at(level).0;
        let y = self.var_at(level + 1).0;

        // Collect the x-nodes that depend on y; they must be rewritten.
        // Children of x-nodes are below level `level`, and only x-nodes are
        // rewritten, so collecting (lo, hi) up front is safe.
        let interacting: Vec<(NodeRef, NodeRef, NodeRef)> = self
            .unique_table(x)
            .iter()
            .filter(|&(lo, hi, _)| self.node(lo).0 == y || self.node(hi).0 == y)
            .map(|(lo, hi, n)| (n, lo, hi))
            .collect();
        for &(_, lo, hi) in &interacting {
            self.unique_table_mut(x).remove(lo, hi);
        }

        let reclaim = self.rc_is_active();
        for (n, lo, hi) in interacting {
            // Cofactors of the function at `n` over (x, y):
            // n = x ? hi : lo, so f_{x=a, y=b} = (a ? hi : lo)|_{y=b}.
            // The lo edge may carry the complement bit; push its parity onto
            // the extracted cofactors so they denote the true sub-functions.
            // The hi edge is regular by canonical form, so its raw children
            // are already the true cofactors — and f11 in particular stays
            // regular, which guarantees `new_hi` below is regular as
            // `rewrite_node` requires.
            let (lo_var, lo_lo, lo_hi) = self.node(lo);
            let (hi_var, hi_lo, hi_hi) = self.node(hi);
            let pl = lo.parity();
            let (f00, f01) = if lo_var == y {
                (lo_lo.xor_parity(pl), lo_hi.xor_parity(pl))
            } else {
                (lo, lo)
            };
            let (f10, f11) = if hi_var == y {
                (hi_lo, hi_hi)
            } else {
                (hi, hi)
            };
            // After the swap y is on top: n = y ? (x ? f11 : f01)
            //                                   : (x ? f10 : f00).
            // Both new children must exist before the old ones are released:
            // a cascade from `lo` could otherwise free a cofactor that
            // `new_hi` still needs.
            let new_lo = self.make_inner(x, f00, f10);
            let new_hi = self.make_inner(x, f01, f11);
            debug_assert_ne!(new_lo, new_hi, "swap produced a redundant node");
            if reclaim {
                self.rc_inc(new_lo);
                self.rc_inc(new_hi);
                self.rc_release(lo);
                self.rc_release(hi);
            }
            self.rewrite_node(n, y, new_lo, new_hi);
            let prev = self.unique_table_mut(y).insert(new_lo, new_hi, n);
            debug_assert!(prev.is_none(), "swap produced a duplicate y-node");
        }

        self.set_level(x, level as u32 + 1);
        self.set_level(y, level as u32);
        self.clear_cache();
    }

    /// Sifts variables to (heuristically) minimize the number of nodes
    /// reachable from `roots`, honoring the precedence and grouping
    /// constraints in `config`. Returns the resulting size.
    ///
    /// Handles in `roots` (and any other handle reachable from them) remain
    /// valid. Unreachable nodes are garbage-collected first.
    ///
    /// # Panics
    ///
    /// Panics if a group's variables are not currently contiguous and in the
    /// listed order, or if the constraints are contradictory (a precedence
    /// cycle between groups).
    pub fn sift(&mut self, roots: &[NodeRef], config: &SiftConfig) -> usize {
        self.gc(roots);
        if self.num_vars() < 2 {
            return self.size(roots);
        }
        let mut layout = BlockLayout::new(self, config);
        // After gc the arena holds exactly the nodes reachable from `roots`,
        // and swap-time reclamation keeps it that way, so sifting can
        // measure size as the O(1) allocation count instead of traversing.
        self.rc_begin(roots);
        let mut best = self.allocated_nodes();
        let passes = config.max_passes.max(1);
        for _ in 0..passes {
            let before = best;
            best = self.sift_pass(&mut layout, best);
            if best >= before {
                break;
            }
        }
        self.rc_end();
        // Sifting rewrites nodes in place; in debug builds, re-verify the
        // whole-arena invariants (no complemented hi edges, unique-table
        // consistency, free-list tiling) before handing handles back.
        if cfg!(debug_assertions) {
            self.check_canonical();
        }
        best
    }

    /// One sifting pass over every block, largest first.
    fn sift_pass(&mut self, layout: &mut BlockLayout, mut best: usize) -> usize {
        // Per-variable live node counts (to choose the sift order) are just
        // the unique-table sizes: reclamation keeps the tables exact.
        let per_var: Vec<usize> = (0..self.num_vars())
            .map(|v| self.unique_table(v as u32).len())
            .collect();
        let mut block_weight: Vec<(usize, usize)> = (0..layout.num_blocks())
            .map(|b| {
                let w = layout.block_vars[b]
                    .iter()
                    .map(|&v| per_var[v as usize])
                    .sum::<usize>();
                (b, w)
            })
            .collect();
        block_weight.sort_by_key(|&(_, w)| std::cmp::Reverse(w));

        for (block, weight) in block_weight {
            if weight == 0 {
                continue;
            }
            best = self.sift_block(layout, block, best);
        }
        best
    }

    /// Moves one block through its feasible window and leaves it at the best
    /// position found.
    fn sift_block(&mut self, layout: &mut BlockLayout, block: usize, mut best: usize) -> usize {
        let start = layout.position(block);
        let (lb, ub) = layout.feasible_window(block);
        debug_assert!((lb..=ub).contains(&start));
        let mut best_pos = start;

        // Walk down to the upper bound, then up to the lower bound,
        // measuring after each single-position move.
        let mut pos = start;
        while pos < ub {
            layout.swap_with_next(self, pos);
            pos += 1;
            let s = self.allocated_nodes();
            if s < best {
                best = s;
                best_pos = pos;
            }
        }
        while pos > lb {
            layout.swap_with_next(self, pos - 1);
            pos -= 1;
            let s = self.allocated_nodes();
            if s < best {
                best = s;
                best_pos = pos;
            }
        }
        // Return to the best position seen.
        while pos < best_pos {
            layout.swap_with_next(self, pos);
            pos += 1;
        }
        best
    }
}

/// The arrangement of variables into contiguous blocks during sifting.
struct BlockLayout {
    /// `block -> vars top-to-bottom` (fixed internal order).
    block_vars: Vec<Vec<u32>>,
    /// Current block sequence, root-most first.
    seq: Vec<usize>,
    /// `precedes[a][b]` — block `a` must stay above block `b`.
    precedes: Vec<Vec<bool>>,
}

impl BlockLayout {
    fn new(bdd: &Bdd, config: &SiftConfig) -> BlockLayout {
        let nvars = bdd.num_vars();
        let mut group_of = vec![usize::MAX; nvars];
        let mut block_vars: Vec<Vec<u32>> = Vec::new();
        for group in &config.groups {
            let id = block_vars.len();
            let mut vars = Vec::new();
            for (i, &v) in group.iter().enumerate() {
                assert!(
                    group_of[v.index()] == usize::MAX,
                    "variable {v} appears in two groups"
                );
                group_of[v.index()] = id;
                if i > 0 {
                    assert_eq!(
                        bdd.level(v),
                        bdd.level(group[i - 1]) + 1,
                        "group variables must be contiguous and in order before sifting"
                    );
                }
                vars.push(v.0);
            }
            assert!(!vars.is_empty(), "empty variable group");
            block_vars.push(vars);
        }
        for (v, slot) in group_of.iter_mut().enumerate() {
            if *slot == usize::MAX {
                *slot = block_vars.len();
                block_vars.push(vec![v as u32]);
            }
        }
        // Sequence: blocks ordered by the level of their first variable.
        let mut seq: Vec<usize> = (0..block_vars.len()).collect();
        seq.sort_by_key(|&b| bdd.level(Var(block_vars[b][0])));

        let m = block_vars.len();
        let mut precedes = vec![vec![false; m]; m];
        for &(a, b) in &config.precedence {
            let (ba, bb) = (group_of[a.index()], group_of[b.index()]);
            if ba != bb {
                precedes[ba][bb] = true;
            }
        }
        let layout = BlockLayout {
            block_vars,
            seq,
            precedes,
        };
        layout.check_consistent();
        layout
    }

    fn check_consistent(&self) {
        for (i, &a) in self.seq.iter().enumerate() {
            for &b in &self.seq[..i] {
                assert!(
                    !self.precedes[a][b],
                    "initial order violates a sifting precedence constraint \
                     (or the constraints are cyclic)"
                );
            }
        }
    }

    fn num_blocks(&self) -> usize {
        self.seq.len()
    }

    fn position(&self, block: usize) -> usize {
        self.seq.iter().position(|&b| b == block).expect("block")
    }

    fn block_len(&self, block: usize) -> usize {
        self.block_vars[block].len()
    }

    fn start_level(&self, pos: usize) -> usize {
        self.seq[..pos].iter().map(|&b| self.block_len(b)).sum()
    }

    /// Feasible sequence positions `(lb, ub)` for `block` given the current
    /// positions of every other block.
    fn feasible_window(&self, block: usize) -> (usize, usize) {
        let pos = self.position(block);
        let mut lb = 0;
        let mut ub = self.seq.len() - 1;
        for (i, &other) in self.seq.iter().enumerate() {
            if other == block {
                continue;
            }
            if self.precedes[other][block] && i < pos {
                lb = lb.max(i + 1);
            }
            if self.precedes[block][other] && i > pos {
                ub = ub.min(i - 1);
            }
        }
        (lb, ub)
    }

    /// Swaps the blocks at sequence positions `pos` and `pos + 1` by
    /// repeated adjacent level swaps, preserving both blocks' internal
    /// orders.
    fn swap_with_next(&mut self, bdd: &mut Bdd, pos: usize) {
        let a = self.block_len(self.seq[pos]);
        let b = self.block_len(self.seq[pos + 1]);
        let t = self.start_level(pos);
        // Bubble each variable of the upper block, bottom-most first, down
        // past the lower block.
        for k in 1..=a {
            let from = t + a - k;
            for j in 0..b {
                bdd.swap_levels(from + j);
            }
        }
        self.seq.swap(pos, pos + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds f = x0·x1 + x2·x3 + x4·x5 under an interleaved-bad order
    /// x0,x2,x4,x1,x3,x5 — the classic example where sifting helps.
    fn bad_order_function() -> (Bdd, NodeRef, Vec<Var>) {
        let mut b = Bdd::new();
        // declaration order = initial level order
        let x0 = b.new_var("x0");
        let x2 = b.new_var("x2");
        let x4 = b.new_var("x4");
        let x1 = b.new_var("x1");
        let x3 = b.new_var("x3");
        let x5 = b.new_var("x5");
        let pairs = [(x0, x1), (x2, x3), (x4, x5)];
        let mut f = NodeRef::FALSE;
        for (a, c) in pairs {
            let fa = b.var(a);
            let fc = b.var(c);
            let t = b.and(fa, fc);
            f = b.or(f, t);
        }
        (b, f, vec![x0, x1, x2, x3, x4, x5])
    }

    /// A reference Boolean function evaluated under a variable assignment.
    type Spec<'a> = &'a dyn Fn(&dyn Fn(Var) -> bool) -> bool;

    fn functions_equal(b: &Bdd, f: NodeRef, g: Spec<'_>) -> bool {
        let n = b.num_vars();
        (0..1u32 << n).all(|bits| {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            b.eval(f, assign) == g(&assign)
        })
    }

    #[test]
    fn swap_preserves_function() {
        let (mut b, f, vars) = bad_order_function();
        let spec = |assign: &dyn Fn(Var) -> bool| {
            (assign(vars[0]) && assign(vars[1]))
                || (assign(vars[2]) && assign(vars[3]))
                || (assign(vars[4]) && assign(vars[5]))
        };
        for l in 0..b.num_vars() - 1 {
            b.swap_levels(l);
            assert!(functions_equal(&b, f, &spec), "after swap at level {l}");
        }
    }

    #[test]
    fn double_swap_is_identity_on_order() {
        let (mut b, _f, _) = bad_order_function();
        let before = b.order();
        b.swap_levels(2);
        b.swap_levels(2);
        assert_eq!(b.order(), before);
    }

    #[test]
    fn sifting_shrinks_bad_order() {
        let (mut b, f, vars) = bad_order_function();
        let before = b.size(&[f]);
        let after = b.sift(&[f], &SiftConfig::to_convergence());
        assert!(after < before, "sift: {before} -> {after}");
        // Optimal size for the 3-pair function is 6 nodes.
        assert_eq!(after, 6);
        let spec = |assign: &dyn Fn(Var) -> bool| {
            (assign(vars[0]) && assign(vars[1]))
                || (assign(vars[2]) && assign(vars[3]))
                || (assign(vars[4]) && assign(vars[5]))
        };
        assert!(functions_equal(&b, f, &spec));
    }

    #[test]
    fn precedence_constraint_is_honored() {
        let (mut b, f, vars) = bad_order_function();
        // Force x5 to stay below x0 and x2 (as if it were an "output").
        let config = SiftConfig {
            precedence: vec![(vars[0], vars[5]), (vars[2], vars[5])],
            max_passes: 4,
            ..SiftConfig::default()
        };
        b.sift(&[f], &config);
        assert!(b.level(vars[0]) < b.level(vars[5]));
        assert!(b.level(vars[2]) < b.level(vars[5]));
    }

    #[test]
    fn groups_stay_contiguous_and_ordered() {
        let (mut b, f, _) = bad_order_function();
        // Group the originally-adjacent levels 1..=2 (vars x2, x4).
        let g1 = b.var_at(1);
        let g2 = b.var_at(2);
        let config = SiftConfig {
            groups: vec![vec![g1, g2]],
            max_passes: 4,
            ..SiftConfig::default()
        };
        b.sift(&[f], &config);
        assert_eq!(
            b.level(g2),
            b.level(g1) + 1,
            "group must remain contiguous in order"
        );
    }

    #[test]
    fn sift_preserves_other_roots() {
        let mut b = Bdd::new();
        let x = b.new_var("x");
        let y = b.new_var("y");
        let z = b.new_var("z");
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let f = b.and(fx, fy);
        let g = b.xor(fy, fz);
        b.sift(&[f, g], &SiftConfig::to_convergence());
        for bits in 0..8u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            assert_eq!(b.eval(f, assign), assign(x) && assign(y));
            assert_eq!(b.eval(g, assign), assign(y) ^ assign(z));
        }
    }

    #[test]
    #[should_panic(expected = "precedence constraint")]
    fn cyclic_constraints_panic() {
        let mut b = Bdd::new();
        let x = b.new_var("x");
        let y = b.new_var("y");
        let fx = b.var(x);
        let fy = b.var(y);
        let f = b.and(fx, fy);
        let config = SiftConfig {
            precedence: vec![(x, y), (y, x)],
            max_passes: 1,
            ..SiftConfig::default()
        };
        b.sift(&[f], &config);
    }

    #[test]
    fn swap_with_shared_subgraphs() {
        // Regression-style test: functions sharing nodes across a swapped
        // boundary must stay canonical and correct.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..4).map(|i| b.new_var(format!("v{i}"))).collect();
        let lits: Vec<NodeRef> = vars.iter().map(|&v| b.var(v)).collect();
        let t01 = b.and(lits[0], lits[1]);
        let t23 = b.and(lits[2], lits[3]);
        let f = b.or(t01, t23);
        let g = b.xor(t01, lits[3]);
        b.swap_levels(1);
        b.swap_levels(0);
        b.swap_levels(2);
        for bits in 0..16u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            let a: Vec<bool> = (0..4).map(|i| assign(vars[i])).collect();
            assert_eq!(b.eval(f, assign), (a[0] && a[1]) || (a[2] && a[3]));
            assert_eq!(b.eval(g, assign), (a[0] && a[1]) ^ a[3]);
        }
        // Re-doing an operation after swaps must still hash-cons correctly.
        let t01b = b.and(lits[0], lits[1]);
        assert_eq!(b.size(&[t01, t01b]), b.size(&[t01]));
    }
}
