//! Static path analysis of assembled object code.
//!
//! The "exact measurement ... performed by analyzing the compiled object
//! code" of Table I: minimum and maximum cycles over all control paths of
//! the routine. Compiled s-graphs are acyclic, so both bounds are exact
//! single-pass dynamic programs over the instruction CFG (the paper uses
//! Dijkstra for the minimum and PERT longest path for the maximum on the
//! s-graph side; on a DAG both reduce to the same DP).

use crate::inst::{Inst, VmProgram};
use crate::profile::ObjectCode;

/// Exact cycle bounds over all paths of a routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathBounds {
    /// Fewest cycles any reaction can take.
    pub min_cycles: u64,
    /// Most cycles any reaction can take.
    pub max_cycles: u64,
}

/// Computes exact min/max cycle bounds of the routine.
///
/// # Panics
///
/// Panics if the instruction CFG contains a cycle — impossible for
/// programs produced by [`crate::compile`] from (acyclic) s-graphs.
pub fn analyze(prog: &VmProgram, obj: &ObjectCode) -> PathBounds {
    let n = prog.insts().len();
    let mut memo: Vec<Option<(u64, u64)>> = vec![None; n];
    let mut visiting = vec![false; n];
    let (min, max) = bounds(prog, obj, 0, &mut memo, &mut visiting);
    PathBounds {
        min_cycles: min,
        max_cycles: max,
    }
}

fn bounds(
    prog: &VmProgram,
    obj: &ObjectCode,
    pc: usize,
    memo: &mut Vec<Option<(u64, u64)>>,
    visiting: &mut Vec<bool>,
) -> (u64, u64) {
    if let Some(b) = memo[pc] {
        return b;
    }
    assert!(!visiting[pc], "object code CFG has a cycle at {pc}");
    visiting[pc] = true;
    let cost = obj.cost(pc);
    let base = u64::from(cost.cycles);
    let b = match &prog.insts()[pc] {
        Inst::Return => (base, base),
        Inst::Jump(t) => {
            let (mn, mx) = bounds(prog, obj, *t, memo, visiting);
            (base + mn, base + mx)
        }
        Inst::Branch { target, .. } => {
            let taken = u64::from(cost.taken_extra);
            let (tmn, tmx) = bounds(prog, obj, *target, memo, visiting);
            let (fmn, fmx) = bounds(prog, obj, pc + 1, memo, visiting);
            (base + (taken + tmn).min(fmn), base + (taken + tmx).max(fmx))
        }
        Inst::JumpTable(targets) => {
            let mut mn = u64::MAX;
            let mut mx = 0;
            for &t in targets {
                let (a, b) = bounds(prog, obj, t, memo, visiting);
                mn = mn.min(a);
                mx = mx.max(b);
            }
            (base + mn, base + mx)
        }
        _ => {
            let (mn, mx) = bounds(prog, obj, pc + 1, memo, visiting);
            (base + mn, base + mx)
        }
    };
    visiting[pc] = false;
    memo[pc] = Some(b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{SlotInfo, SlotKind};
    use crate::profile::{assemble, Profile};
    use crate::{run_reaction, CollectingHost, VmMemory};
    use polis_expr::Type;

    fn program(insts: Vec<Inst>) -> VmProgram {
        VmProgram {
            name: "t".into(),
            insts,
            slots: vec![SlotInfo {
                name: "x".into(),
                ty: Type::uint(8),
                kind: SlotKind::State,
                init: 0,
            }],
            num_inputs: 1,
            num_outputs: 1,
            out_types: vec![None],
        }
    }

    #[test]
    fn straight_line_bounds_are_equal() {
        let p = program(vec![Inst::PushImm(1), Inst::StoreVar(0), Inst::Return]);
        let obj = assemble(&p, Profile::Mcu8);
        let b = analyze(&p, &obj);
        assert_eq!(b.min_cycles, b.max_cycles);
        // And equal to the dynamic cost.
        let mut mem = VmMemory::new(&p);
        let mut host = CollectingHost::default();
        let stats = run_reaction(&p, &obj, &mut mem, &mut host).unwrap();
        assert_eq!(stats.cycles, b.max_cycles);
    }

    #[test]
    fn branch_spreads_bounds_and_contains_dynamics() {
        let p = program(vec![
            Inst::Detect(0),
            Inst::Branch {
                when: true,
                target: 3,
            },
            Inst::Return,
            Inst::EmitPure(0),
            Inst::Consume,
            Inst::Return,
        ]);
        let obj = assemble(&p, Profile::Mcu8);
        let b = analyze(&p, &obj);
        assert!(b.min_cycles < b.max_cycles);
        for present in [false, true] {
            let mut mem = VmMemory::new(&p);
            let mut host = CollectingHost::new(vec![present]);
            let stats = run_reaction(&p, &obj, &mut mem, &mut host).unwrap();
            assert!(
                (b.min_cycles..=b.max_cycles).contains(&stats.cycles),
                "dynamic {} outside [{}, {}]",
                stats.cycles,
                b.min_cycles,
                b.max_cycles
            );
        }
    }

    #[test]
    fn jump_table_bounds_cover_all_arms() {
        let p = program(vec![
            Inst::PushVar(0),
            Inst::JumpTable(vec![2, 4]),
            Inst::Return,      // arm 0: cheap
            Inst::EmitPure(0), // unreachable filler
            Inst::EmitPure(0), // arm 1: expensive
            Inst::Consume,
            Inst::Return,
        ]);
        let obj = assemble(&p, Profile::Mcu8);
        let b = analyze(&p, &obj);
        for v in [0i64, 1] {
            let mut mem = VmMemory::new(&p);
            mem.set(0, v);
            let mut host = CollectingHost::default();
            let stats = run_reaction(&p, &obj, &mut mem, &mut host).unwrap();
            assert!((b.min_cycles..=b.max_cycles).contains(&stats.cycles));
        }
    }
}
