//! Expression evaluation against a variable environment.

use crate::{BinOp, Expr, TypeError, UnOp, Value};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A source of variable values during evaluation.
///
/// Implemented by the CFSM simulator (reading event values and state
/// variables) and by [`MapEnv`] for tests and stand-alone use.
pub trait Env {
    /// Returns the current value of `name`, or `None` if unbound.
    fn get(&self, name: &str) -> Option<Value>;
}

/// A simple map-backed environment.
///
/// # Examples
///
/// ```
/// use polis_expr::{Expr, MapEnv, Value};
/// let mut env = MapEnv::new();
/// env.set("x", Value::from_i64(10));
/// assert_eq!(Expr::var("x").add(Expr::int(5)).eval(&env).unwrap(), Value::from_i64(15));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapEnv {
    vars: BTreeMap<String, Value>,
}

impl MapEnv {
    /// Creates an empty environment.
    pub fn new() -> MapEnv {
        MapEnv::default()
    }

    /// Binds `name` to `value`, returning any previous binding.
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> Option<Value> {
        self.vars.insert(name.into(), value)
    }

    /// Iterates over the bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl Env for MapEnv {
    fn get(&self, name: &str) -> Option<Value> {
        self.vars.get(name).copied()
    }
}

impl<E: Env + ?Sized> Env for &E {
    fn get(&self, name: &str) -> Option<Value> {
        (**self).get(name)
    }
}

impl FromIterator<(String, Value)> for MapEnv {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> MapEnv {
        MapEnv {
            vars: iter.into_iter().collect(),
        }
    }
}

/// An error produced while evaluating an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalExprError {
    /// A referenced variable has no binding in the environment.
    UnboundVar {
        /// The unbound name.
        name: String,
    },
    /// An operand had the wrong kind (boolean vs. integer).
    Type(TypeError),
}

impl fmt::Display for EvalExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalExprError::UnboundVar { name } => write!(f, "unbound variable `{name}`"),
            EvalExprError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl Error for EvalExprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalExprError::Type(e) => Some(e),
            EvalExprError::UnboundVar { .. } => None,
        }
    }
}

impl From<TypeError> for EvalExprError {
    fn from(e: TypeError) -> EvalExprError {
        EvalExprError::Type(e)
    }
}

impl Expr {
    /// Evaluates the expression in `env`.
    ///
    /// Arithmetic is performed in 64-bit precision; the *variable* width is
    /// applied by the assignment that consumes the result, matching the C
    /// implementation where expression temporaries are machine-width.
    ///
    /// # Errors
    ///
    /// Returns [`EvalExprError::UnboundVar`] when a variable is missing from
    /// `env` and [`EvalExprError::Type`] on boolean/integer confusion.
    pub fn eval(&self, env: &dyn Env) -> Result<Value, EvalExprError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Var(name) => env
                .get(name)
                .ok_or_else(|| EvalExprError::UnboundVar { name: name.clone() }),
            Expr::Unary(op, a) => {
                let av = a.eval(env)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!av.as_bool()?)),
                    UnOp::Neg => Ok(Value::Int(av.as_int()?.wrapping_neg())),
                }
            }
            Expr::Binary(op, a, b) => {
                let av = a.eval(env)?;
                let bv = b.eval(env)?;
                eval_binop(*op, av, bv)
            }
            Expr::Ite(c, t, e) => {
                if c.eval(env)?.as_bool()? {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
        }
    }
}

fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, EvalExprError> {
    if op.is_logical() {
        let (x, y) = (a.as_bool()?, b.as_bool()?);
        return Ok(Value::Bool(match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            BinOp::Xor => x ^ y,
            _ => unreachable!(),
        }));
    }
    if matches!(op, BinOp::Eq | BinOp::Ne) {
        // Equality is defined on both kinds, but only homogeneously.
        let r = match (a, b) {
            (Value::Bool(x), Value::Bool(y)) => x == y,
            _ => a.as_int()? == b.as_int()?,
        };
        return Ok(Value::Bool(if op == BinOp::Eq { r } else { !r }));
    }
    let (x, y) = (a.as_int()?, b.as_int()?);
    Ok(match op {
        BinOp::Add => Value::Int(x.wrapping_add(y)),
        BinOp::Sub => Value::Int(x.wrapping_sub(y)),
        BinOp::Mul => Value::Int(x.wrapping_mul(y)),
        // Safe division per the paper: a zero divisor yields zero.
        BinOp::Div => Value::Int(if y == 0 { 0 } else { x.wrapping_div(y) }),
        BinOp::Rem => Value::Int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
        BinOp::Lt => Value::Bool(x < y),
        BinOp::Le => Value::Bool(x <= y),
        BinOp::Gt => Value::Bool(x > y),
        BinOp::Ge => Value::Bool(x >= y),
        BinOp::Min => Value::Int(x.min(y)),
        BinOp::Max => Value::Int(x.max(y)),
        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, Value)]) -> MapEnv {
        pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic() {
        let e = env(&[("x", Value::Int(7)), ("y", Value::Int(3))]);
        assert_eq!(
            Expr::var("x").add(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            Expr::var("x").sub(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::var("x").mul(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(21)
        );
        assert_eq!(
            Expr::var("x").div(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            Expr::var("x").rem(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::var("x").min(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Expr::var("x").max(Expr::var("y")).eval(&e).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn safe_division_by_zero_yields_zero() {
        let e = env(&[("x", Value::Int(5))]);
        assert_eq!(
            Expr::var("x").div(Expr::int(0)).eval(&e).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            Expr::var("x").rem(Expr::int(0)).eval(&e).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn relational_operators() {
        let e = env(&[("x", Value::Int(2)), ("y", Value::Int(5))]);
        for (expr, want) in [
            (Expr::var("x").lt(Expr::var("y")), true),
            (Expr::var("x").le(Expr::var("y")), true),
            (Expr::var("x").gt(Expr::var("y")), false),
            (Expr::var("x").ge(Expr::var("y")), false),
            (Expr::var("x").eq(Expr::var("y")), false),
            (Expr::var("x").ne(Expr::var("y")), true),
        ] {
            assert_eq!(expr.eval(&e).unwrap(), Value::Bool(want), "{expr:?}");
        }
    }

    #[test]
    fn boolean_equality_is_homogeneous() {
        let e = env(&[("p", Value::Bool(true)), ("q", Value::Bool(true))]);
        assert_eq!(
            Expr::var("p").eq(Expr::var("q")).eval(&e).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn logic_and_ite() {
        let e = env(&[("p", Value::Bool(true)), ("q", Value::Bool(false))]);
        assert_eq!(
            Expr::var("p").and(Expr::var("q")).eval(&e).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::var("p").or(Expr::var("q")).eval(&e).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::var("p").xor(Expr::var("q")).eval(&e).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::ite(Expr::var("q"), Expr::int(1), Expr::int(2))
                .eval(&e)
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(Expr::var("p").not().eval(&e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = MapEnv::new();
        let err = Expr::var("missing").eval(&e).unwrap_err();
        assert_eq!(
            err,
            EvalExprError::UnboundVar {
                name: "missing".into()
            }
        );
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn kind_confusion_is_an_error() {
        let e = env(&[("p", Value::Bool(true))]);
        assert!(matches!(
            Expr::var("p").add(Expr::int(1)).eval(&e),
            Err(EvalExprError::Type(_))
        ));
        let e2 = env(&[("x", Value::Int(1))]);
        assert!(matches!(
            Expr::var("x").and(Expr::bool(true)).eval(&e2),
            Err(EvalExprError::Type(_))
        ));
    }

    #[test]
    fn neg_wraps() {
        let e = env(&[("x", Value::Int(i64::MIN))]);
        assert_eq!(Expr::var("x").neg().eval(&e).unwrap(), Value::Int(i64::MIN));
    }
}
