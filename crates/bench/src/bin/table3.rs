//! **Table III** — Comparison of POLIS software synthesis with the
//! Esterel compilation styles, on the whole dashboard and a large
//! simulation stream (the paper ran on a DEC ALPHA with `pixie`; we use
//! the `Risc32` profile).
//!
//! Rows:
//!
//! * `POLIS` — per-CFSM BDD decision graphs, RTOS-scheduled network;
//! * `ESTEREL` — the network composed into a single FSM (v3 style), then
//!   synthesized the same way: fast per reaction (no internal events, no
//!   scheduling), large code;
//! * `ESTEREL_OPT` — the single FSM implemented as the TEST-free ITE
//!   chain (the v5 Boolean-circuit style); the paper: "the possible saving
//!   in code size due to the better sharing opportunities offered by
//!   Boolean functions in this case does not help".

use polis_bench::dashboard_stimulus;
use polis_cfsm::{compose, Network, OrderScheme, ReactiveFn};
use polis_core::{synthesize_with_params, workloads, SynthesisOptions};
use polis_estimate::calibrate;
use polis_rtos::{RtosConfig, Simulator};
use polis_sgraph::ite_chain;
use polis_vm::Profile;
use std::time::Instant;

fn main() {
    let net = workloads::dashboard();
    let stim = dashboard_stimulus(3_000);
    let params = calibrate(Profile::Risc32);
    let opts = SynthesisOptions {
        profile: Profile::Risc32,
        ..SynthesisOptions::default()
    };
    let rtos = RtosConfig {
        profile: Profile::Risc32,
        ..RtosConfig::default()
    };

    println!(
        "Table III: POLIS vs ESTEREL vs ESTEREL_OPT (dashboard, Risc32, {} stimuli)\n",
        stim.len()
    );
    println!(
        "| {:<12} | {:>12} | {:>9} | {:>12} |",
        "row", "busy cycles", "size[B]", "synthesis"
    );
    println!("|{}|", "-".repeat(56));

    // POLIS: per-module synthesis + RTOS co-simulation.
    let t0 = Instant::now();
    let polis_parts: Vec<_> = net
        .cfsms()
        .iter()
        .map(|m| synthesize_with_params(m, &opts, &params))
        .collect();
    let polis_time = t0.elapsed();
    let polis_size: u64 = polis_parts.iter().map(|p| p.measured.size_bytes).sum();
    let mut sim = Simulator::build(&net, rtos.clone());
    sim.run(&stim);
    let polis_cycles = sim.stats().busy_cycles;
    println!(
        "| {:<12} | {:>12} | {:>9} | {:>10.1?} |",
        "POLIS", polis_cycles, polis_size, polis_time
    );

    // ESTEREL: the composed single FSM.
    let t0 = Instant::now();
    let product = compose::compose(&net).expect("dashboard composes");
    let est = synthesize_with_params(&product, &opts, &params);
    let esterel_time = t0.elapsed();
    let product_net = Network::new("dash1", vec![product.clone()]).unwrap();
    let mut sim = Simulator::build(&product_net, rtos.clone());
    sim.run(&stim);
    let esterel_cycles = sim.stats().busy_cycles;
    println!(
        "| {:<12} | {:>12} | {:>9} | {:>10.1?} |",
        "ESTEREL", esterel_cycles, est.measured.size_bytes, esterel_time
    );

    // ESTEREL_OPT: the composed FSM as an ITE chain.
    let t0 = Instant::now();
    let mut rf = ReactiveFn::build(&product);
    rf.sift(OrderScheme::OutputsAfterSupport);
    let chain = ite_chain(&mut rf);
    let prog = polis_vm::compile(&product, &chain, opts.buffering);
    let obj = polis_vm::assemble(&prog, Profile::Risc32);
    let opt_time = t0.elapsed();
    let mut sim = Simulator::with_graphs(&product_net, vec![chain], rtos);
    sim.run(&stim);
    let opt_cycles = sim.stats().busy_cycles;
    println!(
        "| {:<12} | {:>12} | {:>9} | {:>10.1?} |",
        "ESTEREL_OPT",
        opt_cycles,
        obj.size_bytes(),
        opt_time
    );

    println!("\nshape checks:");
    let check =
        |label: &str, ok: bool| println!("  {label}: {}", if ok { "HOLDS" } else { "VIOLATED" });
    check(
        "single FSM reacts in fewer cycles than the scheduled network",
        esterel_cycles < polis_cycles,
    );
    check(
        "single FSM costs more code than the sum of POLIS modules",
        est.measured.size_bytes > polis_size,
    );
    check(
        "ESTEREL_OPT (Boolean-circuit/ITE) does not beat the decision graph in size",
        u64::from(obj.size_bytes()) >= est.measured.size_bytes,
    );
    check(
        "ESTEREL_OPT is not faster than the decision-graph single FSM",
        opt_cycles >= esterel_cycles,
    );
}
