/root/repo/target/debug/examples/dashboard-752690c7560710b2.d: examples/dashboard.rs

/root/repo/target/debug/examples/dashboard-752690c7560710b2: examples/dashboard.rs

examples/dashboard.rs:
