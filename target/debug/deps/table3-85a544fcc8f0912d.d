/root/repo/target/debug/deps/table3-85a544fcc8f0912d.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-85a544fcc8f0912d.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
