/root/repo/target/debug/deps/polis_codegen-942e56d225f87e9e.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/debug/deps/libpolis_codegen-942e56d225f87e9e.rlib: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/debug/deps/libpolis_codegen-942e56d225f87e9e.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/two_level.rs:
