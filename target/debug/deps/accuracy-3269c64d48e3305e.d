/root/repo/target/debug/deps/accuracy-3269c64d48e3305e.d: crates/estimate/tests/accuracy.rs

/root/repo/target/debug/deps/libaccuracy-3269c64d48e3305e.rmeta: crates/estimate/tests/accuracy.rs

crates/estimate/tests/accuracy.rs:
