/root/repo/target/debug/deps/polis_vm-a2e0cc7a284447d2.d: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_vm-a2e0cc7a284447d2.rmeta: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/analyze.rs:
crates/vm/src/compile.rs:
crates/vm/src/exec.rs:
crates/vm/src/inst.rs:
crates/vm/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
