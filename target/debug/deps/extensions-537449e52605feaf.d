/root/repo/target/debug/deps/extensions-537449e52605feaf.d: crates/rtos/tests/extensions.rs

/root/repo/target/debug/deps/libextensions-537449e52605feaf.rmeta: crates/rtos/tests/extensions.rs

crates/rtos/tests/extensions.rs:
