//! Property-style tests: the BDD package against brute-force truth tables,
//! over deterministically seeded random expressions (offline-safe, no
//! external property-testing framework).

use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, NodeRef, Var};
use polis_core::random::Rng;

/// A random Boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum BoolExpr {
    Const(bool),
    Var(usize),
    Not(Box<BoolExpr>),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Xor(Box<BoolExpr>, Box<BoolExpr>),
    Ite(Box<BoolExpr>, Box<BoolExpr>, Box<BoolExpr>),
}

const NVARS: usize = 6;
const CASES: u64 = 64;

/// Depth-bounded random expression, mirroring the old proptest strategy.
fn gen_expr(rng: &mut Rng, depth: usize) -> BoolExpr {
    if depth == 0 || rng.chance(0.25) {
        return if rng.chance(0.3) {
            BoolExpr::Const(rng.bool())
        } else {
            BoolExpr::Var(rng.usize(0..NVARS))
        };
    }
    match rng.usize(0..5) {
        0 => BoolExpr::Not(Box::new(gen_expr(rng, depth - 1))),
        1 => BoolExpr::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        2 => BoolExpr::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        3 => BoolExpr::Xor(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => BoolExpr::Ite(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

/// One seeded expression per test case, varied in depth.
fn case_expr(case: u64) -> BoolExpr {
    let mut rng = Rng::new(0xb00_1e5 ^ case.wrapping_mul(0x9e37));
    let depth = 1 + (case % 5) as usize;
    gen_expr(&mut rng, depth)
}

impl BoolExpr {
    fn eval(&self, bits: u32) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(i) => bits & (1 << i) != 0,
            BoolExpr::Not(a) => !a.eval(bits),
            BoolExpr::And(a, b) => a.eval(bits) && b.eval(bits),
            BoolExpr::Or(a, b) => a.eval(bits) || b.eval(bits),
            BoolExpr::Xor(a, b) => a.eval(bits) ^ b.eval(bits),
            BoolExpr::Ite(c, t, e) => {
                if c.eval(bits) {
                    t.eval(bits)
                } else {
                    e.eval(bits)
                }
            }
        }
    }

    fn build(&self, bdd: &mut Bdd, vars: &[Var]) -> NodeRef {
        match self {
            BoolExpr::Const(b) => bdd.constant(*b),
            BoolExpr::Var(i) => bdd.var(vars[*i]),
            BoolExpr::Not(a) => {
                let fa = a.build(bdd, vars);
                bdd.not(fa)
            }
            BoolExpr::And(a, b) => {
                let fa = a.build(bdd, vars);
                let fb = b.build(bdd, vars);
                bdd.and(fa, fb)
            }
            BoolExpr::Or(a, b) => {
                let fa = a.build(bdd, vars);
                let fb = b.build(bdd, vars);
                bdd.or(fa, fb)
            }
            BoolExpr::Xor(a, b) => {
                let fa = a.build(bdd, vars);
                let fb = b.build(bdd, vars);
                bdd.xor(fa, fb)
            }
            BoolExpr::Ite(c, t, e) => {
                let fc = c.build(bdd, vars);
                let ft = t.build(bdd, vars);
                let fe = e.build(bdd, vars);
                bdd.ite(fc, ft, fe)
            }
        }
    }
}

fn setup(expr: &BoolExpr) -> (Bdd, Vec<Var>, NodeRef) {
    let mut bdd = Bdd::new();
    let vars: Vec<Var> = (0..NVARS).map(|i| bdd.new_var(format!("x{i}"))).collect();
    let f = expr.build(&mut bdd, &vars);
    (bdd, vars, f)
}

#[test]
fn bdd_matches_truth_table() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (bdd, vars, f) = setup(&expr);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            assert_eq!(
                bdd.eval(f, assign),
                expr.eval(bits),
                "case={case} bits={bits:06b}"
            );
        }
    }
}

#[test]
fn sat_count_matches_truth_table() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (bdd, _vars, f) = setup(&expr);
        let brute = (0..1u32 << NVARS).filter(|&b| expr.eval(b)).count() as u128;
        assert_eq!(bdd.sat_count(f), brute, "case={case}");
    }
}

#[test]
fn restrict_matches_substitution() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let mut rng = Rng::new(case);
        let vi = rng.usize(0..NVARS);
        let val = rng.bool();
        let (mut bdd, vars, f) = setup(&expr);
        let r = bdd.restrict(f, vars[vi], val);
        // The restricted function no longer depends on the variable.
        assert!(!bdd.support(r).contains(&vars[vi]), "case={case}");
        for bits in 0..1u32 << NVARS {
            let forced = if val {
                bits | (1 << vi)
            } else {
                bits & !(1 << vi)
            };
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            assert_eq!(bdd.eval(r, assign), expr.eval(forced), "case={case}");
        }
    }
}

#[test]
fn exists_is_or_of_cofactors() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let vi = (case as usize).wrapping_mul(7) % NVARS;
        let (mut bdd, vars, f) = setup(&expr);
        let e = bdd.exists(f, vars[vi]);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            let want = expr.eval(bits | (1 << vi)) || expr.eval(bits & !(1 << vi));
            assert_eq!(bdd.eval(e, assign), want, "case={case}");
        }
    }
}

#[test]
fn sifting_preserves_function_and_never_grows() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (mut bdd, vars, f) = setup(&expr);
        bdd.gc(&[f]);
        let before = bdd.size(&[f]);
        let after = bdd.sift(&[f], &SiftConfig::to_convergence());
        assert!(
            after <= before,
            "case={case}: sift grew the BDD: {before} -> {after}"
        );
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            assert_eq!(bdd.eval(f, assign), expr.eval(bits), "case={case}");
        }
    }
}

#[test]
fn random_swaps_preserve_canonicity() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (mut bdd, vars, f) = setup(&expr);
        let mut rng = Rng::new(case ^ 0x5a5a);
        for _ in 0..rng.usize(0..12) {
            bdd.swap_levels(rng.usize(0..NVARS - 1));
        }
        // Rebuilding the same function must land on the same node.
        let g = expr.build(&mut bdd, &vars);
        assert_eq!(f, g, "case={case}: canonicity violated after swaps");
    }
}

#[test]
fn forall_is_and_of_cofactors() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let vi = (case as usize).wrapping_mul(11) % NVARS;
        let (mut bdd, vars, f) = setup(&expr);
        let a = bdd.forall(f, vars[vi]);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            let want = expr.eval(bits | (1 << vi)) && expr.eval(bits & !(1 << vi));
            assert_eq!(bdd.eval(a, assign), want, "case={case}");
        }
    }
}

#[test]
fn iff_and_implies_laws() {
    for case in 0..CASES {
        let ea = case_expr(case);
        let eb = case_expr(case ^ 0xffff);
        let mut bdd = Bdd::new();
        let vars: Vec<Var> = (0..NVARS).map(|i| bdd.new_var(format!("x{i}"))).collect();
        let fa = ea.build(&mut bdd, &vars);
        let fb = eb.build(&mut bdd, &vars);
        let iff = bdd.iff(fa, fb);
        let imp_ab = bdd.implies(fa, fb);
        let imp_ba = bdd.implies(fb, fa);
        // (a <-> b) == (a -> b) && (b -> a), canonically.
        let both = bdd.and(imp_ab, imp_ba);
        assert_eq!(iff, both, "case={case}");
        // a -> a is a tautology.
        assert!(bdd.implies(fa, fa).is_true(), "case={case}");
    }
}

#[test]
fn pick_cube_always_satisfies() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (bdd, _vars, f) = setup(&expr);
        match bdd.pick_cube(f) {
            None => assert!(f.is_false(), "case={case}"),
            Some(cube) => {
                let assign = |v: Var| cube.iter().any(|&(cv, val)| cv == v && val);
                assert!(bdd.eval(f, assign), "case={case}");
            }
        }
    }
}

#[test]
fn gc_preserves_registered_roots() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let other = case_expr(case ^ 0xabcd);
        let mut bdd = Bdd::new();
        let vars: Vec<Var> = (0..NVARS).map(|i| bdd.new_var(format!("x{i}"))).collect();
        let f = expr.build(&mut bdd, &vars);
        let _garbage = other.build(&mut bdd, &vars);
        bdd.gc(&[f]);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            assert_eq!(bdd.eval(f, assign), expr.eval(bits), "case={case}");
        }
        // Rebuilding after GC still hash-conses onto the kept root.
        let g = expr.build(&mut bdd, &vars);
        assert_eq!(f, g, "case={case}");
    }
}

#[test]
fn mv_such_that_counts_match() {
    for domain in 1u64..24 {
        for modulus in 1u64..6 {
            let mut bdd = Bdd::new();
            let mv = polis_bdd::encode::MvVar::new(&mut bdd, "m", domain);
            let f = mv.such_that(&mut bdd, |v| v % modulus == 0);
            let expected = (0..domain).filter(|v| v % modulus == 0).count() as u128;
            assert_eq!(bdd.sat_count(f), expected, "domain={domain} mod={modulus}");
        }
    }
}

#[test]
fn support_is_exact() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (bdd, vars, f) = setup(&expr);
        let sup = bdd.support(f);
        for (i, &v) in vars.iter().enumerate() {
            let depends = (0..1u32 << NVARS)
                .any(|bits| expr.eval(bits | (1 << i)) != expr.eval(bits & !(1 << i)));
            assert_eq!(sup.contains(&v), depends, "case={case} var {i}");
        }
    }
}

/// Complement-edge equivalence suite: every derived operator, rebuilt the
/// "old" way from its defining identity over `not`, must land on the exact
/// handle the direct ("new", ITE-normalized) call produces — checked on
/// seeded random functions up to 12 variables with a truth-table oracle
/// per case confirming both against brute force.
#[test]
fn derived_ops_match_their_negation_identities_up_to_12_vars() {
    for nvars in [6usize, 9, 12] {
        for case in 0..24u64 {
            let mut rng = Rng::new(0xc0_0b1a5 ^ (nvars as u64) << 40 ^ case.wrapping_mul(0x9e37));
            let mut bdd = Bdd::new();
            let vars: Vec<Var> = (0..nvars).map(|i| bdd.new_var(format!("x{i}"))).collect();
            let ea = case_expr(case.wrapping_mul(3) ^ nvars as u64);
            let eb = case_expr(case.wrapping_mul(5) ^ 0x7777);
            // Spread the 6-var expressions over the wider rail so high
            // levels participate too.
            let lo_slice = &vars[..NVARS];
            let hi_slice = &vars[nvars - NVARS..];
            let fa = ea.build(&mut bdd, lo_slice);
            let fb = eb.build(&mut bdd, hi_slice);

            // or(a, b) == !(!a & !b)
            let direct_or = bdd.or(fa, fb);
            let (na, nb) = (bdd.not(fa), bdd.not(fb));
            let conj = bdd.and(na, nb);
            assert_eq!(direct_or, bdd.not(conj), "or nvars={nvars} case={case}");
            // xor(a, b) == ite(a, !b, b), iff == !xor
            let direct_xor = bdd.xor(fa, fb);
            let via_ite = bdd.ite(fa, nb, fb);
            assert_eq!(direct_xor, via_ite, "xor nvars={nvars} case={case}");
            let direct_iff = bdd.iff(fa, fb);
            assert_eq!(
                direct_iff,
                bdd.not(direct_xor),
                "iff nvars={nvars} case={case}"
            );
            // implies(a, b) == !(a & !b)
            let direct_imp = bdd.implies(fa, fb);
            let anb = bdd.and(fa, nb);
            assert_eq!(direct_imp, bdd.not(anb), "imp nvars={nvars} case={case}");
            // and_not(a, b) == a & !b
            let direct_andnot = bdd.and_not(fa, fb);
            assert_eq!(direct_andnot, anb, "and_not nvars={nvars} case={case}");
            // Double negation is the identity handle.
            let nna = bdd.not(na);
            assert_eq!(nna, fa, "double-neg nvars={nvars} case={case}");

            // Truth-table oracle on a random sample of assignments (full
            // 2^12 enumeration per case would be slow in debug builds).
            for _ in 0..64 {
                let bits: u64 = rng.usize(0..1 << nvars) as u64;
                let assign = |v: Var| {
                    let i = vars.iter().position(|&x| x == v).unwrap();
                    bits & (1 << i) != 0
                };
                let (a, b) = (bdd.eval(fa, assign), bdd.eval(fb, assign));
                assert_eq!(bdd.eval(direct_or, assign), a | b);
                assert_eq!(bdd.eval(direct_xor, assign), a ^ b);
                assert_eq!(bdd.eval(direct_iff, assign), a == b);
                assert_eq!(bdd.eval(direct_imp, assign), !a | b);
                assert_eq!(bdd.eval(direct_andnot, assign), a & !b);
            }
            bdd.check_canonical();
        }
    }
}

/// `not()` is a zero-allocation bit flip on arbitrary seeded functions:
/// no `mk` calls, no cache probes, and the complement evaluates opposite
/// everywhere.
#[test]
fn not_is_free_on_random_functions() {
    for case in 0..CASES {
        let expr = case_expr(case);
        let (mut bdd, vars, f) = setup(&expr);
        let mk_before = bdd.mk_calls();
        let lookups_before = bdd.stats().cache_lookups;
        let nf = bdd.not(f);
        assert_eq!(bdd.mk_calls(), mk_before, "case={case}: not() called mk");
        assert_eq!(
            bdd.stats().cache_lookups,
            lookups_before,
            "case={case}: not() probed the op cache"
        );
        assert_eq!(bdd.not(nf), f, "case={case}: double negation");
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            assert_eq!(bdd.eval(nf, assign), !expr.eval(bits), "case={case}");
        }
    }
}

/// Sifting and random swaps keep the arena canonical under complement
/// edges (the walker asserts no complemented hi edges survive a reorder).
#[test]
fn reordering_keeps_the_arena_canonical() {
    for case in 0..16u64 {
        let expr = case_expr(case);
        let (mut bdd, _vars, f) = setup(&expr);
        let mut rng = Rng::new(case ^ 0xfeed);
        for _ in 0..rng.usize(1..10) {
            bdd.swap_levels(rng.usize(0..NVARS - 1));
            bdd.check_canonical();
        }
        bdd.sift(&[f], &SiftConfig::to_convergence());
        bdd.check_canonical();
    }
}
