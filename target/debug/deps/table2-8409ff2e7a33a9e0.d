/root/repo/target/debug/deps/table2-8409ff2e7a33a9e0.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-8409ff2e7a33a9e0.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
