/root/repo/target/release/deps/polis-ac1022c5346ae36a.d: src/bin/polis.rs

/root/repo/target/release/deps/polis-ac1022c5346ae36a: src/bin/polis.rs

src/bin/polis.rs:
