/root/repo/target/debug/deps/roundtrip-80a312c141d98adc.d: crates/core/tests/roundtrip.rs

/root/repo/target/debug/deps/libroundtrip-80a312c141d98adc.rmeta: crates/core/tests/roundtrip.rs

crates/core/tests/roundtrip.rs:
