/root/repo/target/release/deps/polis_bench-376bf1e203736037.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/polis_bench-376bf1e203736037: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
