/root/repo/target/debug/deps/ablation_buffering-0196afd4561ded00.d: crates/bench/src/bin/ablation_buffering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_buffering-0196afd4561ded00.rmeta: crates/bench/src/bin/ablation_buffering.rs Cargo.toml

crates/bench/src/bin/ablation_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
