/root/repo/target/debug/examples/dashboard-a86e745d4ab9dec2.d: examples/dashboard.rs

/root/repo/target/debug/examples/libdashboard-a86e745d4ab9dec2.rmeta: examples/dashboard.rs

examples/dashboard.rs:
