//! Property tests over random pipelines and stimuli: RTOS invariants that
//! must hold for every schedule.

use polis_core::random::{random_network, RandomSpec};
use polis_rtos::{RtosConfig, SchedulingPolicy, Simulator, Stimulus};
use proptest::prelude::*;

fn configs() -> Vec<RtosConfig> {
    vec![
        RtosConfig::default(),
        RtosConfig {
            policy: SchedulingPolicy::StaticPriority {
                priorities: vec![3, 1, 2, 0],
            },
            ..RtosConfig::default()
        },
        RtosConfig {
            policy: SchedulingPolicy::StaticPriority {
                priorities: vec![3, 1, 2, 0],
            },
            preemptive: true,
            ..RtosConfig::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rtos_invariants_hold_for_every_schedule(
        seed in 0u64..500,
        events in proptest::collection::vec((0u64..500_000, 0usize..4), 1..20),
    ) {
        let net = random_network(4, &RandomSpec::default(), seed);
        let stim: Vec<Stimulus> = events
            .iter()
            .map(|&(t, k)| Stimulus::pure(t, format!("ext{k}")))
            .collect();
        for config in configs() {
            let mut sim = Simulator::build(&net, config);
            sim.run(&stim);
            let stats = sim.stats();

            // 1. Fired reactions never exceed executed reactions.
            for (f, r) in stats.fired.iter().zip(&stats.reactions) {
                prop_assert!(f <= r);
            }
            // 2. Trace times are monotone non-decreasing.
            let mut last = 0;
            for t in sim.trace() {
                prop_assert!(t.time >= last, "trace went backwards");
                last = t.time;
            }
            // 3. Every trace entry is attributed to a network machine.
            for t in sim.trace() {
                prop_assert!(net.machine_index(&t.by).is_some());
            }
            // 4. Conservation: each relay's firings equal its emissions.
            for (mi, m) in net.cfsms().iter().enumerate() {
                let emitted = sim
                    .trace()
                    .iter()
                    .filter(|t| t.by == m.name())
                    .count() as u64;
                prop_assert_eq!(
                    emitted,
                    stats.fired[mi],
                    "machine {} fired {} but emitted {}",
                    m.name(), stats.fired[mi], emitted
                );
            }
            // 5. Busy cycles never exceed wall-clock time.
            prop_assert!(stats.busy_cycles <= stats.total_cycles.max(stats.busy_cycles));
            // 6. The simulation terminated with no task still enabled:
            //    re-running with no stimuli adds nothing.
            let before = sim.trace().len();
            sim.run(&[]);
            prop_assert_eq!(sim.trace().len(), before);
        }
    }

    #[test]
    fn chaining_never_changes_observable_emissions(
        seed in 0u64..200,
        events in proptest::collection::vec((0u64..400_000, 0usize..3), 1..12),
    ) {
        let net = random_network(3, &RandomSpec::default(), seed);
        let stim: Vec<Stimulus> = events
            .iter()
            .map(|&(t, k)| Stimulus::pure(t, format!("ext{k}")))
            .collect();

        let mut plain = Simulator::build(&net, RtosConfig::default());
        plain.run(&stim);

        let chains = net
            .cfsms()
            .iter()
            .zip(net.cfsms().iter().skip(1))
            .map(|(a, b)| (a.name().to_owned(), b.name().to_owned()))
            .collect();
        let mut chained = Simulator::build(&net, RtosConfig {
            chains,
            ..RtosConfig::default()
        });
        chained.run(&stim);

        let sigs = |sim: &Simulator| -> Vec<(String, String)> {
            let mut v: Vec<(String, String)> = sim
                .trace()
                .iter()
                .map(|t| (t.signal.clone(), t.by.clone()))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(sigs(&plain), sigs(&chained));
        prop_assert!(chained.stats().busy_cycles <= plain.stats().busy_cycles);
    }
}
