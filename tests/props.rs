//! Property suites for the example workloads: pinned verdicts, and the
//! trace-soundness conformance oracle — every decoded counterexample or
//! witness trace must replay step-by-step through the explicit CFSM
//! semantics ([`CexTrace::replay`]) into a state that satisfies the
//! property's expression.

use polis::cfsm::Network;
use polis::core::{random, verify_properties_staged, workloads, SynthesisOptions};
use polis::lang::{parse_properties, parse_spec, PropExpr, PropKind, Property, Span};
use polis::verify::{verify_with_props, CexTrace, PropReport, VerifyOptions};

/// Checks a workload's shipped suite and returns the report.
fn check(net: &Network) -> (Vec<Property>, PropReport) {
    let suite = workloads::property_suite(net.name());
    let props = parse_properties(net, suite).expect("shipped suite resolves");
    let (_, pr) = verify_with_props(net, &props, &VerifyOptions::default()).unwrap();
    (props, pr)
}

/// The conformance oracle: the trace replays cleanly and its final state
/// satisfies `expr` under the concrete evaluator.
fn assert_trace_sound(net: &Network, t: &CexTrace, expr: &PropExpr) {
    let end = t.replay(net).expect("decoded trace must replay");
    assert_eq!(
        Some(&end),
        t.states.last(),
        "replay ends at the decoded target"
    );
    assert!(
        expr.eval(&end.ctrl, &end.pending),
        "replayed final state does not satisfy the property: {}",
        end.render(net)
    );
}

/// Every satisfying-state verdict in the report carries a sound trace:
/// violated `never`s (the acceptance criterion) and satisfied
/// `reachable`s alike.
fn assert_report_sound(net: &Network, props: &[Property], pr: &PropReport) {
    assert!(pr.rings_complete, "example fixpoints fit the ring cap");
    for (p, r) in props.iter().zip(&pr.results) {
        let expects_state = match p.kind {
            PropKind::Never => !r.holds,
            PropKind::Reachable => r.holds,
        };
        if expects_state {
            let t = r
                .trace
                .as_ref()
                .unwrap_or_else(|| panic!("no trace for {}", p.render(net)));
            assert_trace_sound(net, t, &p.expr);
        } else {
            assert!(r.trace.is_none() && r.witness_state.is_none());
        }
    }
}

fn verdicts(pr: &PropReport) -> Vec<bool> {
    pr.results.iter().map(|r| r.holds).collect()
}

#[test]
fn simple_suite_verdicts_and_traces() {
    let net = Network::new("simple", vec![workloads::simple()]).unwrap();
    let (props, pr) = check(&net);
    // reachable simple.c; never simple@awaiting && simple.c
    assert_eq!(verdicts(&pr), vec![true, false]);
    assert_report_sound(&net, &props, &pr);
    // The shortest counterexample is a single delivery of `c`.
    assert_eq!(pr.results[1].trace.as_ref().unwrap().len(), 1);
}

#[test]
fn seat_belt_suite_verdicts_and_traces() {
    let net = workloads::seat_belt();
    let (props, pr) = check(&net);
    // reachable alarm; never off && waiting; never alarm && belt_on
    assert_eq!(verdicts(&pr), vec![true, true, false]);
    assert_report_sound(&net, &props, &pr);
    // Reaching the alarm takes key_on plus a guarded tick at minimum;
    // the violation additionally needs belt_on pending there.
    let cex = pr.results[2].trace.as_ref().unwrap();
    assert!(
        cex.len() >= 4,
        "trace suspiciously short: {}",
        cex.render(&net)
    );
}

#[test]
fn shock_absorber_suite_verdicts_and_traces() {
    let net = workloads::shock_absorber();
    let (props, pr) = check(&net);
    // reachable sport; never comfort && sport; never starving && pwm_tick
    assert_eq!(verdicts(&pr), vec![true, true, false]);
    assert_report_sound(&net, &props, &pr);
}

#[test]
fn dashboard_suite_verdicts_and_traces() {
    let net = workloads::dashboard();
    let (props, pr) = check(&net);
    // reachable both saturated; never counting && saturated;
    // never wticks pending at speedo and odometer together
    assert_eq!(verdicts(&pr), vec![true, true, false]);
    assert_report_sound(&net, &props, &pr);
    // One frc timebase reaction fills both buffers at once.
    let cex = pr.results[2].trace.as_ref().unwrap();
    let end = cex.replay(&net).unwrap();
    let speedo = net.machine_index("speedo").unwrap();
    let odometer = net.machine_index("odometer").unwrap();
    assert!(end.pending[speedo][0] && end.pending[odometer][0]);
}

#[test]
fn staged_prop_checking_records_counters() {
    let net = workloads::seat_belt();
    let suite = workloads::property_suite(net.name());
    let props = parse_properties(&net, suite).unwrap();
    let (report, pr, trace) =
        verify_properties_staged(&net, &props, &SynthesisOptions::default()).unwrap();
    assert_eq!(pr.checked, 3);
    assert_eq!(pr.violations, 1);
    assert!(report.stats.reached_states.is_some());
    let stage = trace
        .records()
        .iter()
        .find(|r| r.stage == "prop")
        .expect("a `prop` stage record");
    let count = |name: &str| {
        stage
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    let _ = count("properties_checked");
    let _ = count("violations");
    let _ = count("max_trace_len");
    let _ = count("preimage_nodes");
}

#[test]
fn spec_files_round_trip_through_parse_spec() {
    // The committed `.pol` files are generated by `examples/export_specs`
    // and must agree with the in-tree workloads *including* the property
    // suites — parse, verify, and compare verdict-for-verdict.
    for (name, net) in [
        (
            "simple",
            Network::new("simple", vec![workloads::simple()]).unwrap(),
        ),
        ("dashboard", workloads::dashboard()),
        ("shock_absorber", workloads::shock_absorber()),
        ("seat_belt", workloads::seat_belt()),
    ] {
        let path = format!("examples/specs/{name}.pol");
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let spec = parse_spec(name, &src).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(
            polis::lang::emit_network_source(&spec.network),
            polis::lang::emit_network_source(&net),
            "{path} diverged from the workload"
        );
        let canonical = parse_properties(&net, workloads::property_suite(name)).unwrap();
        assert_eq!(
            spec.properties.len(),
            canonical.len(),
            "{path} property count"
        );
        for (a, b) in spec.properties.iter().zip(&canonical) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.render(&net), b.render(&net), "{path}");
        }
    }
}

#[test]
fn seeded_random_networks_yield_sound_traces() {
    // Trace-soundness fuzzing: ad-hoc properties over seeded random
    // networks; every produced trace must replay through the explicit
    // semantics into a satisfying state.
    let spec = random::RandomSpec::default();
    let span = Span { line: 1, col: 1 };
    let mut traced = 0usize;
    for seed in 0..8u64 {
        let net = random::random_network(3, &spec, 0x9e37_79b9_7f4a_7c15 ^ seed);
        let mut props = Vec::new();
        for (mi, m) in net.cfsms().iter().enumerate() {
            if m.states().len() > 1 {
                props.push(Property {
                    kind: PropKind::Reachable,
                    expr: PropExpr::AtState {
                        machine: mi,
                        state: m.states().len() - 1,
                        span,
                    },
                    span,
                });
            }
            if !m.inputs().is_empty() {
                props.push(Property {
                    kind: PropKind::Never,
                    expr: PropExpr::Pending {
                        machine: mi,
                        input: 0,
                        span,
                    },
                    span,
                });
            }
        }
        let (_, pr) = verify_with_props(&net, &props, &VerifyOptions::default()).unwrap();
        for (p, r) in props.iter().zip(&pr.results) {
            if let Some(t) = &r.trace {
                assert_trace_sound(&net, t, &p.expr);
                traced += 1;
            }
        }
    }
    assert!(traced >= 8, "only {traced} traces exercised the oracle");
}
