/root/repo/target/debug/deps/cli-43f0ab785b696e37.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-43f0ab785b696e37.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_polis=placeholder:polis
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
