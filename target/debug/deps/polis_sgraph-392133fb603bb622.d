/root/repo/target/debug/deps/polis_sgraph-392133fb603bb622.d: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

/root/repo/target/debug/deps/polis_sgraph-392133fb603bb622: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

crates/sgraph/src/lib.rs:
crates/sgraph/src/analysis.rs:
crates/sgraph/src/builder.rs:
crates/sgraph/src/chain.rs:
crates/sgraph/src/collapse.rs:
crates/sgraph/src/cond.rs:
crates/sgraph/src/eval.rs:
crates/sgraph/src/graph.rs:
