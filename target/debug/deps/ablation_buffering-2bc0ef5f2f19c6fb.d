/root/repo/target/debug/deps/ablation_buffering-2bc0ef5f2f19c6fb.d: crates/bench/src/bin/ablation_buffering.rs

/root/repo/target/debug/deps/libablation_buffering-2bc0ef5f2f19c6fb.rmeta: crates/bench/src/bin/ablation_buffering.rs

crates/bench/src/bin/ablation_buffering.rs:
