/root/repo/target/debug/deps/falsepath-8a144d63538d7920.d: crates/bench/src/bin/falsepath.rs Cargo.toml

/root/repo/target/debug/deps/libfalsepath-8a144d63538d7920.rmeta: crates/bench/src/bin/falsepath.rs Cargo.toml

crates/bench/src/bin/falsepath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
