/root/repo/target/debug/deps/table1-4ffcec3aa21a4445.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4ffcec3aa21a4445: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
