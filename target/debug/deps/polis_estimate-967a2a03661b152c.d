/root/repo/target/debug/deps/polis_estimate-967a2a03661b152c.d: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/debug/deps/libpolis_estimate-967a2a03661b152c.rmeta: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

crates/estimate/src/lib.rs:
crates/estimate/src/calibrate.rs:
crates/estimate/src/cost.rs:
crates/estimate/src/falsepath.rs:
crates/estimate/src/params.rs:
