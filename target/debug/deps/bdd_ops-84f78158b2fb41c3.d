/root/repo/target/debug/deps/bdd_ops-84f78158b2fb41c3.d: crates/bench/benches/bdd_ops.rs

/root/repo/target/debug/deps/libbdd_ops-84f78158b2fb41c3.rmeta: crates/bench/benches/bdd_ops.rs

crates/bench/benches/bdd_ops.rs:
