/root/repo/target/debug/deps/polis_estimate-5a975712468ac5f1.d: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/debug/deps/libpolis_estimate-5a975712468ac5f1.rmeta: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

crates/estimate/src/lib.rs:
crates/estimate/src/calibrate.rs:
crates/estimate/src/cost.rs:
crates/estimate/src/falsepath.rs:
crates/estimate/src/params.rs:
