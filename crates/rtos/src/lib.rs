//! The automatically generated real-time operating system (Section IV) and
//! a hardware/software co-simulator.
//!
//! To implement a valid behaviour of a CFSM network, the synthesized
//! per-CFSM routines need glue that:
//!
//! * schedules enabled software CFSMs (round-robin or static priorities,
//!   with or without preemption of lower-priority work by
//!   interrupt-serviced events);
//! * implements event emission and detection through per-(receiver, event)
//!   presence flags and one-place value buffers (an event re-emitted before
//!   detection is **overwritten and lost**, Section II-D);
//! * transfers events between hardware CFSMs and software (interrupts or a
//!   periodic polling routine, Section IV-C);
//! * guarantees the input snapshot is *consistent*: once a routine starts
//!   reading its flags, later arrivals are remembered for the next
//!   execution instead of becoming visible mid-reaction (the two-event
//!   race of Section IV-D);
//! * preserves unconsumed events when a reaction fires no transition.
//!
//! [`Simulator`] executes a whole network on one virtual CPU with these
//! rules, charging per-reaction cycle costs measured by the
//! [`polis_vm`] executor plus configurable scheduling overheads — the
//! substitute for the co-simulation environment of \[30\] that the paper
//! uses for dynamic performance calculation. [`emit_rtos_c`] prints the
//! C skeleton of the same RTOS for inspection.

mod gen_c;
mod sched;
mod sim;

pub use gen_c::emit_rtos_c;
pub use sched::{rate_monotonic, rate_monotonic_nonpreemptive, SchedAnalysis, TaskModel};
pub use sim::{
    DeliveryMode, RtosConfig, RtosOverhead, SchedulingPolicy, SimStats, Simulator, Stimulus,
    TraceEntry,
};
