/root/repo/target/release/deps/ablation_buffering-dfcbd7e6084e3e19.d: crates/bench/src/bin/ablation_buffering.rs

/root/repo/target/release/deps/ablation_buffering-dfcbd7e6084e3e19: crates/bench/src/bin/ablation_buffering.rs

crates/bench/src/bin/ablation_buffering.rs:
