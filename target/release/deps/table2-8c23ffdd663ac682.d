/root/repo/target/release/deps/table2-8c23ffdd663ac682.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-8c23ffdd663ac682: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
