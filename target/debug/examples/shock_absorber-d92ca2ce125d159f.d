/root/repo/target/debug/examples/shock_absorber-d92ca2ce125d159f.d: examples/shock_absorber.rs

/root/repo/target/debug/examples/shock_absorber-d92ca2ce125d159f: examples/shock_absorber.rs

examples/shock_absorber.rs:
