/root/repo/target/release/deps/table2-8d29f2850111123a.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-8d29f2850111123a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
