/root/repo/target/debug/deps/theorem1-92c397bdc9129b7e.d: crates/sgraph/tests/theorem1.rs

/root/repo/target/debug/deps/theorem1-92c397bdc9129b7e: crates/sgraph/tests/theorem1.rs

crates/sgraph/tests/theorem1.rs:
