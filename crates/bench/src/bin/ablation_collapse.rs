//! **Ablation (Section III-B3d)** — TEST-node collapsing.
//!
//! The paper: "In a series of experiments ... we never observed an
//! improvement in the final running time or size of the generated code. As
//! a result, we do not currently use TEST node collapsing." This harness
//! reruns that experiment over the dashboard and seat-belt machines.

use polis_core::{workloads, SynthesisOptions};
use polis_estimate::calibrate;
use polis_vm::Profile;

fn main() {
    let params = calibrate(Profile::Mcu8);
    let plain = SynthesisOptions::default();
    let collapsed = SynthesisOptions {
        collapse: true,
        ..SynthesisOptions::default()
    };

    println!("Ablation: TEST-node collapsing (Mcu8)\n");
    println!(
        "| {:<12} | {:>8} {:>9} | {:>8} {:>9} | {:>8} |",
        "CFSM", "size[B]", "max[cyc]", "size'[B]", "max'[cyc]", "verdict"
    );
    println!("|{}|", "-".repeat(68));

    let mut improvements = 0usize;
    let mut total = 0usize;
    for net in [workloads::dashboard(), workloads::seat_belt()] {
        for m in net.cfsms() {
            let a = polis_core::synthesize_with_params(m, &plain, &params);
            let b = polis_core::synthesize_with_params(m, &collapsed, &params);
            let better = b.measured.size_bytes < a.measured.size_bytes
                && b.measured.max_cycles < a.measured.max_cycles;
            if better {
                improvements += 1;
            }
            total += 1;
            println!(
                "| {:<12} | {:>8} {:>9} | {:>8} {:>9} | {:>8} |",
                m.name(),
                a.measured.size_bytes,
                a.measured.max_cycles,
                b.measured.size_bytes,
                b.measured.max_cycles,
                if better { "better" } else { "no win" }
            );
        }
    }
    println!("\ncollapsing improved both size and time on {improvements}/{total} machines");
    println!(
        "shape check (paper: no consistent improvement): {}",
        if improvements * 2 <= total {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
