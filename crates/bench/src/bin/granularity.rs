//! **Granularity sweep (Section I-H)** — growing the synchronous islands.
//!
//! "A growth of the synchronous islands (CFSMs) typically induces an
//! increase in code size, due to the more complex transition function ...
//! \[and\] a reduction in execution time ... due to the reduction of
//! communication and scheduling overhead."
//!
//! We sweep the dashboard from fully distributed (8 CFSMs) through partial
//! merges to the full synchronous product, measuring total code size and
//! the cycles needed to process the same stimulus stream.

use polis_bench::dashboard_stimulus;
use polis_cfsm::{compose, Network};
use polis_core::{synthesize_with_params, workloads, SynthesisOptions};
use polis_estimate::calibrate;
use polis_rtos::{RtosConfig, Simulator};

fn main() {
    let base = workloads::dashboard();
    let stim = dashboard_stimulus(1_500);
    let opts = SynthesisOptions {
        profile: polis_vm::Profile::Risc32,
        ..SynthesisOptions::default()
    };
    let params = calibrate(opts.profile);
    let rtos = RtosConfig {
        profile: opts.profile,
        ..RtosConfig::default()
    };

    // Granularity points: merges of progressively larger islands.
    let full_names: Vec<&str> = vec![
        "frc",
        "rpc",
        "speedo",
        "tach",
        "odometer",
        "fuel",
        "pwm_speed",
        "pwm_fuel",
    ];
    let points: Vec<(String, Network)> = vec![
        ("8 CFSMs (distributed)".to_owned(), base.clone()),
        (
            "7 CFSMs (frc+speedo)".to_owned(),
            compose::compose_subset(&base, &["frc", "speedo"]).expect("merge"),
        ),
        ("6 CFSMs (+rpc+tach)".to_owned(), {
            let n = compose::compose_subset(&base, &["frc", "speedo"]).expect("merge");
            compose::compose_subset(&n, &["rpc", "tach"]).expect("merge")
        }),
        ("1 CFSM (full product)".to_owned(), {
            let product = compose::compose(&base).expect("composes");
            Network::new("dash1", vec![product]).unwrap()
        }),
    ];
    let _ = full_names;

    println!(
        "Granularity sweep (dashboard, Risc32, {} stimuli)\n",
        stim.len()
    );
    println!(
        "| {:<24} | {:>9} | {:>12} | {:>10} |",
        "granularity", "ROM[B]", "busy cycles", "reactions"
    );
    println!("|{}|", "-".repeat(66));
    let mut roms = Vec::new();
    let mut cycles = Vec::new();
    for (label, net) in &points {
        let rom: u64 = net
            .cfsms()
            .iter()
            .map(|m| {
                synthesize_with_params(m, &opts, &params)
                    .measured
                    .size_bytes
            })
            .sum();
        let mut sim = Simulator::build(net, rtos.clone());
        sim.run(&stim);
        let total_reactions: u64 = sim.stats().reactions.iter().sum();
        println!(
            "| {:<24} | {:>9} | {:>12} | {:>10} |",
            label,
            rom,
            sim.stats().busy_cycles,
            total_reactions
        );
        roms.push(rom);
        cycles.push(sim.stats().busy_cycles);
    }

    println!("\nshape checks:");
    let check =
        |label: &str, ok: bool| println!("  {label}: {}", if ok { "HOLDS" } else { "VIOLATED" });
    check(
        "code size grows with island size",
        roms.last() > roms.first(),
    );
    check(
        "execution time shrinks with island size",
        cycles.last() < cycles.first(),
    );
}
