/root/repo/target/debug/deps/table1-73ff995f86e79f79.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-73ff995f86e79f79.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
