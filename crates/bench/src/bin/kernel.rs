//! BDD-kernel benchmark: synthesizes the seed examples (seat belt, shock
//! absorber, dashboard) with and without sifting, plus two synthetic
//! kernel-bound stress cases, and writes `BENCH_bdd_kernel.json` with wall
//! times, peak live nodes, and cache statistics.
//!
//! ```text
//! cargo run --release -p polis-bench --bin kernel [-- --smoke] [--check] [--out FILE]
//! ```
//!
//! `--smoke` shrinks the synthetic cases so the bench finishes in well
//! under a second (the CI gate). `--check` asserts the `BddStats`-based
//! regression thresholds and exits non-zero on violation. The recorded
//! `baseline` section holds the same cases measured at the pre-overhaul
//! commit (`c7fb732`, HashMap unique tables + unbounded ITE cache), so the
//! file carries its own before/after trajectory.

use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, BddStats, NodeRef};
use polis_cfsm::{Network, OrderScheme, ReactiveFn};
use polis_core::trace::escape_json;
use polis_core::workloads;
use std::time::Instant;

/// One measured bench case.
struct CaseResult {
    name: String,
    wall_ms: f64,
    stats: BddStats,
    peak_live_nodes: u64,
    final_nodes: u64,
}

impl CaseResult {
    fn to_json(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\n      \"name\": \"{}\",\n      \"wall_ms\": {:.3},\n      \
             \"mk_calls\": {},\n      \"ite_lookups\": {},\n      \"ite_hits\": {},\n      \
             \"ite_hit_rate\": {:.4},\n      \"ite_evictions\": {},\n      \
             \"memo_lookups\": {},\n      \"memo_hits\": {},\n      \
             \"unique_probes_per_lookup\": {:.3},\n      \"swaps\": {},\n      \
             \"reclaimed_nodes\": {},\n      \"peak_live_nodes\": {},\n      \
             \"final_nodes\": {}\n    }}",
            escape_json(&self.name),
            self.wall_ms,
            s.mk_calls,
            s.cache_lookups,
            s.cache_hits,
            s.hit_rate(),
            s.cache_evictions,
            s.memo_lookups,
            s.memo_hits,
            s.avg_probe_len(),
            s.swap_count,
            s.reclaimed_nodes,
            self.peak_live_nodes,
            self.final_nodes,
        )
    }
}

/// Builds every machine's χ-function, optionally sifting to convergence.
fn example_case(name: &str, net: &Network, sift: bool) -> CaseResult {
    let start = Instant::now();
    let mut stats = BddStats::default();
    let mut peak = 0u64;
    let mut final_nodes = 0u64;
    for m in net.cfsms() {
        let mut rf = ReactiveFn::build(m);
        if sift {
            rf.sift_with_passes(OrderScheme::OutputsAfterSupport, usize::MAX);
        }
        let st = rf.bdd().stats();
        stats = stats.merged(&st);
        peak += st.peak_live_nodes;
        final_nodes += rf.size() as u64;
    }
    CaseResult {
        name: name.to_owned(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats,
        peak_live_nodes: peak,
        final_nodes,
    }
}

/// The classic interleaved-pairs function `x0·x1 + x2·x3 + …` declared in
/// the worst order `x0,x2,…,x1,x3,…` — exponentially large before sifting,
/// linear after. Sifting to convergence is swap-dominated, which is
/// exactly the path the reclamation + O(1) size tracking accelerates.
fn sift_stress(pairs: usize) -> CaseResult {
    let start = Instant::now();
    let mut b = Bdd::new();
    let evens: Vec<_> = (0..pairs)
        .map(|i| b.new_var(format!("x{}", 2 * i)))
        .collect();
    let odds: Vec<_> = (0..pairs)
        .map(|i| b.new_var(format!("x{}", 2 * i + 1)))
        .collect();
    let mut f = NodeRef::FALSE;
    for i in 0..pairs {
        let a = b.var(evens[i]);
        let c = b.var(odds[i]);
        let t = b.and(a, c);
        f = b.or(f, t);
    }
    let before = b.size(&[f]);
    let after = b.sift(&[f], &SiftConfig::to_convergence());
    assert!(after <= before, "sifting must not grow the interleaved BDD");
    let stats = b.stats();
    CaseResult {
        name: format!("sift_stress_{pairs}pairs"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats,
        peak_live_nodes: stats.peak_live_nodes,
        final_nodes: after as u64,
    }
}

/// Repeated cofactoring/quantification over one shared function — the
/// s-graph-extraction access pattern the persistent memo caches serve.
fn quant_stress(nvars: usize, rounds: usize) -> CaseResult {
    let start = Instant::now();
    let mut b = Bdd::new();
    let vars: Vec<_> = (0..nvars).map(|i| b.new_var(format!("v{i}"))).collect();
    // A layered majority-ish function with plenty of shared subgraphs.
    let mut f = NodeRef::FALSE;
    for w in vars.windows(3) {
        let a = b.var(w[0]);
        let c = b.var(w[1]);
        let d = b.var(w[2]);
        let ac = b.and(a, c);
        let cd = b.xor(c, d);
        let t = b.or(ac, cd);
        f = b.xor(f, t);
    }
    let mut acc = NodeRef::FALSE;
    for _ in 0..rounds {
        for &v in &vars {
            let e = b.exists(f, v);
            let r0 = b.restrict(f, v, false);
            let u = b.forall(f, v);
            let x = b.xor(e, r0);
            let y = b.xor(x, u);
            acc = b.xor(acc, y);
        }
    }
    std::hint::black_box(acc);
    let stats = b.stats();
    CaseResult {
        name: format!("quant_stress_{nvars}v_{rounds}r"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats,
        peak_live_nodes: stats.peak_live_nodes,
        final_nodes: b.size(&[f, acc]) as u64,
    }
}

/// The pre-overhaul numbers for the full-size cases, measured at commit
/// `c7fb732` with this same harness (HashMap unique tables, unbounded
/// HashMap ITE cache, per-call memo allocation, no reclamation). Wall
/// times (median of 3) are from the same container the current numbers
/// are recorded on. The old kernel's "peak live nodes" column is its
/// final allocated-node count — it never reclaimed, so that IS the peak.
const BASELINE: &[(&str, f64, u64, f64)] = &[
    // (name, wall_ms, peak_live_nodes, ite_hit_rate)
    ("seatbelt_nosift", 0.134, 53, 0.1937),
    ("seatbelt_sift", 1.422, 494, 0.1889),
    ("shock_absorber_nosift", 0.241, 131, 0.1056),
    ("shock_absorber_sift", 2.362, 974, 0.1142),
    ("dashboard_nosift", 0.159, 92, 0.0734),
    ("dashboard_sift", 1.211, 347, 0.0826),
    ("sift_stress_10pairs", 14134.720, 1_048_575, 0.2410),
    ("quant_stress_24v_40r", 29.232, 11_423, 0.5711),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_bdd_kernel.json".to_owned());

    let (stress_pairs, quant_vars, quant_rounds) = if smoke { (8, 12, 4) } else { (10, 24, 40) };

    let mut results = Vec::new();
    for (name, net) in [
        ("seatbelt", workloads::seat_belt()),
        ("shock_absorber", workloads::shock_absorber()),
        ("dashboard", workloads::dashboard()),
    ] {
        results.push(example_case(&format!("{name}_nosift"), &net, false));
        results.push(example_case(&format!("{name}_sift"), &net, true));
    }
    results.push(sift_stress(stress_pairs));
    results.push(quant_stress(quant_vars, quant_rounds));

    for r in &results {
        println!(
            "{:<26} {:>9.2} ms  hit {:>5.1}%  probes/lookup {:>5.2}  peak {:>7}  reclaimed {:>7}",
            r.name,
            r.wall_ms,
            r.stats.hit_rate() * 100.0,
            r.stats.avg_probe_len(),
            r.peak_live_nodes,
            r.stats.reclaimed_nodes,
        );
    }

    let mut json = String::from("{\n  \"bench\": \"bdd_kernel\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"node_bytes\": {},\n  \"node_ref_bytes\": {},\n",
        polis_bdd::NODE_BYTES,
        std::mem::size_of::<NodeRef>()
    ));
    json.push_str("  \"baseline_commit\": \"c7fb732\",\n  \"baseline\": [");
    for (i, (name, wall_ms, peak, hit)) in BASELINE.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{ \"name\": \"{name}\", \"wall_ms\": {wall_ms:.3}, \
             \"peak_live_nodes\": {peak}, \"ite_hit_rate\": {hit:.4} }}"
        ));
    }
    json.push_str("\n  ],\n  \"current\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str("\n    ");
        json.push_str(&r.to_json());
    }
    json.push_str("\n  ],\n  \"speedups\": {");
    let mut first = true;
    for r in &results {
        if let Some((_, base_ms, _, _)) = BASELINE
            .iter()
            .find(|(n, base_ms, _, _)| *n == r.name && *base_ms > 0.0)
        {
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "\n    \"{}\": {:.2}",
                escape_json(&r.name),
                base_ms / r.wall_ms.max(1e-9)
            ));
        }
    }
    json.push_str("\n  }\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");

    if check {
        let mut failures = Vec::new();
        // Layout gate: the complement-edge handle must stay one machine
        // word half (the packed index + parity bit), and a stored node
        // must stay three 4-byte columns.
        if std::mem::size_of::<NodeRef>() != 4 {
            failures.push(format!(
                "NodeRef is {} bytes, expected 4",
                std::mem::size_of::<NodeRef>()
            ));
        }
        if polis_bdd::NODE_BYTES != 12 {
            failures.push(format!(
                "per-node storage is {} bytes, expected 12",
                polis_bdd::NODE_BYTES
            ));
        }
        for r in &results {
            // The seed examples' BDDs are small, so hit rates sit in the
            // 0.05..0.25 band (baseline kernel included); the floor exists
            // to catch the cache breaking outright, not workload drift.
            if r.stats.cache_lookups > 100 && r.stats.hit_rate() < 0.04 {
                failures.push(format!(
                    "{}: ITE hit rate {:.3} below 0.04 floor",
                    r.name,
                    r.stats.hit_rate()
                ));
            }
            if r.stats.unique_lookups > 100 && r.stats.avg_probe_len() > 4.0 {
                failures.push(format!(
                    "{}: average unique-table probe length {:.2} above 4.0 ceiling",
                    r.name,
                    r.stats.avg_probe_len()
                ));
            }
        }
        if let Some(stress) = results.iter().find(|r| r.name.starts_with("sift_stress")) {
            if stress.stats.reclaimed_nodes == 0 {
                failures.push("sift_stress: no nodes reclaimed during sifting".to_owned());
            }
            // The unsifted interleaved-pairs BDD is Θ(2^pairs); with swap
            // reclamation the arena must never grow far beyond that. The
            // old kernel peaked ~500x over this bound.
            let peak_bound = 1u64 << (stress_pairs + 3);
            if stress.peak_live_nodes >= peak_bound {
                failures.push(format!(
                    "sift_stress: peak live nodes {} above the {} reclamation bound",
                    stress.peak_live_nodes, peak_bound
                ));
            }
        }
        if failures.is_empty() {
            println!("bench check OK");
        } else {
            for f in &failures {
                eprintln!("bench check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
