/root/repo/target/debug/deps/polis_estimate-f9f7b33a8cf60400.d: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/debug/deps/polis_estimate-f9f7b33a8cf60400: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

crates/estimate/src/lib.rs:
crates/estimate/src/calibrate.rs:
crates/estimate/src/cost.rs:
crates/estimate/src/falsepath.rs:
crates/estimate/src/params.rs:
