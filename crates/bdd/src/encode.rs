//! Binary encodings of multi-valued variables.
//!
//! CFSM transition functions are *multi-valued* (Section II-C speaks of
//! multi-output multi-valued functions); the BDD layer represents each
//! multi-valued variable with a block of binary variables, MSB first. The
//! bits of one variable are kept adjacent in the order (a sifting group, see
//! [`crate::reorder::SiftConfig::groups`]) so the s-graph builder can regroup
//! consecutive bit tests into one multi-way TEST node.

use crate::{Bdd, NodeRef, Var};

/// The block of BDD variables encoding one multi-valued variable, most
/// significant bit first.
///
/// # Examples
///
/// ```
/// use polis_bdd::{Bdd, encode::MvVar};
///
/// let mut bdd = Bdd::new();
/// let state = MvVar::new(&mut bdd, "state", 3); // domain {0, 1, 2}
/// let is2 = state.eq_const(&mut bdd, 2);
/// assert!(bdd.eval(is2, |v| v == state.bits()[0])); // code 10 = 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvVar {
    name: String,
    bits: Vec<Var>,
    domain: u64,
}

impl MvVar {
    /// Declares `ceil(log2(domain))` fresh binary variables (at least one)
    /// at the bottom of `bdd`'s order, named `name.k` for bit `k` (MSB is
    /// bit `width-1`).
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(bdd: &mut Bdd, name: impl Into<String>, domain: u64) -> MvVar {
        assert!(domain > 0, "multi-valued domain must be non-empty");
        let name = name.into();
        let width = bits_for(domain);
        let bits = (0..width)
            .map(|k| bdd.new_var(format!("{name}.{}", width - 1 - k)))
            .collect();
        MvVar { name, bits, domain }
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoding bits, MSB first.
    pub fn bits(&self) -> &[Var] {
        &self.bits
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Number of encoding bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The predicate `self == value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn eq_const(&self, bdd: &mut Bdd, value: u64) -> NodeRef {
        assert!(value < self.domain, "value {value} outside domain");
        let w = self.width();
        let lits: Vec<NodeRef> = (0..w)
            .map(|k| {
                let bit = value >> (w - 1 - k) & 1 == 1;
                let v = self.bits[k];
                if bit {
                    bdd.var(v)
                } else {
                    bdd.nvar(v)
                }
            })
            .collect();
        bdd.and_all(lits)
    }

    /// The predicate `self == other` (bitwise equality; both variables must
    /// have the same width).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq_var(&self, bdd: &mut Bdd, other: &MvVar) -> NodeRef {
        assert_eq!(self.width(), other.width(), "width mismatch");
        let eqs: Vec<NodeRef> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| {
                let fa = bdd.var(a);
                let fb = bdd.var(b);
                bdd.iff(fa, fb)
            })
            .collect();
        bdd.and_all(eqs)
    }

    /// The characteristic function of `{ v in domain | pred(v) }`.
    pub fn such_that(&self, bdd: &mut Bdd, pred: impl Fn(u64) -> bool) -> NodeRef {
        let cubes: Vec<NodeRef> = (0..self.domain)
            .filter(|&v| pred(v))
            .map(|v| self.eq_const(bdd, v))
            .collect();
        bdd.or_all(cubes)
    }

    /// The constraint that the encoded value is inside the domain (always
    /// true for power-of-two domains).
    pub fn in_domain(&self, bdd: &mut Bdd) -> NodeRef {
        if self.domain.is_power_of_two() {
            NodeRef::TRUE
        } else {
            self.such_that(bdd, |_| true)
        }
    }

    /// Decodes an assignment (a predicate on bits) into the encoded value.
    pub fn decode(&self, assignment: impl Fn(Var) -> bool) -> u64 {
        let mut v = 0u64;
        for &bit in &self.bits {
            v = (v << 1) | u64::from(assignment(bit));
        }
        v
    }
}

/// Number of bits needed to encode a domain of the given size (at least 1).
pub fn bits_for(domain: u64) -> usize {
    if domain <= 2 {
        1
    } else {
        (64 - (domain - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_domains() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
    }

    #[test]
    fn eq_const_exactly_one_code() {
        let mut b = Bdd::new();
        let mv = MvVar::new(&mut b, "s", 4);
        for v in 0..4 {
            let f = mv.eq_const(&mut b, v);
            assert_eq!(b.sat_count(f), 1, "value {v}");
            // the satisfying assignment decodes back to v
            let cube = b.pick_cube(f).unwrap();
            let assign = |var: Var| cube.iter().any(|&(cv, val)| cv == var && val);
            assert_eq!(mv.decode(assign), v);
        }
    }

    #[test]
    fn eq_var_counts_diagonal() {
        let mut b = Bdd::new();
        let s = MvVar::new(&mut b, "s", 4);
        let t = MvVar::new(&mut b, "t", 4);
        let f = s.eq_var(&mut b, &t);
        assert_eq!(b.sat_count(f), 4); // 4 equal pairs over 16 assignments
    }

    #[test]
    fn such_that_and_in_domain() {
        let mut b = Bdd::new();
        let s = MvVar::new(&mut b, "s", 3); // 2 bits, one invalid code
        let even = s.such_that(&mut b, |v| v % 2 == 0);
        assert_eq!(b.sat_count(even), 2); // 0 and 2
        let dom = s.in_domain(&mut b);
        assert_eq!(b.sat_count(dom), 3);
        let p2 = MvVar::new(&mut b, "t", 4);
        assert!(p2.in_domain(&mut b).is_true());
    }

    #[test]
    fn bit_names_are_derived() {
        let mut b = Bdd::new();
        let s = MvVar::new(&mut b, "st", 5);
        assert_eq!(s.width(), 3);
        assert_eq!(b.var_name(s.bits()[0]), "st.2"); // MSB
        assert_eq!(b.var_name(s.bits()[2]), "st.0");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn eq_const_out_of_domain_panics() {
        let mut b = Bdd::new();
        let s = MvVar::new(&mut b, "s", 3);
        let _ = s.eq_const(&mut b, 3);
    }
}
