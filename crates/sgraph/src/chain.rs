//! The TEST-free ITE-chain form: ordering outputs *before* their support
//! (Section III-B3c).
//!
//! Every output gets one ASSIGN vertex labelled with an `ITE(...)`
//! expression over the inputs, exactly the paper's example where the Fig. 1
//! s-graph "would be reduced to four ASSIGN vertices". All executions take
//! the same number of vertices — the property the paper highlights for
//! highly critical real-time systems — at the cost of evaluating every
//! input expression on every reaction. This is also the shape produced by
//! the Esterel v5 Boolean-circuit backend, the `ESTEREL_OPT` baseline of
//! Table III.

use crate::cond::Cond;
use crate::graph::{AssignLabel, ComputedTarget, NodeId, SGraph, SNode};
use polis_bdd::{Bdd, NodeRef};
use polis_cfsm::{ReactiveFn, RfVarKind, Side, VarLoc};
use std::collections::HashMap;

/// Builds the ITE-chain s-graph for `rf`: a straight line of Computed
/// ASSIGN vertices (consume, one per action, one per next-state bit).
///
/// Takes `&mut ReactiveFn` because extracting per-output functions
/// requires existential quantification in the BDD manager.
pub fn ite_chain(rf: &mut ReactiveFn) -> SGraph {
    let mut g = SGraph::new(rf.name().to_owned());

    let all_output_bits: Vec<polis_bdd::Var> = rf
        .outputs()
        .iter()
        .flat_map(|o| o.bits.iter().copied())
        .collect();

    // Compute per-bit conditions first (they need &mut for quantification).
    struct Slot {
        target: ComputedTarget,
        cond: Cond,
        trivial_skip: bool,
    }
    let mut slots: Vec<Slot> = Vec::new();
    let noutputs = rf.outputs().len();
    for oi in 0..noutputs {
        let (kind, bits) = {
            let o = &rf.outputs()[oi];
            (o.kind, o.bits.clone())
        };
        let width = bits.len();
        for (bi, &bit) in bits.iter().enumerate() {
            let chi = rf.chi();
            let others: Vec<polis_bdd::Var> = all_output_bits
                .iter()
                .copied()
                .filter(|&b| b != bit)
                .collect();
            let ctrl_bits = rf
                .inputs()
                .iter()
                .find(|v| v.kind == RfVarKind::Ctrl)
                .map(|v| v.bits.clone());
            let bdd = rf.bdd_mut();
            let pos = bdd.restrict(chi, bit, true);
            let neg = bdd.restrict(chi, bit, false);
            let others_cube = bdd.cube(others.iter().copied());
            let can1 = bdd.exists_cube(pos, others_cube);
            let can0 = bdd.exists_cube(neg, others_cube);
            let ncan0 = bdd.not(can0);
            let forced1 = bdd.and(can1, ncan0);
            let value_bdd = match kind {
                RfVarKind::NextCtrl => {
                    // keep current bit where unconstrained:
                    // value = forced1 + (can1·can0)·current_bit
                    let dc = bdd.and(can1, can0);
                    // The *current* bit is the corresponding ctrl input bit.
                    let ctrl_bits = ctrl_bits.expect("NextCtrl implies Ctrl");
                    let cur = bdd.var(ctrl_bits[bi]);
                    let keep = bdd.and(dc, cur);
                    bdd.or(forced1, keep)
                }
                _ => forced1,
            };
            let cond = bdd_to_cond(rf, value_bdd);
            let target = match kind {
                RfVarKind::Consume => ComputedTarget::Consume,
                RfVarKind::Action { action } => ComputedTarget::Action { action },
                RfVarKind::NextCtrl => ComputedTarget::CtrlBit { bit: bi, width },
                _ => unreachable!("output kinds only"),
            };
            // A next-state bit that always keeps its value needs no vertex.
            let trivial_skip =
                matches!(kind, RfVarKind::NextCtrl) && cond == Cond::CtrlBit { bit: bi, width };
            slots.push(Slot {
                target,
                cond,
                trivial_skip,
            });
            let chi_root = rf.chi();
            rf.bdd_mut().gc(&[chi_root]);
        }
    }

    // Chain them, last-to-first, ending at END.
    let mut next = NodeId::END;
    for slot in slots.into_iter().rev() {
        if slot.trivial_skip || slot.cond == Cond::Const(false) {
            continue;
        }
        next = g.add_node(SNode::Assign {
            label: AssignLabel::Computed {
                target: slot.target,
                cond: slot.cond,
            },
            next,
        });
    }
    g.set_begin(next);
    debug_assert_eq!(g.validate(), Ok(()));
    g
}

/// Converts a BDD over *input* variables into a [`Cond`] by Shannon
/// expansion with memoization.
fn bdd_to_cond(rf: &ReactiveFn, f: NodeRef) -> Cond {
    fn rec(bdd: &Bdd, rf: &ReactiveFn, f: NodeRef, memo: &mut HashMap<NodeRef, Cond>) -> Cond {
        if f.is_true() {
            return Cond::Const(true);
        }
        if f.is_false() {
            return Cond::Const(false);
        }
        if let Some(c) = memo.get(&f) {
            return c.clone();
        }
        let v = bdd.node_var(f).expect("non-terminal");
        let loc = rf.locate(v).expect("input variable of the reactive fn");
        let atom = input_atom(rf, loc);
        let hi = rec(bdd, rf, bdd.hi(f), memo);
        let lo = rec(bdd, rf, bdd.lo(f), memo);
        let c = Cond::ite(atom, hi, lo);
        memo.insert(f, c.clone());
        c
    }
    let mut memo = HashMap::new();
    rec(rf.bdd(), rf, f, &mut memo)
}

fn input_atom(rf: &ReactiveFn, loc: VarLoc) -> Cond {
    assert_eq!(loc.side, Side::Input, "atoms are input variables");
    let rv = &rf.inputs()[loc.var];
    match rv.kind {
        RfVarKind::Present { input } => Cond::Present(input),
        RfVarKind::Test { test } => Cond::Test(test),
        RfVarKind::Ctrl => Cond::CtrlBit {
            bit: loc.bit,
            width: rv.bits.len(),
        },
        _ => unreachable!("input kinds only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{execute, input_values};
    use polis_cfsm::Cfsm;
    use polis_expr::{Expr, Type, Value};
    use std::collections::BTreeSet;

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    fn toggler() -> Cfsm {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("on");
        b.output_pure("off");
        let s_off = b.ctrl_state("off");
        let s_on = b.ctrl_state("on");
        b.transition(s_off, s_on)
            .when_present("tick")
            .emit("on")
            .done();
        b.transition(s_on, s_off)
            .when_present("tick")
            .emit("off")
            .done();
        b.build().unwrap()
    }

    #[test]
    fn chain_has_no_tests() {
        let mut rf = ReactiveFn::build(&simple());
        let g = ite_chain(&mut rf);
        assert_eq!(g.num_tests(), 0);
        // consume + 3 actions = 4 ASSIGNs — the paper's "four ASSIGN
        // vertices" for this very example.
        assert_eq!(g.num_assigns(), 4);
    }

    #[test]
    fn chain_constant_path_length() {
        // Every execution visits every vertex: same dynamic cost on all
        // paths (the paper's exact-execution-time property).
        let m = simple();
        let mut rf = ReactiveFn::build(&m);
        let g = ite_chain(&mut rf);
        let st = m.initial_state();
        let mut visiteds = BTreeSet::new();
        for (p, v) in [(vec!["c"], 0i64), (vec!["c"], 7), (vec![], 0)] {
            let present: BTreeSet<String> = p.iter().map(|s| s.to_string()).collect();
            let vals = input_values(&[("c", v)]);
            // count visited via evaluate through execute path lengths:
            // use the graph length as proxy — run evaluate directly.
            let r = execute(&m, &g, &present, &vals, &st).unwrap();
            let _ = r.fired; // the reaction ran; only the static shape matters
            visiteds.insert(g.num_assigns() + 2);
        }
        assert_eq!(visiteds.len(), 1);
    }

    #[test]
    fn chain_matches_reference_semantics() {
        let m = simple();
        let mut rf = ReactiveFn::build(&m);
        let g = ite_chain(&mut rf);
        let mut st_ref = m.initial_state();
        let mut st_sg = m.initial_state();
        for (sigs, v) in [
            (vec!["c"], 4i64),
            (vec!["c"], 4),
            (vec![], 0),
            (vec!["c"], 4),
            (vec!["c"], 4),
            (vec!["c"], 4),
            (vec!["c"], 0),
        ] {
            let p: BTreeSet<String> = sigs.iter().map(|s| s.to_string()).collect();
            let vals = input_values(&[("c", v)]);
            let want = m.react(&p, &vals, &st_ref).unwrap();
            let got = execute(&m, &g, &p, &vals, &st_sg).unwrap();
            assert_eq!(got.fired, want.fired);
            assert_eq!(got.next, want.next);
            assert_eq!(got.emissions.len(), want.emissions.len());
            st_ref = want.next;
            st_sg = got.next;
        }
    }

    #[test]
    fn chain_handles_control_state() {
        let m = toggler();
        let mut rf = ReactiveFn::build(&m);
        let g = ite_chain(&mut rf);
        let mut st = m.initial_state();
        let tick: BTreeSet<String> = ["tick".to_string()].into();
        let none: BTreeSet<String> = BTreeSet::new();
        let vals = input_values(&[]);
        // tick: off -> on (emit on)
        let r = execute(&m, &g, &tick, &vals, &st).unwrap();
        assert_eq!(r.emissions[0].signal, "on");
        assert_eq!(r.next.ctrl, 1);
        st = r.next;
        // idle: keep state
        let r = execute(&m, &g, &none, &vals, &st).unwrap();
        assert!(!r.fired);
        assert_eq!(r.next.ctrl, 1);
        // tick: on -> off (emit off)
        let r = execute(&m, &g, &tick, &vals, &st).unwrap();
        assert_eq!(r.emissions[0].signal, "off");
        assert_eq!(r.next.ctrl, 0);
    }
}
