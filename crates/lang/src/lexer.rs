//! Tokenizer for the specification language.

use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    // keywords
    Module,
    Input,
    Output,
    Var,
    State,
    From,
    To,
    When,
    Do,
    Emit,
    True,
    False,
    Min,
    Max,
    Properties,
    Assert,
    Never,
    Reachable,
    // punctuation / operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    At,
    Assign, // :=
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Le,
    Ge,
    Lt,
    Gt,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", spelling(other)),
        }
    }
}

fn spelling(t: &Tok) -> &'static str {
    match t {
        Tok::Module => "module",
        Tok::Input => "input",
        Tok::Output => "output",
        Tok::Var => "var",
        Tok::State => "state",
        Tok::From => "from",
        Tok::To => "to",
        Tok::When => "when",
        Tok::Do => "do",
        Tok::Emit => "emit",
        Tok::True => "true",
        Tok::False => "false",
        Tok::Min => "min",
        Tok::Max => "max",
        Tok::Properties => "properties",
        Tok::Assert => "assert",
        Tok::Never => "never",
        Tok::Reachable => "reachable",
        Tok::LBrace => "{",
        Tok::RBrace => "}",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Semi => ";",
        Tok::Colon => ":",
        Tok::Comma => ",",
        Tok::Dot => ".",
        Tok::At => "@",
        Tok::Assign => ":=",
        Tok::Question => "?",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Percent => "%",
        Tok::EqEq => "==",
        Tok::NotEq => "!=",
        Tok::Le => "<=",
        Tok::Ge => ">=",
        Tok::Lt => "<",
        Tok::Gt => ">",
        Tok::AndAnd => "&&",
        Tok::OrOr => "||",
        Tok::Bang => "!",
        Tok::Ident(_) | Tok::Int(_) | Tok::Eof => unreachable!(),
    }
}

/// Tokenizes `src`; `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, (u32, u32, String)> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($kind:expr, $c:expr) => {
            out.push(Token {
                kind: $kind,
                line,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = col;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                    }
                } else {
                    push!(Tok::Slash, start_col);
                }
            }
            c if c.is_ascii_digit() => {
                let mut v: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        v = v
                            .checked_mul(10)
                            .and_then(|x| x.checked_add(i64::from(digit)))
                            .ok_or((line, col, "integer literal overflows".to_owned()))?;
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(v), start_col);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let kind = match s.as_str() {
                    "module" => Tok::Module,
                    "input" => Tok::Input,
                    "output" => Tok::Output,
                    "var" => Tok::Var,
                    "state" => Tok::State,
                    "from" => Tok::From,
                    "to" => Tok::To,
                    "when" => Tok::When,
                    "do" => Tok::Do,
                    "emit" => Tok::Emit,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "min" => Tok::Min,
                    "max" => Tok::Max,
                    "properties" => Tok::Properties,
                    "assert" => Tok::Assert,
                    "never" => Tok::Never,
                    "reachable" => Tok::Reachable,
                    _ => Tok::Ident(s),
                };
                push!(kind, start_col);
            }
            _ => {
                chars.next();
                col += 1;
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let kind = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '.' => Tok::Dot,
                    '@' => Tok::At,
                    '?' => Tok::Question,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '%' => Tok::Percent,
                    ':' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Assign
                        } else {
                            Tok::Colon
                        }
                    }
                    '=' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::EqEq
                        } else {
                            return Err((line, start_col, "expected `==`".to_owned()));
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::NotEq
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&') {
                            col += 1;
                            Tok::AndAnd
                        } else {
                            return Err((line, start_col, "expected `&&`".to_owned()));
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|') {
                            col += 1;
                            Tok::OrOr
                        } else {
                            return Err((line, start_col, "expected `||`".to_owned()));
                        }
                    }
                    other => {
                        return Err((line, start_col, format!("unexpected character `{other}`")))
                    }
                };
                push!(kind, start_col);
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("module foo input"),
            vec![Tok::Module, Tok::Ident("foo".into()), Tok::Input, Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds(":= == != <= >= < > && || ! ? :"),
            vec![
                Tok::Assign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Question,
                Tok::Colon,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn property_tokens() {
        assert_eq!(
            kinds("properties { assert never m@s; assert reachable m.sig; }"),
            vec![
                Tok::Properties,
                Tok::LBrace,
                Tok::Assert,
                Tok::Never,
                Tok::Ident("m".into()),
                Tok::At,
                Tok::Ident("s".into()),
                Tok::Semi,
                Tok::Assert,
                Tok::Reachable,
                Tok::Ident("m".into()),
                Tok::Dot,
                Tok::Ident("sig".into()),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("042 7"), vec![Tok::Int(42), Tok::Int(7), Tok::Eof]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_character_reports_position() {
        let err = lex("a $").unwrap_err();
        assert_eq!(err.0, 1);
        assert!(err.2.contains("unexpected"));
    }

    #[test]
    fn lone_ampersand_is_an_error() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err());
    }
}
