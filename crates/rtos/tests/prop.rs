//! Property-style tests over random pipelines and stimuli: RTOS invariants
//! that must hold for every schedule. Deterministically seeded, offline.

use polis_core::random::{random_network, RandomSpec, Rng};
use polis_rtos::{RtosConfig, SchedulingPolicy, Simulator, Stimulus};

fn configs() -> Vec<RtosConfig> {
    vec![
        RtosConfig::default(),
        RtosConfig {
            policy: SchedulingPolicy::StaticPriority {
                priorities: vec![3, 1, 2, 0],
            },
            ..RtosConfig::default()
        },
        RtosConfig {
            policy: SchedulingPolicy::StaticPriority {
                priorities: vec![3, 1, 2, 0],
            },
            preemptive: true,
            ..RtosConfig::default()
        },
    ]
}

#[test]
fn rtos_invariants_hold_for_every_schedule() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x17_05 ^ case.wrapping_mul(0xabcdef));
        let seed = rng.u64(0..500);
        let net = random_network(4, &RandomSpec::default(), seed);
        let stim: Vec<Stimulus> = (0..rng.usize(1..20))
            .map(|_| Stimulus::pure(rng.u64(0..500_000), format!("ext{}", rng.usize(0..4))))
            .collect();
        for config in configs() {
            let mut sim = Simulator::build(&net, config);
            sim.run(&stim);
            let stats = sim.stats();

            // 1. Fired reactions never exceed executed reactions.
            for (f, r) in stats.fired.iter().zip(&stats.reactions) {
                assert!(f <= r, "case={case}");
            }
            // 2. Trace times are monotone non-decreasing.
            let mut last = 0;
            for t in sim.trace() {
                assert!(t.time >= last, "case={case}: trace went backwards");
                last = t.time;
            }
            // 3. Every trace entry is attributed to a network machine.
            for t in sim.trace() {
                assert!(net.machine_index(&t.by).is_some(), "case={case}");
            }
            // 4. Conservation: each relay's firings equal its emissions.
            for (mi, m) in net.cfsms().iter().enumerate() {
                let emitted = sim.trace().iter().filter(|t| t.by == m.name()).count() as u64;
                assert_eq!(
                    emitted,
                    stats.fired[mi],
                    "case={case}: machine {} fired {} but emitted {}",
                    m.name(),
                    stats.fired[mi],
                    emitted
                );
            }
            // 5. Busy cycles never exceed wall-clock time.
            assert!(
                stats.busy_cycles <= stats.total_cycles.max(stats.busy_cycles),
                "case={case}"
            );
            // 6. The simulation terminated with no task still enabled:
            //    re-running with no stimuli adds nothing.
            let before = sim.trace().len();
            sim.run(&[]);
            assert_eq!(sim.trace().len(), before, "case={case}");
        }
    }
}

#[test]
fn chaining_never_changes_observable_emissions() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0xc8a1 ^ case.wrapping_mul(0x777));
        let seed = rng.u64(0..200);
        let net = random_network(3, &RandomSpec::default(), seed);
        let stim: Vec<Stimulus> = (0..rng.usize(1..12))
            .map(|_| Stimulus::pure(rng.u64(0..400_000), format!("ext{}", rng.usize(0..3))))
            .collect();

        let mut plain = Simulator::build(&net, RtosConfig::default());
        plain.run(&stim);

        let chains = net
            .cfsms()
            .iter()
            .zip(net.cfsms().iter().skip(1))
            .map(|(a, b)| (a.name().to_owned(), b.name().to_owned()))
            .collect();
        let mut chained = Simulator::build(
            &net,
            RtosConfig {
                chains,
                ..RtosConfig::default()
            },
        );
        chained.run(&stim);

        let sigs = |sim: &Simulator| -> Vec<(String, String)> {
            let mut v: Vec<(String, String)> = sim
                .trace()
                .iter()
                .map(|t| (t.signal.clone(), t.by.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(sigs(&plain), sigs(&chained), "case={case}");
        assert!(
            chained.stats().busy_cycles <= plain.stats().busy_cycles,
            "case={case}"
        );
    }
}
