//! Edge-case tests for hand-assembled routines: constructor validation,
//! runaway-loop protection, and cross-profile invariants.

use polis_expr::Type;
use polis_vm::{
    analyze, assemble, run_reaction, CollectingHost, Inst, Profile, RunError, SlotInfo, SlotKind,
    VmMemory, VmProgram,
};

fn slot() -> Vec<SlotInfo> {
    vec![SlotInfo {
        name: "x".into(),
        ty: Type::uint(8),
        kind: SlotKind::State,
        init: 0,
    }]
}

#[test]
#[should_panic(expected = "target")]
fn from_raw_rejects_out_of_range_targets() {
    let _ = VmProgram::from_raw("bad", vec![Inst::Jump(99)], slot(), 0, 0, vec![]);
}

#[test]
#[should_panic(expected = "bad slot")]
fn from_raw_rejects_bad_slots() {
    let _ = VmProgram::from_raw(
        "bad",
        vec![Inst::PushVar(7), Inst::Return],
        slot(),
        0,
        0,
        vec![],
    );
}

#[test]
fn step_limit_stops_accidental_loops() {
    // A hand-written loop (compiled s-graphs are acyclic, but the executor
    // must defend against hand-assembled ones).
    let p = VmProgram::from_raw("looping", vec![Inst::Jump(0)], slot(), 0, 0, vec![]);
    let obj = assemble(&p, Profile::Mcu8);
    let mut mem = VmMemory::new(&p);
    let mut host = CollectingHost::default();
    assert_eq!(
        run_reaction(&p, &obj, &mut mem, &mut host).unwrap_err(),
        RunError::StepLimit
    );
}

#[test]
fn stack_underflow_is_reported_with_location() {
    let p = VmProgram::from_raw(
        "underflow",
        vec![Inst::StoreVar(0), Inst::Return],
        slot(),
        0,
        0,
        vec![],
    );
    let obj = assemble(&p, Profile::Mcu8);
    let mut mem = VmMemory::new(&p);
    let mut host = CollectingHost::default();
    let err = run_reaction(&p, &obj, &mut mem, &mut host).unwrap_err();
    assert_eq!(err, RunError::StackUnderflow { at: 0 });
    assert!(err.to_string().contains("instruction 0"));
}

#[test]
fn profiles_agree_on_semantics_but_not_on_costs() {
    let insts = vec![
        Inst::PushImm(40),
        Inst::PushImm(2),
        Inst::Binary(polis_expr::BinOp::Mul),
        Inst::StoreVar(0),
        Inst::Return,
    ];
    let p = VmProgram::from_raw("mul", insts, slot(), 0, 0, vec![]);
    let mut results = Vec::new();
    for profile in [Profile::Mcu8, Profile::Risc32] {
        let obj = assemble(&p, profile);
        let mut mem = VmMemory::new(&p);
        let mut host = CollectingHost::default();
        let stats = run_reaction(&p, &obj, &mut mem, &mut host).unwrap();
        assert_eq!(mem.get(0), 80, "{profile:?}");
        results.push((obj.size_bytes(), stats.cycles));
    }
    assert_ne!(results[0], results[1], "profiles must differ in cost");
}

#[test]
fn analysis_of_empty_routine_is_the_return_cost() {
    let p = VmProgram::from_raw("ret", vec![Inst::Return], slot(), 0, 0, vec![]);
    let obj = assemble(&p, Profile::Mcu8);
    let b = analyze(&p, &obj);
    assert_eq!(b.min_cycles, b.max_cycles);
    assert!(b.min_cycles > 0);
}
