/root/repo/target/debug/deps/schedulability-af0e9fe2a822b2d0.d: crates/bench/src/bin/schedulability.rs

/root/repo/target/debug/deps/libschedulability-af0e9fe2a822b2d0.rmeta: crates/bench/src/bin/schedulability.rs

crates/bench/src/bin/schedulability.rs:
