//! Symbolic reachability and conformance checking for CFSM networks.
//!
//! The POLIS flow argues correctness of synthesized software against the
//! GALS network semantics of Section II-D: machines react one at a time,
//! events travel through lossy one-place buffers, and the environment
//! may deliver primary inputs at any moment. This crate builds the
//! network's product transition relation as characteristic-function BDDs
//! (from [`polis_cfsm::ReactiveFn`], with current/next variable rails
//! and one fill bit per buffer), runs frontier-based image computation
//! to a fixpoint, and evaluates three verdicts against the reachable
//! set:
//!
//! 1. **lost events** — a reachable state has a full buffer while its
//!    emitter can fire an emitting reaction (the buffer would be
//!    overwritten, matching `rtos::sim`'s `overwritten` counters);
//! 2. **dead transitions** — priority-resolved transition conditions no
//!    reachable state enables for any data valuation;
//! 3. **deadlock** — a reachable state with a pending event that no
//!    machine can ever consume, no matter which further primary inputs
//!    the environment delivers.
//!
//! Data is abstracted: test variables are free, so the reachable set
//! over-approximates every concrete schedule. Lost-event and deadlock
//! *possible* verdicts are therefore sound alarms (a concrete loss
//! implies a symbolic one), and dead-transition verdicts are sound
//! proofs (symbolically dead implies concretely dead).
//!
//! The reachable-state invariant is exported as event-level
//! incompatibility pairs ([`Verifier::presence_incompats`]) which
//! `estimate::falsepath` consumes to prune provably-unreachable s-graph
//! paths, tightening per-machine cycle bounds.
//!
//! # Examples
//!
//! ```
//! use polis_cfsm::{Cfsm, Network};
//! use polis_verify::{verify_network, VerifyOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Cfsm::builder("echo");
//! b.input_pure("ping");
//! b.output_pure("pong");
//! let s = b.ctrl_state("s");
//! b.transition(s, s).when_present("ping").emit("pong").done();
//! let net = Network::new("single", vec![b.build()?])?;
//!
//! let report = verify_network(&net, &VerifyOptions::default())?;
//! assert!(report.deadlock.is_none());
//! assert!(report.dead_transitions.is_empty());
//! // The environment can always redeliver before `echo` reacts.
//! assert!(report.lost_possible("echo"));
//! # Ok(())
//! # }
//! ```

mod checks;
mod model;
mod prop;
mod reach;
mod trace;

pub use prop::{PropReport, PropResult};
pub use trace::{CexTrace, DecodedState, TraceStep};

use model::NetworkModel;
use polis_bdd::NodeRef;
use polis_cfsm::Network;
use polis_estimate::Incompat;
use polis_lang::Property;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};
use trace::TraceRings;

/// Traversal configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Maximum number of allocated BDD nodes the traversal may keep
    /// live; exceeded after reclamation ⇒
    /// [`VerifyError::NodeBudgetExceeded`].
    pub node_budget: usize,
    /// Allocated-node level above which the manager is sifted between
    /// fixpoint iterations (group constraints keep each buffer's cur/next
    /// flag rails and each machine's ctrl cur+next block contiguous).
    /// Reordering changes only node counts and wall time, never verdicts
    /// or reached-state counts. `usize::MAX` disables it.
    pub reorder_threshold: usize,
    /// Store the frontier onion rings during the fixpoint so property
    /// violations and deadlocks get full decoded counterexample traces
    /// instead of witness cubes. Off by default: rings cost extra live
    /// nodes and are useless without a trace consumer. Ring storage
    /// never changes reached sets, iteration counts, or verdicts.
    pub trace_rings: bool,
    /// Upper bound on stored rings; past it the prefix stays valid but
    /// deeper states degrade to cube-only witnesses. Rings are also the
    /// first thing shed under node-budget pressure.
    pub max_trace_rings: usize,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            node_budget: 1 << 22,
            reorder_threshold: 1 << 20,
            trace_rings: false,
            max_trace_rings: 1 << 12,
        }
    }
}

/// A failure during symbolic traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The BDD arena exceeded [`VerifyOptions::node_budget`] even after
    /// reclaiming dead nodes.
    NodeBudgetExceeded {
        /// The configured budget.
        budget: usize,
        /// Live nodes at the point of failure.
        allocated: usize,
        /// Image steps completed before the abort.
        image_steps: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NodeBudgetExceeded {
                budget,
                allocated,
                image_steps,
            } => write!(
                f,
                "BDD node budget exceeded during reachability: \
                 {allocated} live nodes > budget {budget} after {image_steps} image steps"
            ),
        }
    }
}

impl Error for VerifyError {}

/// Counters from one traversal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Breadth-first iterations to the fixpoint.
    pub iterations: u64,
    /// Individual partition images computed.
    pub image_steps: u64,
    /// Frontier BDD size after each iteration.
    pub frontier_sizes: Vec<u64>,
    /// Largest frontier BDD.
    pub peak_frontier_nodes: u64,
    /// BDD size of the final reachable set.
    pub reached_nodes: u64,
    /// Number of reachable product states (`None` on counter overflow).
    pub reached_states: Option<u128>,
    /// Peak live nodes in the manager over the whole traversal.
    pub peak_live_nodes: u64,
    /// Dedicated AndExists-cache probes during the traversal.
    pub andex_lookups: u64,
    /// Dedicated AndExists-cache hits during the traversal.
    pub andex_hits: u64,
    /// Single-pass cube quantifications during the traversal.
    pub cube_quant_calls: u64,
    /// Frontier-minimization `constrain` applications (one per iteration).
    pub constrain_calls: u64,
    /// Frontier nodes shed by `constrain` minimization, summed over all
    /// iterations (raw frontier size minus minimized size).
    pub constrain_reduced_nodes: u64,
    /// Sifting passes triggered between fixpoint iterations by
    /// [`VerifyOptions::reorder_threshold`].
    pub mid_reach_reorders: u64,
    /// Garbage collections triggered mid-traversal by the dead-node
    /// ratio policy (see `reach::enforce_budget`).
    pub mid_reach_collections: u64,
    /// Wall-clock time of model construction plus traversal.
    pub wall: Duration,
}

/// Lost-event verdict for one buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostEvent {
    /// The consuming machine.
    pub consumer: String,
    /// The buffered signal.
    pub signal: String,
    /// The emitting machine (`None` = environment-driven).
    pub driver: Option<String>,
    /// Whether a reachable state can overwrite the buffer.
    pub possible: bool,
}

/// A transition no reachable state ever enables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadTransition {
    /// The owning machine.
    pub machine: String,
    /// Index into the machine's transition list (declaration order).
    pub transition: usize,
    /// Source state name.
    pub from: String,
    /// Target state name.
    pub to: String,
}

/// A concrete reachable deadlock state, one line per machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockWitness {
    /// `machine@state pending[signals...]` per machine.
    pub description: Vec<String>,
    /// Decoded execution from the reset state into the deadlock, when
    /// [`VerifyOptions::trace_rings`] stored the onion rings (shared
    /// code path with the property checker's counterexamples).
    pub trace: Option<CexTrace>,
}

/// Everything one verification run produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The verified network's name.
    pub network: String,
    /// Number of machines.
    pub machines: usize,
    /// Number of one-place buffers.
    pub buffers: usize,
    /// Traversal counters.
    pub stats: VerifyStats,
    /// Per-buffer lost-event verdicts, in (consumer, input) order.
    pub lost_events: Vec<LostEvent>,
    /// Dead transitions (empty = every transition reachable).
    pub dead_transitions: Vec<DeadTransition>,
    /// A reachable global deadlock, if any.
    pub deadlock: Option<DeadlockWitness>,
}

impl VerifyReport {
    /// Whether any buffer of `consumer` can lose an event.
    pub fn lost_possible(&self, consumer: &str) -> bool {
        self.lost_events
            .iter()
            .any(|e| e.consumer == consumer && e.possible)
    }

    /// Whether any buffer at all can lose an event.
    pub fn any_lost_possible(&self) -> bool {
        self.lost_events.iter().any(|e| e.possible)
    }

    /// Human-readable multi-line summary (the `polis verify` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "network `{}`: {} machines, {} buffers\n",
            self.network, self.machines, self.buffers
        ));
        let states = self
            .stats
            .reached_states
            .map_or("overflow".to_owned(), |n| n.to_string());
        out.push_str(&format!(
            "fixpoint: {} iterations, {} image steps, {} reachable states ({} nodes, peak frontier {}, peak live {})\n",
            self.stats.iterations,
            self.stats.image_steps,
            states,
            self.stats.reached_nodes,
            self.stats.peak_frontier_nodes,
            self.stats.peak_live_nodes,
        ));
        out.push_str(&format!(
            "kernel: and_exists {}/{} cache hits, {} cube quantifications, constrain shed {} nodes, {} mid-reach reorders\n",
            self.stats.andex_hits,
            self.stats.andex_lookups,
            self.stats.cube_quant_calls,
            self.stats.constrain_reduced_nodes,
            self.stats.mid_reach_reorders,
        ));
        out.push_str("lost events:\n");
        for e in &self.lost_events {
            let from = e.driver.as_deref().unwrap_or("env");
            let verdict = if e.possible { "POSSIBLE" } else { "never" };
            out.push_str(&format!(
                "  {} -> {}.{}: {}\n",
                from, e.consumer, e.signal, verdict
            ));
        }
        if self.dead_transitions.is_empty() {
            out.push_str("dead transitions: none\n");
        } else {
            out.push_str("dead transitions:\n");
            for d in &self.dead_transitions {
                out.push_str(&format!(
                    "  {} #{} ({} -> {})\n",
                    d.machine, d.transition, d.from, d.to
                ));
            }
        }
        match &self.deadlock {
            None => out.push_str("deadlock: none\n"),
            Some(w) => {
                out.push_str("deadlock: REACHABLE\n");
                for line in &w.description {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        out
    }
}

/// A completed traversal holding the reachable set, for report
/// generation and invariant export.
pub struct Verifier<'n> {
    net: &'n Network,
    model: NetworkModel,
    reached: NodeRef,
    rings: Option<TraceRings>,
    stats: VerifyStats,
}

impl<'n> Verifier<'n> {
    /// Builds the symbolic model of `net` and runs reachability to a
    /// fixpoint.
    ///
    /// # Errors
    ///
    /// [`VerifyError::NodeBudgetExceeded`] when the arena outgrows
    /// `opts.node_budget`.
    pub fn run(net: &'n Network, opts: &VerifyOptions) -> Result<Verifier<'n>, VerifyError> {
        let start = Instant::now();
        let mut model = NetworkModel::build(net);
        let mut stats = VerifyStats::default();
        let (reached, rings) = reach::fixpoint(&mut model, opts, &mut stats)?;
        stats.wall = start.elapsed();
        Ok(Verifier {
            net,
            model,
            reached,
            rings,
            stats,
        })
    }

    /// Traversal counters.
    pub fn stats(&self) -> &VerifyStats {
        &self.stats
    }

    /// Evaluates all three checks against the reachable set.
    pub fn report(&mut self) -> VerifyReport {
        let lost = checks::lost_events(&mut self.model, self.net, self.reached);
        let dead = checks::dead_transitions(&mut self.model, self.net, self.reached);
        let deadlock =
            checks::deadlock(&mut self.model, self.net, self.reached, self.rings.as_ref());
        VerifyReport {
            network: self.net.name().to_owned(),
            machines: self.net.cfsms().len(),
            buffers: self.net.buffers().len(),
            stats: self.stats.clone(),
            lost_events: lost,
            dead_transitions: dead,
            deadlock,
        }
    }

    /// Checks a property suite against the reachable set, decoding
    /// counterexample/witness traces through the stored onion rings
    /// (cube-only witnesses when [`VerifyOptions::trace_rings`] was off
    /// or the rings were shed under budget pressure).
    pub fn check_properties(&mut self, props: &[Property]) -> PropReport {
        prop::check(
            &mut self.model,
            self.net,
            self.reached,
            self.rings.as_ref(),
            props,
        )
    }

    /// Event-level incompatibilities for `machine`: input-presence
    /// polarity pairs no reachable state exhibits, in the exact shape
    /// `estimate::falsepath` consumes.
    pub fn presence_incompats(&mut self, machine: usize) -> Vec<Incompat> {
        checks::presence_incompats(&mut self.model, self.reached, machine)
    }
}

/// One-shot convenience: [`Verifier::run`] followed by
/// [`Verifier::report`].
///
/// # Errors
///
/// Propagates [`Verifier::run`] failures.
pub fn verify_network(net: &Network, opts: &VerifyOptions) -> Result<VerifyReport, VerifyError> {
    Ok(Verifier::run(net, opts)?.report())
}

/// One-shot property checking: [`Verifier::run`] (with ring storage
/// forced on so violations get decoded traces), the standard report,
/// and the property verdicts.
///
/// # Errors
///
/// Propagates [`Verifier::run`] failures.
pub fn verify_with_props(
    net: &Network,
    props: &[Property],
    opts: &VerifyOptions,
) -> Result<(VerifyReport, PropReport), VerifyError> {
    let opts = VerifyOptions {
        trace_rings: true,
        ..*opts
    };
    let mut v = Verifier::run(net, &opts)?;
    let report = v.report();
    let props = v.check_properties(props);
    Ok((report, props))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_cfsm::Cfsm;
    use polis_estimate::PathAtom;
    use polis_expr::{Expr, Type, Value};

    /// tick -> [toggler] -> tock -> [sink].
    fn toggler_pair() -> Network {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("tock");
        let s0 = b.ctrl_state("off");
        let s1 = b.ctrl_state("on");
        b.transition(s0, s1)
            .when_present("tick")
            .emit("tock")
            .done();
        b.transition(s1, s0)
            .when_present("tick")
            .emit("tock")
            .done();
        let toggler = b.build().unwrap();

        let mut b = Cfsm::builder("sink");
        b.input_pure("tock");
        b.output_pure("seen");
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present("tock").emit("seen").done();
        let sink = b.build().unwrap();
        Network::new("pair", vec![toggler, sink]).unwrap()
    }

    #[test]
    fn toggler_pair_full_product_is_reachable() {
        let net = toggler_pair();
        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        // State bits: toggler.tick flag, toggler ctrl, sink.tock flag —
        // all 8 combinations are reachable.
        assert_eq!(report.stats.reached_states, Some(8));
        assert!(report.stats.iterations > 0);
        assert!(report.stats.image_steps > 0);
        assert!(report.deadlock.is_none());
        assert!(report.dead_transitions.is_empty());
        // Primary input: the environment can always redeliver.
        assert!(report
            .lost_events
            .iter()
            .any(|e| e.consumer == "toggler" && e.signal == "tick" && e.possible));
        // Internal buffer: toggler can emit while `tock` is pending.
        assert!(report.lost_events.iter().any(|e| e.consumer == "sink"
            && e.signal == "tock"
            && e.driver.as_deref() == Some("toggler")
            && e.possible));
        assert!(report.render().contains("deadlock: none"));
    }

    #[test]
    fn shadowed_transition_is_dead() {
        let mut b = Cfsm::builder("shadow");
        b.input_pure("p");
        b.output_pure("a");
        b.output_pure("b");
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present("p").emit("a").done();
        // Same guard, declared later: priority resolution kills it.
        b.transition(s, s).when_present("p").emit("b").done();
        let net = Network::new("shadowed", vec![b.build().unwrap()]).unwrap();
        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        assert_eq!(report.dead_transitions.len(), 1);
        assert_eq!(report.dead_transitions[0].machine, "shadow");
        assert_eq!(report.dead_transitions[0].transition, 1);
    }

    #[test]
    fn one_shot_machine_deadlocks_on_redelivery() {
        let mut b = Cfsm::builder("oneshot");
        b.input_pure("x");
        b.output_pure("done");
        let s0 = b.ctrl_state("armed");
        let s1 = b.ctrl_state("spent");
        b.transition(s0, s1).when_present("x").emit("done").done();
        let net = Network::new("oneshot", vec![b.build().unwrap()]).unwrap();
        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        let w = report.deadlock.expect("redelivered `x` is stuck forever");
        assert_eq!(w.description, vec!["oneshot@spent pending[x]".to_owned()]);
    }

    /// The token ring from the false-path integration: `driver` emits `p`
    /// once (on the primary `start`), then emits `q` only after `worker`
    /// has consumed `p` and handed back `tok`. So `p` and `q` can never
    /// be pending at `worker` simultaneously.
    fn token_ring() -> Network {
        let mut b = Cfsm::builder("driver");
        b.input_pure("start");
        b.input_pure("tok");
        b.output_pure("p");
        b.output_pure("q");
        let s0 = b.ctrl_state("idle");
        let s1 = b.ctrl_state("sent_p");
        let s2 = b.ctrl_state("sent_q");
        b.transition(s0, s1).when_present("start").emit("p").done();
        b.transition(s1, s2).when_present("tok").emit("q").done();
        let driver = b.build().unwrap();

        let mut b = Cfsm::builder("worker");
        b.input_pure("p");
        b.input_pure("q");
        b.output_pure("tok");
        b.output_pure("out");
        b.state_var("n", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        // The expensive both-present reaction is unreachable.
        b.transition(s, s)
            .when_present("p")
            .when_present("q")
            .emit("out")
            .assign("n", Expr::var("n").mul(Expr::var("n")).div(Expr::int(3)))
            .done();
        b.transition(s, s).when_present("p").emit("tok").done();
        b.transition(s, s).when_present("q").emit("out").done();
        let worker = b.build().unwrap();
        Network::new("token_ring", vec![driver, worker]).unwrap()
    }

    #[test]
    fn token_ring_excludes_joint_presence() {
        let net = token_ring();
        let mut v = Verifier::run(&net, &VerifyOptions::default()).unwrap();
        let report = v.report();
        // The both-present transition of `worker` is dead...
        assert!(report
            .dead_transitions
            .iter()
            .any(|d| d.machine == "worker" && d.transition == 0));
        // ...and the exported invariant says (p ∧ q) is unreachable.
        let worker = net.machine_index("worker").unwrap();
        let incs = v.presence_incompats(worker);
        assert!(
            incs.contains(&Incompat {
                a: (PathAtom::Present(0), true),
                b: (PathAtom::Present(1), true),
            }),
            "{incs:?}"
        );
        // Soundness: each flag alone IS reachable, so neither single
        // polarity pair (true, false) in both orders can be claimed...
        assert!(!incs.contains(&Incompat {
            a: (PathAtom::Present(0), false),
            b: (PathAtom::Present(1), false),
        }));
    }

    #[test]
    fn model_invariant_no_self_consuming_machine_is_constructible() {
        // The `ReactStep` encoding conjoins `flag' ↔ flag ∨ emit` for
        // consumer buffers and `¬flag'` for the reacting machine's own
        // buffers; those sets must stay disjoint, which holds because a
        // machine inputting its own output cannot even be built.
        let mut b = Cfsm::builder("selfloop");
        b.input_pure("x");
        b.output_pure("x");
        b.ctrl_state("s");
        assert!(b.build().is_err(), "self-consuming CFSM must be rejected");
    }

    #[test]
    fn pending_state_the_environment_can_unblock_is_not_deadlock() {
        // `join` needs p ∧ q; with only `p` pending it is stuck *now*,
        // but the environment can always deliver `q`, so no reachable
        // state is a true deadlock.
        let mut b = Cfsm::builder("join");
        b.input_pure("p");
        b.input_pure("q");
        b.output_pure("r");
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("p")
            .when_present("q")
            .emit("r")
            .done();
        let net = Network::new("join", vec![b.build().unwrap()]).unwrap();
        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        assert!(
            report.deadlock.is_none(),
            "env-unblockable pending flagged as deadlock: {:?}",
            report.deadlock
        );
    }

    #[test]
    fn mid_traversal_gc_is_transparent() {
        // Budgets below the unconstrained peak force reclamation during
        // the image loops; every run that still completes must agree
        // with the unconstrained one (the step relations stay rooted).
        let net = token_ring();
        let baseline = verify_network(&net, &VerifyOptions::default()).unwrap();
        let peak = baseline.stats.peak_live_nodes as usize;
        let mut completed = 0;
        for budget in [peak / 2, peak * 2 / 3, peak * 3 / 4, peak - 1] {
            let Ok(r) = verify_network(
                &net,
                &VerifyOptions {
                    node_budget: budget,
                    ..VerifyOptions::default()
                },
            ) else {
                continue;
            };
            completed += 1;
            assert_eq!(r.stats.reached_states, baseline.stats.reached_states);
            assert_eq!(r.stats.iterations, baseline.stats.iterations);
            assert_eq!(r.lost_events, baseline.lost_events);
            assert_eq!(r.dead_transitions, baseline.dead_transitions);
            assert_eq!(r.deadlock, baseline.deadlock);
        }
        assert!(
            completed > 0,
            "no GC-constrained run completed (peak {peak}); the property was vacuous"
        );
    }

    #[test]
    fn node_budget_aborts_gracefully() {
        let net = toggler_pair();
        let err = match Verifier::run(
            &net,
            &VerifyOptions {
                node_budget: 4,
                ..VerifyOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("expected a node-budget abort"),
        };
        let VerifyError::NodeBudgetExceeded {
            budget, allocated, ..
        } = err;
        assert_eq!(budget, 4);
        assert!(allocated > 4);
        assert!(err.to_string().contains("node budget exceeded"));
    }

    #[test]
    fn options_default_is_generous() {
        let o = VerifyOptions::default();
        assert!(o.node_budget >= 1 << 20);
        assert!(o.reorder_threshold >= 1 << 16);
        assert!(o.reorder_threshold <= o.node_budget);
    }

    #[test]
    fn forced_reordering_changes_no_verdict() {
        // Threshold 1 triggers a sift after every fixpoint iteration:
        // verdicts, reached-state counts and iteration counts must be
        // bit-identical to the unreordered run on every example network.
        for net in [toggler_pair(), token_ring()] {
            let baseline = verify_network(&net, &VerifyOptions::default()).unwrap();
            assert_eq!(baseline.stats.mid_reach_reorders, 0);
            let forced = verify_network(
                &net,
                &VerifyOptions {
                    reorder_threshold: 1,
                    ..VerifyOptions::default()
                },
            )
            .unwrap();
            assert!(forced.stats.mid_reach_reorders > 0, "threshold 1 must sift");
            assert_eq!(forced.stats.reached_states, baseline.stats.reached_states);
            assert_eq!(forced.stats.iterations, baseline.stats.iterations);
            assert_eq!(forced.lost_events, baseline.lost_events);
            assert_eq!(forced.dead_transitions, baseline.dead_transitions);
            // The *verdict* is order-independent; the witness cube walks
            // the node structure, so it may legally differ after a sift.
            assert_eq!(forced.deadlock.is_some(), baseline.deadlock.is_some());
        }
    }

    fn oneshot() -> Network {
        let mut b = Cfsm::builder("oneshot");
        b.input_pure("x");
        b.output_pure("done");
        let s0 = b.ctrl_state("armed");
        let s1 = b.ctrl_state("spent");
        b.transition(s0, s1).when_present("x").emit("done").done();
        Network::new("oneshot", vec![b.build().unwrap()]).unwrap()
    }

    #[test]
    fn deadlock_trace_replays_to_the_witness() {
        let net = oneshot();
        let opts = VerifyOptions {
            trace_rings: true,
            ..VerifyOptions::default()
        };
        let report = verify_network(&net, &opts).unwrap();
        let w = report.deadlock.expect("redelivered `x` is stuck forever");
        assert_eq!(w.description, vec!["oneshot@spent pending[x]".to_owned()]);
        let t = w.trace.expect("rings stored => decoded trace");
        // deliver x, fire armed->spent (clears x), deliver x again: the
        // shortest path into the deadlock has three hops.
        assert_eq!(t.len(), 3);
        let end = t.replay(&net).expect("trace must replay cleanly");
        assert_eq!(end.ctrl, vec![1]);
        assert_eq!(end.pending, vec![vec![true]]);
        assert!(t.render(&net).contains("deliver x"));
        assert!(t.render(&net).contains("react oneshot #0 (armed -> spent)"));
    }

    #[test]
    fn ring_cap_degrades_to_cube_witness() {
        let net = oneshot();
        let opts = VerifyOptions {
            trace_rings: true,
            max_trace_rings: 1,
            ..VerifyOptions::default()
        };
        let report = verify_network(&net, &opts).unwrap();
        let w = report.deadlock.expect("verdict unaffected by the ring cap");
        assert!(w.trace.is_none(), "deadlock lies beyond the stored prefix");
        assert_eq!(w.description, vec!["oneshot@spent pending[x]".to_owned()]);
    }

    #[test]
    fn ring_storage_changes_no_verdict_or_count() {
        for net in [toggler_pair(), token_ring(), oneshot()] {
            let base = verify_network(&net, &VerifyOptions::default()).unwrap();
            let ringed = verify_network(
                &net,
                &VerifyOptions {
                    trace_rings: true,
                    ..VerifyOptions::default()
                },
            )
            .unwrap();
            assert_eq!(ringed.stats.reached_states, base.stats.reached_states);
            assert_eq!(ringed.stats.iterations, base.stats.iterations);
            assert_eq!(ringed.stats.image_steps, base.stats.image_steps);
            assert_eq!(ringed.lost_events, base.lost_events);
            assert_eq!(ringed.dead_transitions, base.dead_transitions);
            assert_eq!(
                ringed.deadlock.as_ref().map(|w| &w.description),
                base.deadlock.as_ref().map(|w| &w.description)
            );
        }
    }

    #[test]
    fn budget_pressure_sheds_rings_before_aborting() {
        let net = token_ring();
        let base = verify_network(&net, &VerifyOptions::default()).unwrap();
        let peak = base.stats.peak_live_nodes as usize;
        let mut completed = 0;
        for budget in [peak / 2, peak * 2 / 3, peak * 3 / 4, peak] {
            let Ok(mut v) = Verifier::run(
                &net,
                &VerifyOptions {
                    node_budget: budget,
                    trace_rings: true,
                    ..VerifyOptions::default()
                },
            ) else {
                continue;
            };
            completed += 1;
            let r = v.report();
            assert_eq!(r.stats.reached_states, base.stats.reached_states);
            assert_eq!(r.lost_events, base.lost_events);
            assert_eq!(r.dead_transitions, base.dead_transitions);
        }
        assert!(
            completed > 0,
            "no ring-storing constrained run completed (peak {peak})"
        );
    }

    #[test]
    fn properties_verdicts_and_traces() {
        let src = "
            module toggler {
                input tick; output tock; state off, on;
                from off to on when tick do { emit tock; }
                from on to off when tick do { emit tock; }
            }
            module sink {
                input tock; output seen; state s;
                from s to s when tock do { emit seen; }
            }
            properties {
                assert reachable toggler@on && sink.tock;
                assert never toggler@on && toggler@off;
                assert never sink.tock;
            }";
        let spec = polis_lang::parse_spec("pair", src).unwrap();
        let (_report, pr) =
            verify_with_props(&spec.network, &spec.properties, &VerifyOptions::default()).unwrap();
        assert_eq!(pr.checked, 3);
        assert_eq!(pr.violations, 1);
        assert!(pr.rings_complete);
        assert!(pr.rings_stored > 1);

        // Satisfied `reachable`: witness trace replays into the target.
        let r0 = &pr.results[0];
        assert!(r0.holds);
        let t = r0.trace.as_ref().expect("witness trace");
        let end = t.replay(&spec.network).unwrap();
        assert!(spec.properties[0].expr.eval(&end.ctrl, &end.pending));

        // Control-state exclusivity holds vacuously: no satisfying state.
        let r1 = &pr.results[1];
        assert!(r1.holds && r1.trace.is_none() && r1.witness_state.is_none());

        // Violated `never`: counterexample trace replays into violation.
        let r2 = &pr.results[2];
        assert!(!r2.holds);
        let t = r2.trace.as_ref().expect("counterexample trace");
        let end = t.replay(&spec.network).unwrap();
        assert!(spec.properties[2].expr.eval(&end.ctrl, &end.pending));
        assert_eq!(r2.witness_state.as_ref(), t.states.last());

        let rendered = pr.render(&spec.network);
        assert!(rendered.contains("properties: 3 checked, 1 violated"));
        assert!(rendered.contains("assert never sink.tock: VIOLATED"));
        assert!(rendered.contains("counterexample ("));
        assert!(rendered.contains("witness ("));
    }

    #[test]
    fn properties_without_rings_fall_back_to_cube_witnesses() {
        let src = "
            module m { input a; output b; state s0, s1;
                from s0 to s1 when a do { emit b; } }
            properties { assert never m@s1; }";
        let spec = polis_lang::parse_spec("n", src).unwrap();
        // Plain run (no ring storage), then check directly.
        let mut v = Verifier::run(&spec.network, &VerifyOptions::default()).unwrap();
        let pr = v.check_properties(&spec.properties);
        assert_eq!(pr.rings_stored, 0);
        assert!(!pr.rings_complete);
        let r = &pr.results[0];
        assert!(!r.holds);
        assert!(r.trace.is_none(), "no rings => no decoded trace");
        let w = r
            .witness_state
            .as_ref()
            .expect("cube-only witness survives");
        assert_eq!(w.ctrl, vec![1]);
    }

    #[test]
    fn traversal_records_kernel_counters() {
        let net = token_ring();
        let report = verify_network(&net, &VerifyOptions::default()).unwrap();
        assert!(report.stats.andex_lookups > 0, "images use and_exists");
        assert!(
            report.stats.cube_quant_calls > 0,
            "env images use exists_cube"
        );
        assert_eq!(
            report.stats.constrain_calls, report.stats.iterations,
            "one frontier minimization per iteration"
        );
        assert!(report.render().contains("and_exists"));
    }
}
