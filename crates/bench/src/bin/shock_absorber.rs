//! **Section V-B** — the shock absorber controller redesign.
//!
//! The paper reports the synthesized implementation's ROM/RAM (including
//! the round-robin RTOS and I/O drivers) against a 32 KB ROM / 8 KB RAM
//! manual design, with comparable performance (both met the specified I/O
//! latency), and attributes the memory increase "mostly to the fact that
//! all variables used by an s-graph are copied upon entry".
//!
//! We reproduce the *structure* of that comparison: the POLIS pipeline
//! with buffer-all entry copies versus a hand-coding-style baseline
//! (two-level jump structure, no entry buffering), plus the announced
//! write-before-read data-flow optimization that closes most of the gap.

use polis_core::{synthesize_network, workloads, ImplStyle, SynthesisOptions};
use polis_rtos::{RtosConfig, Simulator, Stimulus};
use polis_sgraph::BufferPolicy;

fn main() {
    let net = workloads::shock_absorber();
    println!(
        "Section V-B: shock absorber redesign ({} CFSMs)\n",
        net.cfsms().len()
    );

    let variants: [(&str, SynthesisOptions); 3] = [
        ("synthesized (buffer-all)", SynthesisOptions::default()),
        (
            "synthesized + dataflow opt",
            SynthesisOptions {
                buffering: BufferPolicy::Minimal,
                ..SynthesisOptions::default()
            },
        ),
        (
            "manual-style baseline",
            SynthesisOptions {
                style: ImplStyle::TwoLevel,
                buffering: BufferPolicy::Minimal,
                ..SynthesisOptions::default()
            },
        ),
    ];

    println!(
        "| {:<28} | {:>8} | {:>8} |",
        "implementation", "ROM[B]", "RAM[B]"
    );
    println!("|{}|", "-".repeat(52));
    let mut roms = Vec::new();
    let mut rams = Vec::new();
    for (label, opts) in &variants {
        let r = synthesize_network(&net, opts, &RtosConfig::default());
        println!(
            "| {:<28} | {:>8} | {:>8} |",
            label, r.total_rom, r.total_ram
        );
        roms.push(r.total_rom);
        rams.push(r.total_ram);
    }

    // Latency under a realistic stimulus, for both the synthesized and the
    // baseline implementations.
    let mut stim = Vec::new();
    for i in 0..40u64 {
        stim.push(Stimulus::valued(
            i * 25_000,
            "acc_sample",
            if i % 3 == 0 { 40 } else { -25 },
        ));
    }
    stim.push(Stimulus::valued(10_000, "speed_sample", 95));
    for i in 0..5u64 {
        stim.push(Stimulus::pure(200_000 * (i + 1), "window"));
        stim.push(Stimulus::pure(150_000 * (i + 1) + 60_000, "pwm_tick"));
    }

    let budget = 12_000u64; // the "12 unit" I/O latency budget, in cycles
    println!(
        "\n| {:<28} | {:>16} | {:>7} |",
        "implementation", "worst lat [cyc]", "budget"
    );
    println!("|{}|", "-".repeat(59));
    for (label, style) in [
        ("synthesized", None),
        ("manual-style baseline", Some(ImplStyle::TwoLevel)),
    ] {
        let graphs: Option<Vec<_>> = style.map(|s| {
            net.cfsms()
                .iter()
                .map(|m| {
                    polis_core::synthesize(
                        m,
                        &SynthesisOptions {
                            style: s,
                            ..SynthesisOptions::default()
                        },
                    )
                    .graph
                })
                .collect()
        });
        let mut sim = match graphs {
            Some(g) => Simulator::with_graphs(&net, g, RtosConfig::default()),
            None => Simulator::build(&net, RtosConfig::default()),
        };
        sim.run(&stim);
        let lat = sim
            .worst_latency(&stim, "acc_sample", "acc_f")
            .expect("filter responds");
        println!(
            "| {:<28} | {:>16} | {:>7} |",
            label,
            lat,
            if lat <= budget { "MET" } else { "MISSED" }
        );
    }

    println!("\nshape checks:");
    let check =
        |label: &str, ok: bool| println!("  {label}: {}", if ok { "HOLDS" } else { "VIOLATED" });
    check(
        "synthesized (buffer-all) uses more RAM than the manual-style baseline",
        rams[0] > rams[2],
    );
    check(
        "write-before-read analysis recovers RAM (paper's future work)",
        rams[1] < rams[0],
    );
    check(
        "synthesized ROM is competitive with the unshared hand-style baseline",
        roms[0] <= roms[2] * 2,
    );
}
