//! A textual CFSM specification language.
//!
//! POLIS accepted specifications through Esterel (translated into its
//! SHIFT intermediate format, see reference \[36\]); we provide the
//! equivalent front door: a small textual language with explicit states
//! and transitions, compiled to [`polis_cfsm::Cfsm`] networks. The
//! paper's Fig. 1 module reads:
//!
//! ```text
//! module simple {
//!     input c : u8;
//!     output y;
//!     var a : u8 := 0;
//!     state awaiting;
//!     from awaiting to awaiting when c && [a == ?c] do { a := 0; emit y; }
//!     from awaiting to awaiting when c && ![a == ?c] do { a := a + 1; }
//! }
//! ```
//!
//! * presence atoms are bare input names (`c`), data tests are bracketed
//!   boolean expressions (`[a == ?c]`), and `?c` reads the value of a
//!   valued event (Esterel's notation);
//! * transitions from a state are prioritized in source order;
//! * the first declared state is the reset state;
//! * several `module`s in one source file form a [`polis_cfsm::Network`].
//!
//! # Examples
//!
//! ```
//! use polis_lang::parse_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let m = parse_module(
//!     "module blink { input tick; output led; state s;
//!       from s to s when tick do { emit led; } }",
//! )?;
//! assert_eq!(m.name(), "blink");
//! assert_eq!(m.num_transitions(), 1);
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;
mod printer;
pub mod prop;

pub use parser::{parse_module, parse_network, parse_properties, parse_spec, ParseError};
pub use printer::{emit_network_source, emit_source};
pub use prop::{
    emit_properties_source, emit_spec_source, PropExpr, PropKind, Property, Span, Spec,
};
