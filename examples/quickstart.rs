//! Quickstart: the paper's Fig. 1 `simple` module, from source text to
//! synthesized C, object code, and cost estimates.
//!
//! Run with `cargo run --example quickstart`.

use polis::cfsm::{OrderScheme, ReactiveFn};
use polis::codegen::{emit_c, CodegenOptions};
use polis::core::{synthesize, SynthesisOptions};
use polis::lang::parse_module;
use polis::sgraph::build;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The reactive behaviour of Fig. 1: await c; if a == ?c then
    // { a := 0; emit y } else a := a + 1.
    let simple = parse_module(
        r#"
        module simple {
            input c : u8;
            output y;
            var a : u8 := 0;
            state awaiting;
            from awaiting to awaiting when c && [a == ?c] do { a := 0; emit y; }
            from awaiting to awaiting when c && ![a == ?c] do { a := a + 1; }
        }
        "#,
    )?;

    // Step 1: the characteristic function χ of the reactive function, as a
    // BDD, with the variable order optimized by constrained sifting.
    let mut rf = ReactiveFn::build(&simple);
    let before = rf.size();
    let after = rf.sift(OrderScheme::OutputsAfterSupport);
    println!("characteristic function: {before} BDD nodes, {after} after sifting");

    // Step 2: the s-graph mirrors the BDD (Theorem 1).
    let graph = build(&rf)?;
    println!(
        "s-graph: {} TEST + {} ASSIGN vertices, depth {}",
        graph.num_tests(),
        graph.num_assigns(),
        graph.depth()
    );
    println!("\n--- s-graph (DOT) ---\n{}", graph.to_dot());

    // Step 3: C code in the paper's goto style.
    let c = emit_c(&simple, &graph, &CodegenOptions::default());
    println!("--- generated C ---\n{c}");

    // Steps 2+5 measured: parameter-based estimation vs. exact
    // object-code measurement on the 68HC11-like virtual target.
    let result = synthesize(&simple, &SynthesisOptions::default());
    println!("--- costs (Mcu8 target) ---");
    println!(
        "estimated: {} bytes, {}..{} cycles",
        result.estimate.size_bytes, result.estimate.min_cycles, result.estimate.max_cycles
    );
    println!(
        "measured : {} bytes, {}..{} cycles",
        result.measured.size_bytes, result.measured.min_cycles, result.measured.max_cycles
    );
    Ok(())
}
