//! Shared helpers for the experiment harnesses (`src/bin/table*.rs`) and
//! criterion benches. Each binary regenerates one table or narrated
//! experiment of the paper's Section V; see EXPERIMENTS.md for the
//! recorded outputs and the paper-vs-measured comparison.

use polis_core::{synthesize_with_params, CfsmSynthesis, SynthesisOptions};
use polis_estimate::{calibrate, CostParams};
use polis_rtos::Stimulus;

/// Synthesizes every machine of a network under shared calibration.
pub fn synthesize_all(
    net: &polis_cfsm::Network,
    opts: &SynthesisOptions,
) -> (Vec<CfsmSynthesis>, CostParams) {
    let params = calibrate(opts.profile);
    let rs = net
        .cfsms()
        .iter()
        .map(|m| synthesize_with_params(m, opts, &params))
        .collect();
    (rs, params)
}

/// The "large simulation file" of Table III: a deterministic pseudo-random
/// dashboard sensor stream of `n` events. Sampling windows (`timebase`)
/// fire often, so a substantial share of the stream cascades through the
/// whole conversion chain — the internal-communication traffic whose cost
/// the single-FSM composition eliminates.
pub fn dashboard_stimulus(n: usize) -> Vec<Stimulus> {
    let mut out = Vec::with_capacity(n);
    let mut x: u64 = 0x2545f4914f6cdd1d;
    let mut t: u64 = 0;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 400 + (x % 2_000);
        match x % 10 {
            0..=2 => out.push(Stimulus::pure(t, "wheel_pulse")),
            3..=5 => out.push(Stimulus::pure(t, "eng_pulse")),
            6 => out.push(Stimulus::valued(t, "fuel_sample", (x >> 8) as i64 % 256)),
            _ => out.push(Stimulus::pure(t, "timebase")),
        }
    }
    out
}

/// Relative error in percent, measured against `exact`.
pub fn pct_err(estimated: u64, exact: u64) -> f64 {
    if exact == 0 {
        return 0.0;
    }
    (estimated as f64 - exact as f64) / exact as f64 * 100.0
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// A minimal self-contained micro-benchmark harness (no external
/// dependencies, so benches build offline): measures the mean wall time of
/// `f` over an adaptively chosen iteration count and prints one line.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    use std::hint::black_box;
    use std::time::Instant;
    // Warm-up and calibration: aim for roughly 200 ms of total work.
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().max(std::time::Duration::from_nanos(50));
    let iters = (std::time::Duration::from_millis(200).as_nanos() / once.as_nanos())
        .clamp(1, 100_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters as u32;
    println!("{name:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
}
