/root/repo/target/release/deps/polis_cfsm-500d19146ad4a9a7.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/release/deps/libpolis_cfsm-500d19146ad4a9a7.rlib: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/release/deps/libpolis_cfsm-500d19146ad4a9a7.rmeta: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
