/root/repo/target/debug/deps/polis_vm-01a678b7dbdf5a58.d: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/debug/deps/libpolis_vm-01a678b7dbdf5a58.rmeta: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

crates/vm/src/lib.rs:
crates/vm/src/analyze.rs:
crates/vm/src/compile.rs:
crates/vm/src/exec.rs:
crates/vm/src/inst.rs:
crates/vm/src/profile.rs:
