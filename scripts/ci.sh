#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, build, and the full test suite.
# The workspace has zero external dependencies, so every step below works
# without network access (no `cargo fetch` required).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> kernel bench smoke (regression thresholds + 4-byte NodeRef / 12-byte node gate)"
./target/release/kernel --smoke --check --out /tmp/bench_bdd_kernel_smoke.json

echo "==> generated C is byte-identical across --jobs values on every example spec"
rm -rf /tmp/polis_ci_synth
for spec in examples/specs/*.pol; do
  name="$(basename "$spec" .pol)"
  ./target/release/polis synth "$spec" -o "/tmp/polis_ci_synth/$name.j1" --jobs 1 >/dev/null
  ./target/release/polis synth "$spec" -o "/tmp/polis_ci_synth/$name.j4" --jobs 4 >/dev/null
  diff -r "/tmp/polis_ci_synth/$name.j1" "/tmp/polis_ci_synth/$name.j4" \
    || { echo "FAIL: $spec synthesis output differs between --jobs 1 and --jobs 4"; exit 1; }
done

echo "==> symbolic verification of the example networks"
for spec in examples/specs/*.pol; do
  echo "--- polis verify $spec"
  ./target/release/polis verify "$spec"
done

echo "==> property suites: exact verdicts on every example spec"
# Each example ships one deliberately violated `assert never` whose
# decoded counterexample the test suite replays; the CLI gate here pins
# the verdict lines themselves.
check_props() {
  local spec="$1"; shift
  local out
  echo "--- polis verify $spec --props"
  out="$(./target/release/polis verify "$spec" --props)"
  for want in "$@"; do
    grep -qF "$want" <<<"$out" \
      || { echo "FAIL: $spec missing verdict: $want"; echo "$out"; exit 1; }
  done
}
check_props examples/specs/simple.pol \
  "properties: 2 checked, 1 violated" \
  "assert reachable simple.c: holds" \
  "assert never (simple@awaiting && simple.c): VIOLATED"
check_props examples/specs/seat_belt.pol \
  "properties: 3 checked, 1 violated" \
  "assert reachable belt_control@alarm: holds" \
  "assert never (belt_control@off && belt_control@waiting): holds" \
  "assert never (belt_control@alarm && belt_control.belt_on): VIOLATED"
check_props examples/specs/shock_absorber.pol \
  "properties: 3 checked, 1 violated" \
  "assert reachable mode@sport: holds" \
  "assert never (mode@comfort && mode@sport): holds" \
  "assert never (watchdog@starving && act.pwm_tick): VIOLATED"
check_props examples/specs/dashboard.pol \
  "properties: 3 checked, 1 violated" \
  "assert reachable (frc@saturated && rpc@saturated): holds" \
  "assert never (frc@counting && frc@saturated): holds" \
  "assert never (speedo.wticks && odometer.wticks): VIOLATED"

echo "==> verify bench smoke (sanity thresholds + deterministic regression gate)"
./target/release/verify --smoke --check --gate BENCH_verify.json --out /tmp/bench_verify_smoke.json

echo "CI OK"
