//! The virtual instruction set and program container.

use polis_expr::{BinOp, Type, UnOp};
use std::fmt;

/// One virtual instruction. Branch targets are instruction indices.
///
/// The machine is a small stack machine: expression operands are pushed,
/// operators pop and push, assignments pop into memory slots. Booleans live
/// on the stack as 0/1. RTOS interactions (event detection, emission,
/// consumption) are explicit instructions, mirroring the paper's cost
/// parameters ("a TEST node detecting the presence of a signal ... yields
/// an RTOS function call").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Push a constant.
    PushImm(i64),
    /// Push the value of a memory slot.
    PushVar(u16),
    /// Pop into a memory slot (coerced to the slot's type).
    StoreVar(u16),
    /// Pop one operand, push the result.
    Unary(UnOp),
    /// Pop two operands (rhs on top), push the result.
    Binary(BinOp),
    /// Pop a boolean; branch to `target` when it equals `when`.
    Branch {
        /// Branch polarity.
        when: bool,
        /// Destination instruction index.
        target: usize,
    },
    /// Unconditional branch.
    Jump(usize),
    /// Pop an index; jump to `targets[index]` (the multi-way jump used for
    /// CtrlSwitch TESTs and by the two-level-jump baseline).
    JumpTable(Vec<usize>),
    /// Push bit `bit` (MSB first of `width`) of the slot as 0/1.
    PushCtrlBit {
        /// Slot holding the control value.
        slot: u16,
        /// Bit position (0 = MSB).
        bit: u8,
        /// Encoding width.
        width: u8,
    },
    /// Overwrite the listed bits of the slot.
    SetCtrlBits {
        /// Slot holding the control value.
        slot: u16,
        /// `(bit, value)` pairs, MSB-first positions.
        bits: Vec<(u8, bool)>,
        /// Encoding width.
        width: u8,
    },
    /// Pop a boolean into bit `bit` of the slot.
    StoreCtrlBit {
        /// Slot holding the control value.
        slot: u16,
        /// Bit position (0 = MSB).
        bit: u8,
        /// Encoding width.
        width: u8,
    },
    /// Push the presence flag of input event `0` as 0/1 (an RTOS call).
    Detect(u16),
    /// Emit a pure output event (an RTOS call).
    EmitPure(u16),
    /// Pop a value and emit it on a valued output (an RTOS call).
    EmitValued(u16),
    /// Tell the RTOS the reaction fired: consume the input snapshot.
    Consume,
    /// End of reaction.
    Return,
}

/// What a memory slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// A CFSM state variable (persistent).
    State,
    /// Reaction-local copy of a state variable (the entry buffering of
    /// Section V-B); `of` is the buffered slot.
    LocalCopy {
        /// The buffered slot.
        of: u16,
    },
    /// The buffered value of a valued input event; written by the RTOS.
    InputValue {
        /// CFSM input index.
        input: u16,
    },
    /// The persistent control state.
    Ctrl,
    /// Reaction-local copy of the control state.
    CtrlLocal,
}

/// Metadata for one memory slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// Diagnostic name.
    pub name: String,
    /// Value type (assignments coerce to it).
    pub ty: Type,
    /// Role.
    pub kind: SlotKind,
    /// Reset value.
    pub init: i64,
}

/// A compiled reaction routine for one CFSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmProgram {
    pub(crate) name: String,
    pub(crate) insts: Vec<Inst>,
    pub(crate) slots: Vec<SlotInfo>,
    pub(crate) num_inputs: usize,
    pub(crate) num_outputs: usize,
    /// Value types of valued outputs (`None` for pure signals), indexed by
    /// CFSM output index; emissions are coerced to these widths.
    pub(crate) out_types: Vec<Option<Type>>,
}

impl VmProgram {
    /// Assembles a routine from raw parts — for hand-written probes,
    /// calibration suites, and tests. Compiled routines come from
    /// [`crate::compile`] instead.
    ///
    /// # Panics
    ///
    /// Panics if a branch target or slot reference is out of range.
    pub fn from_raw(
        name: impl Into<String>,
        insts: Vec<Inst>,
        slots: Vec<SlotInfo>,
        num_inputs: usize,
        num_outputs: usize,
        out_types: Vec<Option<Type>>,
    ) -> VmProgram {
        let n = insts.len();
        for (i, inst) in insts.iter().enumerate() {
            let check = |t: usize| assert!(t < n, "instruction {i}: target {t} out of range");
            match inst {
                Inst::Branch { target, .. } | Inst::Jump(target) => check(*target),
                Inst::JumpTable(ts) => ts.iter().for_each(|&t| check(t)),
                Inst::PushVar(s) | Inst::StoreVar(s) => {
                    assert!((*s as usize) < slots.len(), "instruction {i}: bad slot {s}")
                }
                _ => {}
            }
        }
        VmProgram {
            name: name.into(),
            insts,
            slots,
            num_inputs,
            num_outputs,
            out_types,
        }
    }

    /// The CFSM this routine implements.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Memory slot metadata.
    pub fn slots(&self) -> &[SlotInfo] {
        &self.slots
    }

    /// Number of CFSM input events.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of CFSM output events.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The value type of output `output` (`None` for pure outputs).
    pub fn output_type(&self, output: usize) -> Option<Type> {
        self.out_types.get(output).copied().flatten()
    }

    /// The slot holding the buffered value of valued input `input`.
    pub fn input_value_slot(&self, input: usize) -> Option<u16> {
        self.slots
            .iter()
            .position(|s| {
                s.kind
                    == SlotKind::InputValue {
                        input: input as u16,
                    }
            })
            .map(|i| i as u16)
    }

    /// The slot holding the persistent control state, if any.
    pub fn ctrl_slot(&self) -> Option<u16> {
        self.slots
            .iter()
            .position(|s| s.kind == SlotKind::Ctrl)
            .map(|i| i as u16)
    }

    /// The slot for state variable `name`, if any.
    pub fn state_slot(&self, name: &str) -> Option<u16> {
        self.slots
            .iter()
            .position(|s| s.kind == SlotKind::State && s.name == name)
            .map(|i| i as u16)
    }

    /// Bytes of RAM the routine needs: persistent state plus reaction-local
    /// copies (the paper's ROM/RAM accounting for the shock absorber).
    pub fn ram_bytes(&self) -> u32 {
        self.slots.iter().map(|s| s.ty.byte_size()).sum()
    }

    /// Number of reaction-local copy slots (the buffering overhead).
    pub fn num_local_copies(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.kind, SlotKind::LocalCopy { .. } | SlotKind::CtrlLocal))
            .count()
    }
}

impl fmt::Display for VmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; routine {}", self.name)?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:4}: {inst:?}")?;
        }
        Ok(())
    }
}
