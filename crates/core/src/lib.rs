//! The end-to-end POLIS software synthesis pipeline.
//!
//! Ties the substrate crates together into the five-step procedure of
//! Section I-H:
//!
//! 1. optimized translation of each CFSM transition function into an
//!    s-graph (characteristic-function BDD, constrained sifting,
//!    structural translation);
//! 2. s-graph optimization and code-size estimation;
//! 3. translation into C (and into virtual object code for measurement);
//! 4. scheduling and RTOS generation;
//! 5. "compilation" — here, assembly onto a virtual target with a
//!    68HC11-like or R3000-like cost profile.
//!
//! [`synthesize`] runs steps 1–3 and 5 for one CFSM under a chosen
//! [`ImplStyle`]; [`synthesize_network`] maps it over a network and adds
//! the RTOS. The [`workloads`] module provides the paper's evaluation
//! subjects (dashboard, shock absorber, seat belt) rebuilt as synthetic
//! equivalents, and [`random`] generates random networks for benchmarks
//! and property tests.
//!
//! # Examples
//!
//! ```
//! use polis_core::{synthesize, workloads, ImplStyle, SynthesisOptions};
//!
//! let net = workloads::dashboard();
//! let opts = SynthesisOptions::default();
//! let result = synthesize(&net.cfsms()[0], &opts);
//! assert!(result.measured.size_bytes > 0);
//! assert!(result.estimate.max_cycles > 0);
//! assert_eq!(opts.style, ImplStyle::DecisionGraph);
//! ```

pub mod pipeline;
pub mod random;
pub mod trace;
pub mod workloads;

pub use pipeline::{
    synthesize_cfsm, synthesize_network_staged, verify_properties_staged, Stage, SynthCtx,
    SynthError, SynthFailure,
};
pub use trace::{MetricValue, StageRecord, SynthTrace};

use polis_cfsm::{Cfsm, Network, OrderScheme};
use polis_estimate::{calibrate, CostParams, Estimate};
use polis_rtos::RtosConfig;
use polis_sgraph::{BufferPolicy, SGraph};
use polis_vm::{ObjectCode, Profile, VmProgram};
use std::time::Duration;

/// Which implementation style to synthesize (the rows of Tables II/III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplStyle {
    /// BDD-derived decision graph (the paper's approach).
    DecisionGraph,
    /// TEST-free ITE assignment chain — outputs before support
    /// (the `ESTEREL_OPT` Boolean-circuit style).
    IteChain,
    /// Two-level multi-way jump reference (structured hand-coding style).
    TwoLevel,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisOptions {
    /// Implementation style.
    pub style: ImplStyle,
    /// Variable-ordering scheme for [`ImplStyle::DecisionGraph`].
    pub scheme: OrderScheme,
    /// Sifting passes (the paper uses a single pass).
    pub sift_passes: usize,
    /// Apply TEST-node collapsing after building the graph.
    pub collapse: bool,
    /// Entry-copy buffering.
    pub buffering: BufferPolicy,
    /// Target cost profile.
    pub profile: Profile,
    /// Run symbolic network verification (reachability, lost events,
    /// dead transitions, deadlock) as a network-level stage.
    pub verify: bool,
    /// BDD node budget for the verification fixpoint; exceeding it
    /// aborts the pipeline with [`SynthError::Verify`] (the trace
    /// recorded so far is preserved in [`SynthFailure`]).
    pub verify_node_budget: usize,
    /// Allocated-node level above which the verify manager is sifted
    /// between fixpoint iterations (`usize::MAX` disables mid-reach
    /// reordering). Affects wall time and peak nodes only, never
    /// verdicts.
    pub verify_reorder_threshold: usize,
    /// Feed the verified reachability invariant back into the
    /// false-path cycle estimator
    /// ([`CfsmSynthesis::max_cycles_reach_aware`]). Requires `verify`.
    pub verify_refine_estimates: bool,
}

impl Default for SynthesisOptions {
    fn default() -> SynthesisOptions {
        SynthesisOptions {
            style: ImplStyle::DecisionGraph,
            scheme: OrderScheme::OutputsAfterSupport,
            sift_passes: 1,
            collapse: false,
            buffering: BufferPolicy::All,
            profile: Profile::Mcu8,
            verify: false,
            verify_node_budget: polis_verify::VerifyOptions::default().node_budget,
            verify_reorder_threshold: polis_verify::VerifyOptions::default().reorder_threshold,
            verify_refine_estimates: false,
        }
    }
}

/// Exact measurements from the assembled object code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measured {
    /// Code size in bytes (ROM).
    pub size_bytes: u64,
    /// Exact minimum cycles per reaction.
    pub min_cycles: u64,
    /// Exact maximum cycles per reaction.
    pub max_cycles: u64,
    /// Data bytes (RAM): state, copies, buffers.
    pub ram_bytes: u64,
}

/// Everything the pipeline produces for one CFSM.
#[derive(Debug)]
pub struct CfsmSynthesis {
    /// The synthesized s-graph.
    pub graph: SGraph,
    /// Generated C source.
    pub c_code: String,
    /// Compiled virtual routine.
    pub program: VmProgram,
    /// Assembled object code.
    pub object: ObjectCode,
    /// Parameter-based estimate (Section III-C).
    pub estimate: Estimate,
    /// The estimated worst case excluding paths killed by derived test
    /// incompatibilities (Section III-C false paths); `None` when no
    /// incompatibilities exist for this machine.
    pub max_cycles_false_path_aware: Option<u64>,
    /// The false-path bound additionally pruned by the *verified*
    /// network reachability invariant (never looser than the plain or
    /// derived bound); `None` unless
    /// [`SynthesisOptions::verify_refine_estimates`] ran and produced
    /// incompatibilities for this machine.
    pub max_cycles_reach_aware: Option<u64>,
    /// Exact object-code measurement.
    pub measured: Measured,
    /// Wall-clock synthesis time (BDD + sift + build + compile).
    pub synthesis_time: Duration,
}

/// Runs the single-CFSM pipeline.
pub fn synthesize(cfsm: &Cfsm, opts: &SynthesisOptions) -> CfsmSynthesis {
    let params = calibrate(opts.profile);
    synthesize_with_params(cfsm, opts, &params)
}

/// Like [`synthesize`] with pre-calibrated cost parameters (avoids
/// re-probing the target per machine). A thin wrapper over the staged
/// pipeline ([`pipeline::synthesize_cfsm`]) that discards the trace.
pub fn synthesize_with_params(
    cfsm: &Cfsm,
    opts: &SynthesisOptions,
    params: &CostParams,
) -> CfsmSynthesis {
    let mut ctx = SynthCtx::new(opts, params);
    pipeline::synthesize_cfsm(&mut ctx, cfsm).expect("validated CFSMs synthesize")
}

/// Like [`synthesize`], additionally returning the per-stage trace.
pub fn synthesize_traced(cfsm: &Cfsm, opts: &SynthesisOptions) -> (CfsmSynthesis, SynthTrace) {
    let params = calibrate(opts.profile);
    let mut ctx = SynthCtx::new(opts, &params);
    let r = pipeline::synthesize_cfsm(&mut ctx, cfsm).expect("validated CFSMs synthesize");
    (r, ctx.into_trace())
}

/// The pipeline applied to a whole network, plus the generated RTOS.
#[derive(Debug)]
pub struct NetworkSynthesis {
    /// Per-machine results, in network order.
    pub machines: Vec<CfsmSynthesis>,
    /// Symbolic verification verdicts; `Some` iff
    /// [`SynthesisOptions::verify`] was set.
    pub verify: Option<polis_verify::VerifyReport>,
    /// Generated RTOS C skeleton.
    pub rtos_c: String,
    /// Total code size including an RTOS allowance.
    pub total_rom: u64,
    /// Total data size including RTOS tables.
    pub total_ram: u64,
    /// Total wall-clock synthesis time.
    pub synthesis_time: Duration,
}

/// Fixed ROM/RAM allowance for the generated RTOS core (scheduler loop,
/// emission service, ISR stubs); the generated RTOS is small because the
/// communication structure is fixed (Section IV-E).
pub(crate) const RTOS_ROM_BYTES: u64 = 512;
pub(crate) const RTOS_RAM_PER_TASK: u64 = 12;

/// Runs the pipeline over every machine of `net` and generates the RTOS.
/// Sequential; see [`synthesize_network_staged`] for the `--jobs N`
/// parallel variant with a trace.
pub fn synthesize_network(
    net: &Network,
    opts: &SynthesisOptions,
    rtos: &RtosConfig,
) -> NetworkSynthesis {
    synthesize_network_staged(net, opts, rtos, 1)
        .expect("validated CFSMs synthesize")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let net = workloads::seat_belt();
        let opts = SynthesisOptions::default();
        for m in net.cfsms() {
            let r = synthesize(m, &opts);
            assert!(r.measured.size_bytes > 0, "{}", m.name());
            assert!(r.measured.min_cycles <= r.measured.max_cycles);
            assert!(r.c_code.contains(&format!("void {}_react", m.name())));
            assert!(r.graph.validate().is_ok());
        }
    }

    #[test]
    fn styles_differ_in_shape() {
        let net = workloads::seat_belt();
        let m = &net.cfsms()[0];
        let dg = synthesize(m, &SynthesisOptions::default());
        let chain = synthesize(
            m,
            &SynthesisOptions {
                style: ImplStyle::IteChain,
                ..SynthesisOptions::default()
            },
        );
        let two = synthesize(
            m,
            &SynthesisOptions {
                style: ImplStyle::TwoLevel,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(chain.graph.num_tests(), 0, "ITE chain is TEST-free");
        assert!(two.graph.num_tests() >= dg.graph.num_tests());
        // The chain has (near-)constant execution time: every condition is
        // evaluated on every reaction, so only the guarded action bodies
        // spread the bounds — far less than the decision graph's early
        // exits (the paper's "exactly the same time" holds at s-graph
        // granularity).
        let spread = |m: &Measured| m.max_cycles - m.min_cycles;
        assert!(
            spread(&chain.measured) < spread(&dg.measured),
            "chain spread {} vs decision-graph spread {}",
            spread(&chain.measured),
            spread(&dg.measured)
        );
    }

    #[test]
    fn network_synthesis_totals_add_up() {
        let net = workloads::seat_belt();
        let r = synthesize_network(&net, &SynthesisOptions::default(), &RtosConfig::default());
        assert_eq!(r.machines.len(), net.cfsms().len());
        let rom_sum: u64 = r.machines.iter().map(|m| m.measured.size_bytes).sum();
        assert!(r.total_rom > rom_sum);
        assert!(r.rtos_c.contains("scheduler"));
    }
}
