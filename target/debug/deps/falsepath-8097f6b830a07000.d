/root/repo/target/debug/deps/falsepath-8097f6b830a07000.d: crates/bench/src/bin/falsepath.rs

/root/repo/target/debug/deps/libfalsepath-8097f6b830a07000.rmeta: crates/bench/src/bin/falsepath.rs

crates/bench/src/bin/falsepath.rs:
