/root/repo/target/debug/deps/synthesis-224bd8194923c2e8.d: crates/bench/benches/synthesis.rs Cargo.toml

/root/repo/target/debug/deps/libsynthesis-224bd8194923c2e8.rmeta: crates/bench/benches/synthesis.rs Cargo.toml

crates/bench/benches/synthesis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
