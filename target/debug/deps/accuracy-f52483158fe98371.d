/root/repo/target/debug/deps/accuracy-f52483158fe98371.d: crates/estimate/tests/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-f52483158fe98371.rmeta: crates/estimate/tests/accuracy.rs Cargo.toml

crates/estimate/tests/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
