//! Reorder-correctness under node reclamation: seeded random sift schedules
//! must preserve `eval` semantics, and after garbage collection the unique
//! tables must contain exactly the live reachable nodes (offline-safe, no
//! external property-testing framework).

use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, NodeRef, Var};
use polis_core::random::Rng;

const NVARS: usize = 8;

/// A random two-literal-term expression folded into an accumulator.
fn random_function(b: &mut Bdd, vars: &[Var], rng: &mut Rng) -> NodeRef {
    let mut f = if rng.bool() {
        NodeRef::TRUE
    } else {
        NodeRef::FALSE
    };
    let terms = 3 + rng.usize(0..6);
    for _ in 0..terms {
        let a = b.var(vars[rng.usize(0..vars.len())]);
        let c = b.var(vars[rng.usize(0..vars.len())]);
        let t = match rng.usize(0..3) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            _ => b.xor(a, c),
        };
        f = match rng.usize(0..3) {
            0 => b.and(f, t),
            1 => b.or(f, t),
            _ => b.xor(f, t),
        };
    }
    f
}

fn truth_table(b: &Bdd, f: NodeRef) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| b.eval(f, |v: Var| bits & (1 << v.0) != 0))
        .collect()
}

#[test]
fn random_sift_schedules_preserve_eval() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(0x4ec_1a1 ^ seed.wrapping_mul(0x9e37));
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..NVARS).map(|i| b.new_var(format!("v{i}"))).collect();
        let roots: Vec<NodeRef> = (0..2)
            .map(|_| random_function(&mut b, &vars, &mut rng))
            .collect();
        let tables: Vec<Vec<bool>> = roots.iter().map(|&f| truth_table(&b, f)).collect();

        for round in 0..6 {
            match rng.usize(0..3) {
                0 => b.swap_levels(rng.usize(0..NVARS - 1)),
                1 => {
                    b.sift(&roots, &SiftConfig::single_pass());
                }
                _ => {
                    b.sift(&roots, &SiftConfig::to_convergence());
                }
            }
            for (f, table) in roots.iter().zip(&tables) {
                assert_eq!(
                    truth_table(&b, *f),
                    *table,
                    "seed {seed}, round {round}: schedule changed the function"
                );
            }
        }
        // Hash-consing must still be canonical after the whole schedule.
        let a = b.var(vars[0]);
        let c = b.var(vars[1]);
        let f1 = b.and(a, c);
        let f2 = b.and(c, a);
        assert_eq!(f1, f2, "seed {seed}: canonicity lost after sifting");
    }
}

#[test]
fn unique_entries_equal_live_reachable_after_gc() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0x6c_0ff ^ seed.wrapping_mul(0x51ed));
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..NVARS).map(|i| b.new_var(format!("v{i}"))).collect();
        let keep = random_function(&mut b, &vars, &mut rng);
        let _garbage = random_function(&mut b, &vars, &mut rng);
        b.gc(&[keep]);
        let live = b.size(&[keep]) as u64;
        assert_eq!(
            b.stats().unique_entries,
            live,
            "seed {seed}: unique tables out of sync with reachable nodes after gc"
        );
        assert_eq!(b.allocated_nodes() as u64, live, "seed {seed}");

        // Sifting garbage-collects first and reclaims in place, so the
        // invariant must also hold right after a convergence sift.
        b.sift(&[keep], &SiftConfig::to_convergence());
        let live = b.size(&[keep]) as u64;
        assert_eq!(
            b.stats().unique_entries,
            live,
            "seed {seed}: unique tables out of sync after sifting"
        );
        assert_eq!(b.allocated_nodes() as u64, live, "seed {seed}");
    }
}

#[test]
fn sifting_reclaims_dead_swap_nodes() {
    // Interleaved-pair worst order: sifting reshapes the graph heavily, so
    // swap-time reclamation must recycle nodes instead of growing the arena.
    let mut b = Bdd::new();
    let pairs = 6;
    let evens: Vec<Var> = (0..pairs)
        .map(|i| b.new_var(format!("x{}", 2 * i)))
        .collect();
    let odds: Vec<Var> = (0..pairs)
        .map(|i| b.new_var(format!("x{}", 2 * i + 1)))
        .collect();
    let mut f = NodeRef::FALSE;
    for i in 0..pairs {
        let a = b.var(evens[i]);
        let c = b.var(odds[i]);
        let t = b.and(a, c);
        f = b.or(f, t);
    }
    let after = b.sift(&[f], &SiftConfig::to_convergence());
    let stats = b.stats();
    assert!(stats.reclaimed_nodes > 0, "sifting must reclaim dead nodes");
    assert_eq!(
        b.allocated_nodes(),
        after,
        "arena must hold exactly the live nodes after sifting"
    );
    assert_eq!(after, b.size(&[f]));
    assert!(
        stats.peak_live_nodes < 4 * (1 << pairs),
        "reclamation must bound the arena high-water mark (peak {})",
        stats.peak_live_nodes
    );
}
