/root/repo/target/debug/deps/polis_lang-3be27a625a76cb4a.d: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/debug/deps/libpolis_lang-3be27a625a76cb4a.rmeta: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

crates/lang/src/lib.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
