//! The reactive function of a CFSM as a BDD-represented characteristic
//! function.
//!
//! Following Section III-B1, a CFSM transition function is split into tests,
//! actions, and a purely Boolean *reactive function* `f` mapping subsets of
//! tests to subsets of actions. `f` is represented by its characteristic
//! function `χ(x, z)` (Section II-C): `χ = 1` iff output assignment `z` is
//! allowed for input assignment `x`.
//!
//! Input variables of `χ` (in declaration order):
//!
//! 1. one presence flag per input signal,
//! 2. the binary-encoded control state (a sifting group),
//! 3. one boolean per data test.
//!
//! Output variables:
//!
//! 1. `consume` — 1 iff some transition fired (drives RTOS event
//!    consumption, Section IV-D),
//! 2. one boolean per action,
//! 3. the binary-encoded next control state (a sifting group).
//!
//! The next control state is *unconstrained* when no transition fires, so a
//! reaction that fires nothing generates no next-state assignment — the
//! don't-care flexibility of Section III-B2. `χ` is therefore in general an
//! incompletely specified function; the s-graph builder resolves don't
//! cares by emitting no assignment (the "cheapest option" in the paper).

use crate::machine::{Cfsm, Guard};
use polis_bdd::encode::MvVar;
use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, NodeRef};
use std::collections::HashMap;

/// Which side of the reactive function a variable belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Tested by the reactive function.
    Input,
    /// Produced by the reactive function.
    Output,
}

/// Location of a BDD variable within the reactive function's variable list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarLoc {
    /// Input or output side.
    pub side: Side,
    /// Index into [`ReactiveFn::inputs`] or [`ReactiveFn::outputs`].
    pub var: usize,
    /// Bit position within the variable (0 = MSB), for multi-bit variables.
    pub bit: usize,
}

/// What a reactive-function variable means to the synthesized code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfVarKind {
    /// Presence flag of the input signal with the given index (an RTOS
    /// event-detection call in generated code).
    Present {
        /// Index into [`Cfsm::inputs`].
        input: usize,
    },
    /// The current control state (multi-valued).
    Ctrl,
    /// The data test with the given index (an expression evaluation).
    Test {
        /// Index into [`Cfsm::tests`].
        test: usize,
    },
    /// The implicit "a transition fired, consume inputs" flag.
    Consume,
    /// The action with the given index (an emission or assignment).
    Action {
        /// Index into [`Cfsm::actions`].
        action: usize,
    },
    /// The next control state (multi-valued).
    NextCtrl,
}

/// One (possibly multi-bit) variable of the reactive function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfVar {
    /// Diagnostic name.
    pub name: String,
    /// Meaning for synthesis.
    pub kind: RfVarKind,
    /// The encoding bits, MSB first (length 1 for booleans).
    pub bits: Vec<polis_bdd::Var>,
    /// Domain size (2 for booleans).
    pub domain: u64,
}

/// Variable-ordering schemes from Section III-B3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderScheme {
    /// The declaration order, unsifted ("naive ordering" in Table II).
    Natural,
    /// Sifting restricted so all outputs appear after all inputs.
    OutputsAfterAllInputs,
    /// Sifting restricted so each output appears after its own support
    /// (the paper's default: better subgraph sharing, smaller code).
    OutputsAfterSupport,
}

/// The BDD of a CFSM's characteristic function, with variable metadata.
///
/// Build with [`ReactiveFn::build`], optimize the order with
/// [`ReactiveFn::sift`], then hand to the s-graph builder.
#[derive(Debug)]
pub struct ReactiveFn {
    name: String,
    bdd: Bdd,
    chi: NodeRef,
    inputs: Vec<RfVar>,
    outputs: Vec<RfVar>,
    loc: HashMap<polis_bdd::Var, VarLoc>,
}

impl ReactiveFn {
    /// Constructs `χ` for `cfsm`.
    ///
    /// Machines with a single control state get no control-state variables
    /// (the state contributes nothing to the function).
    pub fn build(cfsm: &Cfsm) -> ReactiveFn {
        let mut bdd = Bdd::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();

        // -- input variables --
        for (i, sig) in cfsm.inputs().iter().enumerate() {
            let v = bdd.new_var(crate::signal::present_flag_name(sig.name()));
            inputs.push(RfVar {
                name: crate::signal::present_flag_name(sig.name()),
                kind: RfVarKind::Present { input: i },
                bits: vec![v],
                domain: 2,
            });
        }
        let nstates = cfsm.states().len() as u64;
        let ctrl = (nstates > 1).then(|| {
            let mv = MvVar::new(&mut bdd, "ctrl", nstates);
            inputs.push(RfVar {
                name: "ctrl".to_owned(),
                kind: RfVarKind::Ctrl,
                bits: mv.bits().to_vec(),
                domain: nstates,
            });
            mv
        });
        for (i, t) in cfsm.tests().iter().enumerate() {
            let v = bdd.new_var(format!("test_{}", t.name));
            inputs.push(RfVar {
                name: format!("test_{}", t.name),
                kind: RfVarKind::Test { test: i },
                bits: vec![v],
                domain: 2,
            });
        }

        // -- output variables --
        let consume = bdd.new_var("consume");
        outputs.push(RfVar {
            name: "consume".to_owned(),
            kind: RfVarKind::Consume,
            bits: vec![consume],
            domain: 2,
        });
        for (i, _) in cfsm.actions().iter().enumerate() {
            let name = format!("act_{}", cfsm.action_label(i));
            let v = bdd.new_var(name.clone());
            outputs.push(RfVar {
                name,
                kind: RfVarKind::Action { action: i },
                bits: vec![v],
                domain: 2,
            });
        }
        let next_ctrl = (nstates > 1).then(|| {
            let mv = MvVar::new(&mut bdd, "next_ctrl", nstates);
            outputs.push(RfVar {
                name: "next_ctrl".to_owned(),
                kind: RfVarKind::NextCtrl,
                bits: mv.bits().to_vec(),
                domain: nstates,
            });
            mv
        });

        // -- transition conditions with per-state priority resolution --
        let present_var = |rf: &ReactiveFn, i: usize| {
            rf.inputs
                .iter()
                .find(|v| v.kind == RfVarKind::Present { input: i })
                .expect("present var")
                .bits[0]
        };
        let test_var = |rf: &ReactiveFn, i: usize| {
            rf.inputs
                .iter()
                .find(|v| v.kind == RfVarKind::Test { test: i })
                .expect("test var")
                .bits[0]
        };

        let mut rf = ReactiveFn {
            name: cfsm.name().to_owned(),
            bdd,
            chi: NodeRef::FALSE,
            inputs,
            outputs,
            loc: HashMap::new(),
        };

        let mut conds: Vec<NodeRef> = Vec::with_capacity(cfsm.num_transitions());
        let mut taken_per_state: Vec<NodeRef> = vec![NodeRef::FALSE; cfsm.states().len()];
        for t in cfsm.transitions() {
            let in_state = match &ctrl {
                Some(mv) => mv.eq_const(&mut rf.bdd, t.from as u64),
                None => NodeRef::TRUE,
            };
            let guard = guard_to_bdd(&t.guard, &mut rf, &present_var, &test_var);
            let raw = rf.bdd.and(in_state, guard);
            let not_taken = rf.bdd.not(taken_per_state[t.from]);
            let cond = rf.bdd.and(raw, not_taken);
            taken_per_state[t.from] = rf.bdd.or(taken_per_state[t.from], raw);
            conds.push(cond);
        }
        let fired = rf.bdd.or_all(conds.iter().copied());

        // -- χ accumulation --
        let consume_pos = rf.bdd.var(consume);
        let consume_neg = rf.bdd.nvar(consume);
        let action_vars: Vec<polis_bdd::Var> = rf
            .outputs
            .iter()
            .filter(|v| matches!(v.kind, RfVarKind::Action { .. }))
            .map(|v| v.bits[0])
            .collect();

        let mut chi = NodeRef::FALSE;
        for (t, &cond) in cfsm.transitions().iter().zip(&conds) {
            if cond.is_false() {
                continue;
            }
            let mut term = rf.bdd.and(cond, consume_pos);
            for (ai, &av) in action_vars.iter().enumerate() {
                let lit = if t.actions.contains(&ai) {
                    rf.bdd.var(av)
                } else {
                    rf.bdd.nvar(av)
                };
                term = rf.bdd.and(term, lit);
            }
            if let Some(mv) = &next_ctrl {
                let eq = mv.eq_const(&mut rf.bdd, t.to as u64);
                term = rf.bdd.and(term, eq);
            }
            chi = rf.bdd.or(chi, term);
        }
        // Default: nothing fired, nothing emitted, next state unconstrained
        // (don't care — the implementation keeps the state by not writing).
        let mut dflt = rf.bdd.not(fired);
        dflt = rf.bdd.and(dflt, consume_neg);
        for &av in &action_vars {
            let lit = rf.bdd.nvar(av);
            dflt = rf.bdd.and(dflt, lit);
        }
        chi = rf.bdd.or(chi, dflt);

        rf.chi = chi;
        rf.bdd.gc(&[chi]);
        rf.rebuild_loc();
        rf
    }

    fn rebuild_loc(&mut self) {
        self.loc.clear();
        for (side, list) in [(Side::Input, &self.inputs), (Side::Output, &self.outputs)] {
            for (vi, rv) in list.iter().enumerate() {
                for (bi, &b) in rv.bits.iter().enumerate() {
                    self.loc.insert(
                        b,
                        VarLoc {
                            side,
                            var: vi,
                            bit: bi,
                        },
                    );
                }
            }
        }
    }

    /// The name of the CFSM this reactive function belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying BDD manager.
    pub fn bdd(&self) -> &Bdd {
        &self.bdd
    }

    /// Mutable access to the manager (for quantification by analyses).
    pub fn bdd_mut(&mut self) -> &mut Bdd {
        &mut self.bdd
    }

    /// The characteristic function.
    pub fn chi(&self) -> NodeRef {
        self.chi
    }

    /// Input variables, in declaration order.
    pub fn inputs(&self) -> &[RfVar] {
        &self.inputs
    }

    /// Output variables, in declaration order.
    pub fn outputs(&self) -> &[RfVar] {
        &self.outputs
    }

    /// Locates a BDD variable within the input/output lists.
    pub fn locate(&self, v: polis_bdd::Var) -> Option<VarLoc> {
        self.loc.get(&v).copied()
    }

    /// Current BDD size of `χ`.
    pub fn size(&self) -> usize {
        self.bdd.size(&[self.chi])
    }

    /// For each output variable, the set of *input* variables in its
    /// support: the inputs on which the (partially specified) output
    /// function essentially depends.
    pub fn output_supports(&mut self) -> Vec<Vec<polis_bdd::Var>> {
        let all_output_bits: Vec<polis_bdd::Var> = self
            .outputs
            .iter()
            .flat_map(|o| o.bits.iter().copied())
            .collect();
        let mut out = Vec::with_capacity(self.outputs.len());
        for oi in 0..self.outputs.len() {
            let own: Vec<polis_bdd::Var> = self.outputs[oi].bits.clone();
            let others = all_output_bits.iter().copied().filter(|b| !own.contains(b));
            let others_cube = self.bdd.cube(others);
            let h = self.bdd.exists_cube(self.chi, others_cube);
            let sup: Vec<polis_bdd::Var> = self
                .bdd
                .support(h)
                .into_iter()
                .filter(|v| {
                    matches!(
                        self.loc.get(v),
                        Some(VarLoc {
                            side: Side::Input,
                            ..
                        })
                    )
                })
                .collect();
            out.push(sup);
        }
        self.bdd.gc(&[self.chi]);
        out
    }

    /// Optimizes the variable order by a single sifting pass under the
    /// constraints of `scheme` (Section III-B3b). Returns the resulting
    /// BDD size. [`OrderScheme::Natural`] leaves the order untouched.
    pub fn sift(&mut self, scheme: OrderScheme) -> usize {
        self.sift_with_passes(scheme, 1)
    }

    /// Like [`ReactiveFn::sift`] with an explicit pass budget
    /// (`usize::MAX` = to convergence).
    pub fn sift_with_passes(&mut self, scheme: OrderScheme, passes: usize) -> usize {
        if scheme == OrderScheme::Natural {
            return self.size();
        }
        let groups: Vec<Vec<polis_bdd::Var>> = self
            .inputs
            .iter()
            .chain(&self.outputs)
            .filter(|v| v.bits.len() > 1)
            .map(|v| v.bits.clone())
            .collect();
        let mut precedence = Vec::new();
        match scheme {
            OrderScheme::Natural => unreachable!(),
            OrderScheme::OutputsAfterAllInputs => {
                for i in &self.inputs {
                    for o in &self.outputs {
                        precedence.push((i.bits[0], o.bits[0]));
                    }
                }
            }
            OrderScheme::OutputsAfterSupport => {
                let supports = self.output_supports();
                for (oi, sup) in supports.iter().enumerate() {
                    for &iv in sup {
                        precedence.push((iv, self.outputs[oi].bits[0]));
                    }
                }
            }
        }
        let config = SiftConfig {
            precedence,
            groups,
            max_passes: passes,
        };
        let roots = [self.chi];
        self.bdd.sift(&roots, &config)
    }
}

fn guard_to_bdd(
    g: &Guard,
    rf: &mut ReactiveFn,
    present_var: &impl Fn(&ReactiveFn, usize) -> polis_bdd::Var,
    test_var: &impl Fn(&ReactiveFn, usize) -> polis_bdd::Var,
) -> NodeRef {
    match g {
        Guard::True => NodeRef::TRUE,
        Guard::False => NodeRef::FALSE,
        Guard::Present(i) => {
            let v = present_var(rf, *i);
            rf.bdd.var(v)
        }
        Guard::Test(i) => {
            let v = test_var(rf, *i);
            rf.bdd.var(v)
        }
        Guard::Not(x) => {
            let fx = guard_to_bdd(x, rf, present_var, test_var);
            rf.bdd.not(fx)
        }
        Guard::And(a, b) => {
            let fa = guard_to_bdd(a, rf, present_var, test_var);
            let fb = guard_to_bdd(b, rf, present_var, test_var);
            rf.bdd.and(fa, fb)
        }
        Guard::Or(a, b) => {
            let fa = guard_to_bdd(a, rf, present_var, test_var);
            let fb = guard_to_bdd(b, rf, present_var, test_var);
            rf.bdd.or(fa, fb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_expr::{Expr, Type, Value};

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    /// A two-state machine to exercise ctrl/next_ctrl encoding.
    fn toggler() -> Cfsm {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("on");
        b.output_pure("off");
        let s_off = b.ctrl_state("off");
        let s_on = b.ctrl_state("on");
        b.transition(s_off, s_on)
            .when_present("tick")
            .emit("on")
            .done();
        b.transition(s_on, s_off)
            .when_present("tick")
            .emit("off")
            .done();
        b.build().unwrap()
    }

    fn bit_of(rf: &ReactiveFn, name: &str) -> polis_bdd::Var {
        rf.inputs()
            .iter()
            .chain(rf.outputs())
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("no rf var {name}"))
            .bits[0]
    }

    #[test]
    fn simple_has_no_ctrl_vars() {
        let rf = ReactiveFn::build(&simple());
        assert!(rf.inputs().iter().all(|v| v.kind != RfVarKind::Ctrl));
        assert!(rf.outputs().iter().all(|v| v.kind != RfVarKind::NextCtrl));
        // inputs: present_c, test; outputs: consume + 3 actions
        assert_eq!(rf.inputs().len(), 2);
        assert_eq!(rf.outputs().len(), 4);
    }

    #[test]
    fn simple_chi_is_functional_with_four_input_combos() {
        let rf = ReactiveFn::build(&simple());
        // For each of the 4 input combinations exactly one output
        // assignment satisfies χ (no don't cares here).
        assert_eq!(rf.bdd().sat_count(rf.chi()), 4);
    }

    #[test]
    fn simple_chi_encodes_the_reaction() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let pc = bit_of(&rf, "present_c");
        let tq = bit_of(&rf, "test_a_eq_c");
        let consume = bit_of(&rf, "consume");
        // Locate action bits by label.
        let act = |label: &str| bit_of(&rf, &format!("act_{label}"));
        let a_zero = act(&format!("set_a_{}", 0)); // first action: a := 0
        let emit_y = act("emit_y");
        let a_inc = act(&format!("set_a_{}", 2)); // third action: a := a+1

        // present & equal -> consume, a:=0, emit y
        let assign1 = |v: polis_bdd::Var| [pc, tq, consume, a_zero, emit_y].contains(&v);
        assert!(rf.bdd().eval(rf.chi(), assign1));
        // present & not equal -> consume, a:=a+1 only
        let assign2 = |v: polis_bdd::Var| [pc, consume, a_inc].contains(&v);
        assert!(rf.bdd().eval(rf.chi(), assign2));
        // absent -> nothing
        let assign3 = |_v: polis_bdd::Var| false;
        assert!(rf.bdd().eval(rf.chi(), assign3));
        // absent but consuming -> forbidden
        let assign4 = |v: polis_bdd::Var| v == consume;
        assert!(!rf.bdd().eval(rf.chi(), assign4));
        // present & equal but no emission -> forbidden
        let assign5 = |v: polis_bdd::Var| [pc, tq, consume, a_zero].contains(&v);
        assert!(!rf.bdd().eval(rf.chi(), assign5));
    }

    #[test]
    fn toggler_has_ctrl_group() {
        let rf = ReactiveFn::build(&toggler());
        let ctrl = rf.inputs().iter().find(|v| v.kind == RfVarKind::Ctrl);
        assert!(ctrl.is_some());
        assert_eq!(ctrl.unwrap().domain, 2);
        let nc = rf
            .outputs()
            .iter()
            .find(|v| v.kind == RfVarKind::NextCtrl)
            .unwrap();
        assert_eq!(nc.bits.len(), 1);
    }

    #[test]
    fn toggler_next_state_is_constrained_when_fired() {
        let rf = ReactiveFn::build(&toggler());
        let tick = bit_of(&rf, "present_tick");
        let ctrl = bit_of(&rf, "ctrl");
        let consume = bit_of(&rf, "consume");
        let on = bit_of(&rf, "act_emit_on");
        let off = bit_of(&rf, "act_emit_off");
        let nc = bit_of(&rf, "next_ctrl");
        // off --tick--> on (state 0 -> 1), emits `on`.
        let a = |v: polis_bdd::Var| [tick, consume, on, nc].contains(&v);
        assert!(rf.bdd().eval(rf.chi(), a));
        // wrong next state forbidden
        let b = |v: polis_bdd::Var| [tick, consume, on].contains(&v);
        assert!(!rf.bdd().eval(rf.chi(), b));
        // on --tick--> off, emits `off`.
        let c = |v: polis_bdd::Var| [tick, ctrl, consume, off].contains(&v);
        assert!(rf.bdd().eval(rf.chi(), c));
    }

    #[test]
    fn default_leaves_next_state_dont_care() {
        let rf = ReactiveFn::build(&toggler());
        let nc = bit_of(&rf, "next_ctrl");
        // tick absent, nothing fires: χ holds for both next_ctrl values.
        let a0 = |_v: polis_bdd::Var| false;
        let a1 = |v: polis_bdd::Var| v == nc;
        assert!(rf.bdd().eval(rf.chi(), a0));
        assert!(rf.bdd().eval(rf.chi(), a1));
    }

    #[test]
    fn output_supports_are_plausible() {
        let mut rf = ReactiveFn::build(&simple());
        let sups = rf.output_supports();
        let pc = bit_of(&rf, "present_c");
        let tq = bit_of(&rf, "test_a_eq_c");
        // consume depends on present_c only (it fires for both test values).
        let consume_idx = rf
            .outputs()
            .iter()
            .position(|v| v.kind == RfVarKind::Consume)
            .unwrap();
        assert_eq!(sups[consume_idx], vec![pc]);
        // every action depends on both inputs
        for (oi, o) in rf.outputs().iter().enumerate() {
            if matches!(o.kind, RfVarKind::Action { .. }) {
                assert!(sups[oi].contains(&pc), "{}", o.name);
                assert!(sups[oi].contains(&tq), "{}", o.name);
            }
        }
    }

    #[test]
    fn sifting_respects_outputs_after_support() {
        let mut rf = ReactiveFn::build(&toggler());
        rf.sift_with_passes(OrderScheme::OutputsAfterSupport, usize::MAX);
        let sups = rf.output_supports();
        for (oi, sup) in sups.iter().enumerate() {
            let obit = rf.outputs()[oi].bits[0];
            for &iv in sup {
                assert!(
                    rf.bdd().level(iv) < rf.bdd().level(obit),
                    "output {} sifted above its support",
                    rf.outputs()[oi].name
                );
            }
        }
    }

    #[test]
    fn sifting_respects_outputs_after_all_inputs() {
        let mut rf = ReactiveFn::build(&toggler());
        rf.sift_with_passes(OrderScheme::OutputsAfterAllInputs, usize::MAX);
        let max_in = rf
            .inputs()
            .iter()
            .flat_map(|v| &v.bits)
            .map(|&b| rf.bdd().level(b))
            .max()
            .unwrap();
        let min_out = rf
            .outputs()
            .iter()
            .flat_map(|v| &v.bits)
            .map(|&b| rf.bdd().level(b))
            .min()
            .unwrap();
        assert!(max_in < min_out);
    }

    #[test]
    fn sifting_never_grows_chi() {
        for m in [simple(), toggler()] {
            let mut rf = ReactiveFn::build(&m);
            let before = rf.size();
            let after = rf.sift(OrderScheme::OutputsAfterSupport);
            assert!(after <= before, "{}: {before} -> {after}", m.name());
        }
    }
}
