//! Instruction selection: s-graph → virtual object code.
//!
//! Mirrors the C translation of Section III-B4 — each s-graph vertex
//! becomes a short, fixed-shape instruction sequence (the property that
//! makes parameter-per-vertex cost estimation accurate) — but targets the
//! virtual ISA directly so code size and cycles can be *measured*
//! independently of the estimator.

use crate::inst::{Inst, SlotInfo, SlotKind, VmProgram};
use polis_cfsm::{Action, Cfsm};
use polis_expr::{Expr, Type, UnOp};
use polis_sgraph::{analysis, AssignLabel, ComputedTarget, Cond, NodeId, SGraph, SNode, TestLabel};
use std::collections::{BTreeSet, HashMap};

pub use polis_sgraph::BufferPolicy;

/// Compiles one CFSM reaction (as an s-graph) into a virtual routine.
pub fn compile(cfsm: &Cfsm, g: &SGraph, policy: BufferPolicy) -> VmProgram {
    let buffered: BTreeSet<String> = match policy {
        BufferPolicy::All => analysis::vars_referenced(cfsm, g),
        BufferPolicy::Minimal => analysis::vars_needing_buffer(cfsm, g),
    };

    // -- slot table --
    let mut slots: Vec<SlotInfo> = Vec::new();
    let mut state_slot: HashMap<String, u16> = HashMap::new();
    let mut local_slot: HashMap<String, u16> = HashMap::new();
    for v in cfsm.state_vars() {
        state_slot.insert(v.name.clone(), slots.len() as u16);
        slots.push(SlotInfo {
            name: v.name.clone(),
            ty: v.ty,
            kind: SlotKind::State,
            init: v.init.coerce(v.ty).as_int().unwrap_or(0),
        });
    }
    for name in &buffered {
        let of = state_slot[name];
        local_slot.insert(name.clone(), slots.len() as u16);
        slots.push(SlotInfo {
            name: format!("{name}_local"),
            ty: slots[of as usize].ty,
            kind: SlotKind::LocalCopy { of },
            init: 0,
        });
    }
    let mut input_slot: HashMap<usize, u16> = HashMap::new();
    for (i, sig) in cfsm.inputs().iter().enumerate() {
        if let Some(ty) = sig.value_type() {
            input_slot.insert(i, slots.len() as u16);
            slots.push(SlotInfo {
                name: polis_cfsm::value_var_name(sig.name()),
                ty,
                kind: SlotKind::InputValue { input: i as u16 },
                init: 0,
            });
        }
    }
    let multi_state = cfsm.states().len() > 1;
    let ctrl_width = polis_bits_for(cfsm.states().len() as u64);
    let (ctrl_global, ctrl_read) = if multi_state {
        let global = slots.len() as u16;
        slots.push(SlotInfo {
            name: "ctrl".to_owned(),
            ty: Type::uint(ctrl_width.max(1) as u8),
            kind: SlotKind::Ctrl,
            init: cfsm.init_state() as i64,
        });
        let need_local = policy == BufferPolicy::All || ctrl_needs_buffer(g);
        let read = if need_local {
            let local = slots.len() as u16;
            slots.push(SlotInfo {
                name: "ctrl_local".to_owned(),
                ty: Type::uint(ctrl_width.max(1) as u8),
                kind: SlotKind::CtrlLocal,
                init: 0,
            });
            local
        } else {
            global
        };
        (Some(global), Some(read))
    } else {
        (None, None)
    };

    let mut e = Emitter {
        cfsm,
        g,
        insts: Vec::new(),
        labels: Vec::new(),
        node_label: HashMap::new(),
        emitted: vec![false; g.len()],
        state_slot,
        local_slot,
        input_slot,
        ctrl_global,
        ctrl_read,
    };

    // Prologue: entry copies (the Section V-B buffering).
    for name in &buffered {
        let global = e.state_slot[name];
        let local = e.local_slot[name];
        e.insts.push(Inst::PushVar(global));
        e.insts.push(Inst::StoreVar(local));
    }
    if let (Some(g_), Some(r)) = (ctrl_global, ctrl_read) {
        if g_ != r {
            e.insts.push(Inst::PushVar(g_));
            e.insts.push(Inst::StoreVar(r));
        }
    }

    e.emit_node(g.begin_next());
    let insts = e.finish();

    VmProgram {
        name: g.name().to_owned(),
        insts,
        slots,
        num_inputs: cfsm.inputs().len(),
        num_outputs: cfsm.outputs().len(),
        out_types: cfsm.outputs().iter().map(|s| s.value_type()).collect(),
    }
}

fn polis_bits_for(domain: u64) -> usize {
    if domain <= 2 {
        1
    } else {
        (64 - (domain - 1).leading_zeros()) as usize
    }
}

/// Does any path test the control state after writing the next state?
fn ctrl_needs_buffer(g: &SGraph) -> bool {
    let mut written: HashMap<NodeId, bool> = HashMap::new();
    for id in g.topo_order() {
        let before = *written.entry(id).or_default();
        let mut after = before;
        match g.node(id) {
            SNode::Test { label, .. } => {
                let reads_ctrl = matches!(
                    label,
                    TestLabel::CtrlBit { .. } | TestLabel::CtrlSwitch { .. }
                ) || matches!(label, TestLabel::Compound { cond } if cond_reads_ctrl(cond));
                if reads_ctrl && before {
                    return true;
                }
            }
            SNode::Assign { label, .. } => match label {
                AssignLabel::NextCtrlBits { .. } => after = true,
                AssignLabel::Computed { target, cond } => {
                    if cond_reads_ctrl(cond) && before {
                        return true;
                    }
                    if matches!(target, ComputedTarget::CtrlBit { .. }) {
                        after = true;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        let succs: Vec<NodeId> = match g.node(id) {
            SNode::Begin { next } | SNode::Assign { next, .. } => vec![*next],
            SNode::End => vec![],
            SNode::Test { children, .. } => children.clone(),
        };
        for s in succs {
            let entry = written.entry(s).or_default();
            *entry = *entry || after;
        }
    }
    false
}

fn cond_reads_ctrl(c: &Cond) -> bool {
    match c {
        Cond::CtrlBit { .. } => true,
        Cond::Not(a) => cond_reads_ctrl(a),
        Cond::And(a, b) | Cond::Or(a, b) => cond_reads_ctrl(a) || cond_reads_ctrl(b),
        _ => false,
    }
}

struct Emitter<'a> {
    cfsm: &'a Cfsm,
    g: &'a SGraph,
    insts: Vec<Inst>,
    /// Label id → bound instruction index.
    labels: Vec<Option<usize>>,
    node_label: HashMap<NodeId, usize>,
    emitted: Vec<bool>,
    state_slot: HashMap<String, u16>,
    local_slot: HashMap<String, u16>,
    input_slot: HashMap<usize, u16>,
    ctrl_global: Option<u16>,
    ctrl_read: Option<u16>,
}

impl Emitter<'_> {
    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        debug_assert!(self.labels[label].is_none(), "label bound twice");
        self.labels[label] = Some(self.insts.len());
    }

    fn label_of(&mut self, id: NodeId) -> usize {
        if let Some(&l) = self.node_label.get(&id) {
            return l;
        }
        let l = self.new_label();
        self.node_label.insert(id, l);
        l
    }

    fn goto(&mut self, id: NodeId) {
        if self.emitted[id.index()] {
            let l = self.label_of(id);
            self.insts.push(Inst::Jump(l));
        } else {
            self.emit_node(id);
        }
    }

    fn emit_node(&mut self, id: NodeId) {
        debug_assert!(!self.emitted[id.index()]);
        self.emitted[id.index()] = true;
        let l = self.label_of(id);
        self.bind(l);
        match self.g.node(id).clone() {
            SNode::Begin { .. } => unreachable!("BEGIN emitted via prologue"),
            SNode::End => self.insts.push(Inst::Return),
            SNode::Test { label, children } => {
                match &label {
                    TestLabel::Present { input } => {
                        self.insts.push(Inst::Detect(*input as u16));
                    }
                    TestLabel::TestExpr { test } => {
                        let e = self.cfsm.tests()[*test].expr.clone();
                        self.emit_expr(&e);
                    }
                    TestLabel::CtrlBit { bit, width } => {
                        self.insts.push(Inst::PushCtrlBit {
                            slot: self.ctrl_read.expect("ctrl slot"),
                            bit: *bit as u8,
                            width: *width as u8,
                        });
                    }
                    TestLabel::CtrlSwitch { .. } => {
                        let slot = self.ctrl_read.expect("ctrl slot");
                        self.insts.push(Inst::PushVar(slot));
                        let targets: Vec<usize> =
                            children.iter().map(|&c| self.label_of(c)).collect();
                        self.insts.push(Inst::JumpTable(targets));
                        for &c in &children {
                            if !self.emitted[c.index()] {
                                self.emit_node(c);
                            }
                        }
                        return;
                    }
                    TestLabel::Compound { cond } => self.emit_cond(cond),
                }
                // Binary test: branch to the true child, fall through to
                // the false child.
                let t1 = self.label_of(children[1]);
                self.insts.push(Inst::Branch {
                    when: true,
                    target: t1,
                });
                self.goto(children[0]);
                if !self.emitted[children[1].index()] {
                    self.emit_node(children[1]);
                }
            }
            SNode::Assign { label, next } => {
                match &label {
                    AssignLabel::Consume => self.insts.push(Inst::Consume),
                    AssignLabel::Action { action } => self.emit_action(*action),
                    AssignLabel::NextCtrlBits { bits, width } => {
                        self.insts.push(Inst::SetCtrlBits {
                            slot: self.ctrl_global.expect("ctrl slot"),
                            bits: bits.iter().map(|&(b, v)| (b as u8, v)).collect(),
                            width: *width as u8,
                        });
                    }
                    AssignLabel::Computed { target, cond } => {
                        self.emit_cond(cond);
                        match target {
                            ComputedTarget::Consume => {
                                let skip = self.new_label();
                                self.insts.push(Inst::Branch {
                                    when: false,
                                    target: skip,
                                });
                                self.insts.push(Inst::Consume);
                                self.bind(skip);
                            }
                            ComputedTarget::Action { action } => {
                                let skip = self.new_label();
                                self.insts.push(Inst::Branch {
                                    when: false,
                                    target: skip,
                                });
                                self.emit_action(*action);
                                self.bind(skip);
                            }
                            ComputedTarget::CtrlBit { bit, width } => {
                                self.insts.push(Inst::StoreCtrlBit {
                                    slot: self.ctrl_global.expect("ctrl slot"),
                                    bit: *bit as u8,
                                    width: *width as u8,
                                });
                            }
                        }
                    }
                }
                self.goto(next);
            }
        }
    }

    fn emit_action(&mut self, action: usize) {
        match &self.cfsm.actions()[action] {
            Action::Emit {
                signal,
                value: None,
            } => self.insts.push(Inst::EmitPure(*signal as u16)),
            Action::Emit {
                signal,
                value: Some(e),
            } => {
                let e = e.clone();
                self.emit_expr(&e);
                self.insts.push(Inst::EmitValued(*signal as u16));
            }
            Action::Assign { var, value } => {
                let e = value.clone();
                self.emit_expr(&e);
                let name = &self.cfsm.state_vars()[*var].name;
                let slot = self.state_slot[name];
                self.insts.push(Inst::StoreVar(slot));
            }
        }
    }

    fn resolve_var(&self, name: &str) -> u16 {
        if let Some(&local) = self.local_slot.get(name) {
            return local; // buffered reads go to the entry copy
        }
        if let Some(&slot) = self.state_slot.get(name) {
            return slot;
        }
        // Input value variable.
        for (i, sig) in self.cfsm.inputs().iter().enumerate() {
            if sig.is_valued() && polis_cfsm::value_var_name(sig.name()) == name {
                return self.input_slot[&i];
            }
        }
        panic!("unresolved variable `{name}` (CFSM validation should prevent this)");
    }

    fn emit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(v) => {
                let raw = match v {
                    polis_expr::Value::Bool(b) => i64::from(*b),
                    polis_expr::Value::Int(i) => *i,
                };
                self.insts.push(Inst::PushImm(raw));
            }
            Expr::Var(name) => {
                let slot = self.resolve_var(name);
                self.insts.push(Inst::PushVar(slot));
            }
            Expr::Unary(op, a) => {
                self.emit_expr(a);
                self.insts.push(Inst::Unary(*op));
            }
            Expr::Binary(op, a, b) => {
                self.emit_expr(a);
                self.emit_expr(b);
                self.insts.push(Inst::Binary(*op));
            }
            Expr::Ite(c, t, e2) => {
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.emit_expr(c);
                self.insts.push(Inst::Branch {
                    when: false,
                    target: l_else,
                });
                self.emit_expr(t);
                self.insts.push(Inst::Jump(l_end));
                self.bind(l_else);
                self.emit_expr(e2);
                self.bind(l_end);
            }
        }
    }

    fn emit_cond(&mut self, c: &Cond) {
        match c {
            Cond::Const(b) => self.insts.push(Inst::PushImm(i64::from(*b))),
            Cond::Present(i) => self.insts.push(Inst::Detect(*i as u16)),
            Cond::Test(t) => {
                let e = self.cfsm.tests()[*t].expr.clone();
                self.emit_expr(&e);
            }
            Cond::CtrlBit { bit, width } => self.insts.push(Inst::PushCtrlBit {
                slot: self.ctrl_read.expect("ctrl slot"),
                bit: *bit as u8,
                width: *width as u8,
            }),
            Cond::Not(a) => {
                self.emit_cond(a);
                self.insts.push(Inst::Unary(UnOp::Not));
            }
            Cond::And(a, b) => {
                self.emit_cond(a);
                self.emit_cond(b);
                self.insts.push(Inst::Binary(polis_expr::BinOp::And));
            }
            Cond::Or(a, b) => {
                self.emit_cond(a);
                self.emit_cond(b);
                self.insts.push(Inst::Binary(polis_expr::BinOp::Or));
            }
        }
    }

    /// Resolves label ids in branch targets to instruction indices.
    fn finish(mut self) -> Vec<Inst> {
        let resolve =
            |labels: &[Option<usize>], l: usize| -> usize { labels[l].expect("unbound label") };
        for inst in &mut self.insts {
            match inst {
                Inst::Branch { target, .. } | Inst::Jump(target) => {
                    *target = resolve(&self.labels, *target);
                }
                Inst::JumpTable(targets) => {
                    for t in targets {
                        *t = resolve(&self.labels, *t);
                    }
                }
                _ => {}
            }
        }
        self.insts
    }
}
