/root/repo/target/debug/deps/granularity-e3a4eb4e1091b515.d: crates/bench/src/bin/granularity.rs

/root/repo/target/debug/deps/libgranularity-e3a4eb4e1091b515.rmeta: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:
