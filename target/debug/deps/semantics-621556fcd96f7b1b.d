/root/repo/target/debug/deps/semantics-621556fcd96f7b1b.d: crates/rtos/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-621556fcd96f7b1b.rmeta: crates/rtos/tests/semantics.rs Cargo.toml

crates/rtos/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
