/root/repo/target/debug/examples/dashboard-0f0e287610d9850c.d: examples/dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libdashboard-0f0e287610d9850c.rmeta: examples/dashboard.rs Cargo.toml

examples/dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
