//! Frontier-based symbolic reachability to a fixpoint.
//!
//! Classic BFS image computation: `Reached₀ = Frontier₀ = Init`, then
//! repeatedly `New = ⋃ Image(step, Frontier) ∖ Reached` over the
//! partitioned relation until the frontier empties. Each image applies
//! the early-quantification schedule pre-computed in the step (tests
//! right after `χ`, actions right after the buffer updates, the consumed
//! current-state block last) as fused relational products
//! ([`Bdd::and_exists`]): the conjunct of the frontier with a relation
//! part is quantified on the fly and never materialized.
//!
//! Two further reductions keep the working set small:
//!
//! * the frontier handed to the next sweep is minimized against the
//!   reached set's don't-care space with [`Bdd::constrain`] — any
//!   function between `New ∖ Reached` and `Reached'` yields the same
//!   image frontier, so the generalized cofactor picks a smaller
//!   representative without changing any per-iteration reached set;
//! * when live nodes outgrow [`VerifyOptions::reorder_threshold`], the
//!   manager is sifted between iterations under the model's group
//!   constraints (flag cur/next rails and ctrl cur+next blocks stay
//!   contiguous).
//!
//! The arena is bounded by [`VerifyOptions::node_budget`]: after every
//! image the allocation level is checked, dead nodes are reclaimed
//! against the persistent roots, and if the live set alone exceeds the
//! budget the traversal aborts with
//! [`VerifyError::NodeBudgetExceeded`] instead of growing without bound.

use crate::model::{EnvStep, NetworkModel, ReactStep};
use crate::trace::TraceRings;
use crate::{VerifyError, VerifyOptions, VerifyStats};
use polis_bdd::{Bdd, NodeRef};

/// One environment-delivery image: quantify the consumer flags, then set
/// them with the same precomputed cube. Pure current-variable
/// substitution — no renaming needed.
fn env_image(bdd: &mut Bdd, step: &EnvStep, from: NodeRef) -> NodeRef {
    let a = bdd.exists_cube(from, step.cube);
    bdd.and(a, step.cube)
}

/// One machine-reaction image as a chain of two relational products
/// following the early-quantification schedule: tests fall right after
/// `χ`, actions and the consumed current-state block with the fused
/// `update_clear` part, then the next-state rail renamed back onto the
/// current one. (Renaming once per iteration after the union was tried
/// and discarded: the mixed-rail intermediate unions blow up.)
fn react_image(bdd: &mut Bdd, step: &ReactStep, from: NodeRef) -> NodeRef {
    let a = bdd.and_exists(from, step.chi_fire, step.tests_cube);
    let a = bdd.and_exists(a, step.update_clear, step.acts_cur_cube);
    bdd.rename(a, &step.rename)
}

/// Collections never fire while the arena is below this level, so small
/// and mid-size models keep their op caches warm for the whole traversal
/// (every seed example and the relay chains up to width 8 stay under it).
const GC_FLOOR: usize = 1 << 18;

/// After a collection the next one is armed at `GC_REGROW ×` the live
/// size (but never below [`GC_FLOOR`]), so a traversal whose live set
/// genuinely approaches the trigger does not thrash collections that
/// can reclaim almost nothing.
const GC_REGROW: usize = 4;

/// Reclaims dead nodes and errors out if the live set still exceeds the
/// budget. `persistent` are the model's fixed roots (relation, init,
/// cubes, enabling conditions); `live` are the traversal's working roots.
///
/// Besides the hard budget, a garbage-pressure policy bounds the peak
/// arena: once allocation crosses the current trigger ([`GC_FLOOR`] to
/// start, re-armed by [`GC_REGROW`] after each collection), the dead
/// majority is collected immediately instead of lingering until the
/// budget (or the reorder threshold) is hit. Collection never changes any
/// function a handle denotes, so reached sets and verdicts are untouched.
///
/// `rings` are the stored trace onion (shed first when the live set alone
/// busts the budget — traces degrade before the traversal aborts).
#[allow(clippy::too_many_arguments)] // three distinct root classes + the sheddable rings
fn enforce_budget(
    bdd: &mut Bdd,
    opts: &VerifyOptions,
    stats: &mut VerifyStats,
    gc_trigger: &mut usize,
    persistent: &[NodeRef],
    live: &[NodeRef],
    working: &[NodeRef],
    rings: &mut Option<TraceRings>,
) -> Result<(), VerifyError> {
    let allocated = bdd.allocated_nodes();
    if allocated <= *gc_trigger && allocated <= opts.node_budget {
        return Ok(());
    }
    let mut roots = persistent.to_vec();
    roots.extend_from_slice(live);
    roots.extend_from_slice(working);
    if let Some(r) = rings {
        roots.extend_from_slice(r.roots());
    }
    bdd.gc(&roots);
    stats.mid_reach_collections += 1;
    let mut live_now = bdd.allocated_nodes();
    if live_now > opts.node_budget && rings.is_some() {
        // Graceful degradation: the onion rings are diagnostic-only
        // state, so shed them (later property checks fall back to
        // cube-only witnesses) before giving up on the traversal.
        *rings = None;
        let mut roots = persistent.to_vec();
        roots.extend_from_slice(live);
        roots.extend_from_slice(working);
        bdd.gc(&roots);
        stats.mid_reach_collections += 1;
        live_now = bdd.allocated_nodes();
    }
    if live_now > opts.node_budget {
        return Err(VerifyError::NodeBudgetExceeded {
            budget: opts.node_budget,
            allocated: live_now,
            image_steps: stats.image_steps,
        });
    }
    *gc_trigger = (live_now * GC_REGROW).max(GC_FLOOR);
    Ok(())
}

/// Runs the traversal to a fixpoint, filling `stats`, and returns the
/// reachable set over the model's current-state variables plus — when
/// [`VerifyOptions::trace_rings`] is on — the frontier onion rings the
/// trace walker consumes. Ring storage never changes the reached sets,
/// iteration counts, or verdicts: rings are the `raw` new-state sets the
/// loop computes anyway, merely kept as extra GC/sift roots.
pub(crate) fn fixpoint(
    model: &mut NetworkModel,
    opts: &VerifyOptions,
    stats: &mut VerifyStats,
) -> Result<(NodeRef, Option<TraceRings>), VerifyError> {
    // The partitioned relation never changes during traversal; snapshot
    // its roots once so every reclamation keeps the step BDDs alive.
    let persistent = model.persistent_roots();
    let sift_cfg = model.sift_config();
    let base = model.bdd.stats();
    let mut reached = model.init;
    let mut frontier = model.init;
    let mut rings = opts.trace_rings.then(|| TraceRings {
        rings: vec![model.init],
        complete: true,
    });
    // Re-armed after every sift: the next reorder fires only once the
    // arena doubles past the post-sift level, so a traversal that simply
    // *stays* large after one reorder does not sift again on every
    // iteration.
    let mut next_reorder = opts.reorder_threshold;
    let mut gc_trigger = GC_FLOOR;
    while !frontier.is_false() {
        stats.iterations += 1;
        let mut imgs: Vec<NodeRef> =
            Vec::with_capacity(model.env_steps.len() + model.react_steps.len());
        for step in &model.env_steps {
            let img = env_image(&mut model.bdd, step, frontier);
            imgs.push(img);
            stats.image_steps += 1;
            enforce_budget(
                &mut model.bdd,
                opts,
                stats,
                &mut gc_trigger,
                &persistent,
                &[reached, frontier],
                &imgs,
                &mut rings,
            )?;
        }
        for step in &model.react_steps {
            let img = react_image(&mut model.bdd, step, frontier);
            imgs.push(img);
            stats.image_steps += 1;
            enforce_budget(
                &mut model.bdd,
                opts,
                stats,
                &mut gc_trigger,
                &persistent,
                &[reached, frontier],
                &imgs,
                &mut rings,
            )?;
        }
        // Balanced union instead of a left fold: adjacent partitions
        // share machine locality, and the tree never drags one big
        // accumulator across every remaining image.
        while imgs.len() > 1 {
            let mut next = Vec::with_capacity(imgs.len().div_ceil(2));
            for pair in imgs.chunks(2) {
                next.push(if pair.len() == 2 {
                    model.bdd.or(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            imgs = next;
            enforce_budget(
                &mut model.bdd,
                opts,
                stats,
                &mut gc_trigger,
                &persistent,
                &[reached, frontier],
                &imgs,
                &mut rings,
            )?;
        }
        let new = imgs.pop().unwrap_or(NodeRef::FALSE);
        // `raw = new ∖ reached` is the exact frontier; any superset of
        // it inside the updated reached set images to the same new states,
        // so constrain it against the pre-update complement to let it
        // shrink into the don't-care space (reached sets stay
        // bit-identical).
        let unseen = model.bdd.not(reached);
        let raw = model.bdd.and_not(new, reached);
        if let Some(r) = &mut rings {
            // `raw` is exactly the states first reached this iteration —
            // the next onion ring. Past the cap the prefix stays valid
            // (the walker just cannot serve targets beyond it).
            if r.rings.len() < opts.max_trace_rings {
                r.rings.push(raw);
            } else {
                r.complete = false;
            }
        }
        reached = model.bdd.or(reached, raw);
        frontier = model.bdd.constrain(raw, unseen);
        stats.constrain_calls += 1;
        let raw_size = model.bdd.size(&[raw]) as u64;
        let fsize = model.bdd.size(&[frontier]) as u64;
        stats.constrain_reduced_nodes += raw_size.saturating_sub(fsize);
        stats.frontier_sizes.push(fsize);
        stats.peak_frontier_nodes = stats.peak_frontier_nodes.max(fsize);
        enforce_budget(
            &mut model.bdd,
            opts,
            stats,
            &mut gc_trigger,
            &persistent,
            &[reached, frontier],
            &[],
            &mut rings,
        )?;
        if model.bdd.allocated_nodes() > next_reorder {
            let mut roots = persistent.clone();
            roots.push(reached);
            roots.push(frontier);
            if let Some(r) = &rings {
                roots.extend_from_slice(r.roots());
            }
            model.bdd.sift(&roots, &sift_cfg);
            stats.mid_reach_reorders += 1;
            next_reorder = (model.bdd.allocated_nodes() * 2).max(opts.reorder_threshold);
        }
    }
    let delta = diff_stats(&base, &model.bdd.stats());
    stats.andex_lookups = delta.0;
    stats.andex_hits = delta.1;
    stats.cube_quant_calls = delta.2;
    stats.reached_nodes = model.bdd.size(&[reached]) as u64;
    stats.peak_live_nodes = model.bdd.stats().peak_live_nodes;
    stats.reached_states = count_states(model, reached);
    Ok((reached, rings))
}

/// Kernel-counter deltas attributable to this traversal:
/// `(andex_lookups, andex_hits, cube_quant_calls)`.
fn diff_stats(base: &polis_bdd::BddStats, now: &polis_bdd::BddStats) -> (u64, u64, u64) {
    (
        now.andex_lookups - base.andex_lookups,
        now.andex_hits - base.andex_hits,
        now.cube_quant_calls - base.cube_quant_calls,
    )
}

/// Number of distinct product states in `set`: the satisfying-assignment
/// count scaled down by the auxiliary (non-state) variables the set does
/// not depend on.
pub(crate) fn count_states(model: &NetworkModel, set: NodeRef) -> Option<u128> {
    let total = model.bdd.checked_sat_count(set)?;
    let aux = model.bdd.num_vars() - model.state_vars.len();
    if aux >= 128 {
        // More auxiliary variables than u128 bits: the scaled count is 0
        // or the total overflowed anyway; give up rather than mis-shift.
        return None;
    }
    Some(total >> aux)
}
