//! Structural well-formedness of the generated C across every workload
//! machine, implementation style, and buffering policy: balanced braces,
//! resolved gotos, unique labels, and sane macro usage. (We cannot run a
//! C compiler here, so these checks stand in for `cc -fsyntax-only`.)

use polis_cfsm::{Cfsm, OrderScheme, ReactiveFn};
use polis_codegen::{emit_c, two_level_sgraph, CodegenOptions};
use polis_expr::CStyle;
use polis_lang::parse_network;
use polis_sgraph::{build, ite_chain, BufferPolicy, SGraph};
use std::collections::BTreeSet;

fn workload_machines() -> Vec<Cfsm> {
    // Inline copies of the core workloads (codegen cannot depend on
    // polis-core without a cycle) plus a couple of stress shapes.
    let dashboard = r#"
        module counter {
            input pulse, window;
            output ticks : u8;
            var cnt : u8 := 0;
            state counting, saturated;
            from counting to counting when window do { emit ticks(cnt); cnt := 0; }
            from counting to saturated when pulse && [cnt >= 200] ;
            from counting to counting when pulse do { cnt := cnt + 1; }
            from saturated to counting when window do { emit ticks(cnt); cnt := 0; }
        }
        module scaler {
            input ticks : u8;
            output level : u16;
            state s;
            from s to s when ticks do { emit level(?ticks * 3 + 1); }
        }
        module gate {
            input level : u16, enable;
            output high, low;
            var thr : u16 := 50;
            state armed, idle;
            from idle to armed when enable;
            from armed to idle when enable;
            from armed to armed when level && [?level >= thr] do { emit high; }
            from armed to armed when level do { emit low; }
        }
    "#;
    parse_network("w", dashboard)
        .expect("workload parses")
        .cfsms()
        .to_vec()
}

fn graphs_for(m: &Cfsm) -> Vec<(String, SGraph)> {
    let mut out = Vec::new();
    for scheme in [
        OrderScheme::Natural,
        OrderScheme::OutputsAfterAllInputs,
        OrderScheme::OutputsAfterSupport,
    ] {
        let mut rf = ReactiveFn::build(m);
        rf.sift(scheme);
        out.push((format!("{scheme:?}"), build(&rf).expect("builds")));
    }
    let mut rf = ReactiveFn::build(m);
    out.push(("IteChain".to_owned(), ite_chain(&mut rf)));
    out.push(("TwoLevel".to_owned(), two_level_sgraph(m)));
    out
}

fn check_c(label: &str, c: &str) {
    // Balanced braces and parentheses.
    let balance = |open: char, close: char| {
        let mut depth = 0i64;
        for ch in c.chars() {
            if ch == open {
                depth += 1;
            } else if ch == close {
                depth -= 1;
            }
            assert!(depth >= 0, "{label}: unbalanced {open}{close}\n{c}");
        }
        assert_eq!(depth, 0, "{label}: unbalanced {open}{close}\n{c}");
    };
    balance('{', '}');
    balance('(', ')');

    // Labels are unique; every goto targets one.
    let mut labels = BTreeSet::new();
    for line in c.lines() {
        let t = line.trim_start();
        if t.starts_with('L') && t.contains(':') {
            let name = t.split(':').next().unwrap();
            if name[1..].chars().all(|c| c.is_ascii_digit()) {
                assert!(labels.insert(name.to_owned()), "{label}: duplicate {name}");
            }
        }
    }
    for line in c.lines() {
        if let Some(pos) = line.find("goto ") {
            let target = line[pos + 5..].trim_end_matches(';').trim();
            assert!(
                labels.contains(target),
                "{label}: goto {target} unresolved\n{c}"
            );
        }
    }

    // Statements end with semicolons (spot check on macro lines).
    for line in c.lines() {
        let t = line.trim();
        if t.starts_with("POLIS_EMIT") || t.starts_with("POLIS_CONSUME") {
            assert!(t.ends_with(';'), "{label}: missing semicolon: {t}");
        }
    }
    // Exactly one return (the single END label).
    assert_eq!(
        c.matches("return;").count(),
        1,
        "{label}: expected exactly one return"
    );
}

#[test]
fn generated_c_is_structurally_sound_everywhere() {
    for m in workload_machines() {
        for (style_label, g) in graphs_for(&m) {
            for buffering in [BufferPolicy::All, BufferPolicy::Minimal] {
                for cstyle in [CStyle::Infix, CStyle::LibCalls] {
                    let opts = CodegenOptions {
                        style: cstyle,
                        buffering,
                        ..CodegenOptions::default()
                    };
                    let c = emit_c(&m, &g, &opts);
                    check_c(
                        &format!("{}/{}/{:?}/{:?}", m.name(), style_label, buffering, cstyle),
                        &c,
                    );
                }
            }
        }
    }
}

#[test]
fn switch_threshold_changes_dispatch_form() {
    // gate has 2 states; with a low threshold the CtrlSwitch may emit a
    // `switch`, with a high threshold an `if` chain.
    let machines = workload_machines();
    let gate = machines.iter().find(|m| m.name() == "gate").unwrap();
    let g = two_level_sgraph(gate);
    let low = emit_c(
        gate,
        &g,
        &CodegenOptions {
            switch_threshold: 2,
            ..CodegenOptions::default()
        },
    );
    let high = emit_c(
        gate,
        &g,
        &CodegenOptions {
            switch_threshold: 99,
            ..CodegenOptions::default()
        },
    );
    assert!(low.contains("switch (ctrl)"), "{low}");
    assert!(!high.contains("switch (ctrl)"), "{high}");
    assert!(high.contains("if (ctrl == 1)"), "{high}");
    check_c("gate/switch-low", &low);
    check_c("gate/switch-high", &high);
}
