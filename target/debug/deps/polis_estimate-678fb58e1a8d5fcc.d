/root/repo/target/debug/deps/polis_estimate-678fb58e1a8d5fcc.d: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/debug/deps/libpolis_estimate-678fb58e1a8d5fcc.rlib: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/debug/deps/libpolis_estimate-678fb58e1a8d5fcc.rmeta: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

crates/estimate/src/lib.rs:
crates/estimate/src/calibrate.rs:
crates/estimate/src/cost.rs:
crates/estimate/src/falsepath.rs:
crates/estimate/src/params.rs:
