//! The co-simulation engine.

use polis_cfsm::{value_var_name, CfsmState, Network, OrderScheme, ReactiveFn};
use polis_expr::MapEnv;
use polis_sgraph::{build, BufferPolicy, SGraph};
use polis_vm::{
    assemble, compile, run_reaction, ObjectCode, Profile, ReactionHost, VmMemory, VmProgram,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Scheduling policy for enabled software CFSMs (Section IV-A: "a user
/// chooses off-line one of the several available scheduling policies").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Cycle through tasks in declaration order.
    RoundRobin,
    /// Always dispatch the enabled task with the smallest priority value.
    /// `priorities[i]` belongs to the `i`-th machine of the network.
    StaticPriority {
        /// Smaller value = more urgent.
        priorities: Vec<u32>,
    },
}

/// How events from the environment (or hardware CFSMs) reach software
/// (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// An interrupt is requested; the ISR runs the emission routine
    /// immediately (costing [`RtosOverhead::isr`] cycles).
    Interrupt,
    /// A bit on an I/O port, sampled by a polling routine with the given
    /// period in cycles; delivery is deferred to the next polling instant.
    Polled {
        /// Polling period in CPU cycles.
        period: u64,
    },
}

/// Fixed cycle costs of generated RTOS services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtosOverhead {
    /// Scheduler decision + task dispatch, charged per reaction.
    pub dispatch: u64,
    /// Interrupt service routine for one event delivery.
    pub isr: u64,
    /// One execution of the polling routine.
    pub poll: u64,
}

impl Default for RtosOverhead {
    fn default() -> RtosOverhead {
        RtosOverhead {
            dispatch: 30,
            isr: 20,
            poll: 15,
        }
    }
}

/// Configuration of the generated RTOS.
#[derive(Debug, Clone)]
pub struct RtosConfig {
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// With [`SchedulingPolicy::StaticPriority`]: events arriving during a
    /// reaction immediately run strictly-more-urgent tasks before the
    /// interrupted task's bookkeeping completes ("with or without
    /// preemption", Section IV-A). Ignored under round-robin.
    pub preemptive: bool,
    /// Target cost profile for the synthesized routines.
    pub profile: Profile,
    /// Entry-copy buffering policy for the routines.
    pub buffering: BufferPolicy,
    /// Delivery mode per primary-input signal; unlisted signals default to
    /// [`DeliveryMode::Interrupt`] ("by default, all events are
    /// communicated through interrupts, but a user may specify any number
    /// of events to be polled").
    pub delivery: BTreeMap<String, DeliveryMode>,
    /// `(emitter, consumer)` machine pairs whose executions are chained
    /// into a single task: the consumer runs immediately after the
    /// emitter, with no scheduling or emission overhead ("the user can
    /// also instruct the system to bypass the RTOS and chain certain
    /// executions of CFSMs into a single task", Section IV-A).
    pub chains: BTreeSet<(String, String)>,
    /// Machines implemented in hardware (Section IV-C): they react
    /// instantly off-CPU ([`RtosConfig::hw_reaction_cycles`] after the
    /// triggering event) and deliver events to software through the
    /// configured delivery mode.
    pub hardware: BTreeSet<String>,
    /// Reaction latency of hardware CFSMs ("a straightforward synchronous
    /// hardware implementation takes only one cycle").
    pub hw_reaction_cycles: u64,
    /// Service costs.
    pub overhead: RtosOverhead,
}

impl Default for RtosConfig {
    fn default() -> RtosConfig {
        RtosConfig {
            policy: SchedulingPolicy::RoundRobin,
            preemptive: false,
            profile: Profile::Mcu8,
            buffering: BufferPolicy::All,
            delivery: BTreeMap::new(),
            chains: BTreeSet::new(),
            hardware: BTreeSet::new(),
            hw_reaction_cycles: 1,
            overhead: RtosOverhead::default(),
        }
    }
}

/// One environment event: `signal` occurs at `time` (cycles), optionally
/// carrying a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stimulus {
    /// Occurrence time in CPU cycles.
    pub time: u64,
    /// Signal name.
    pub signal: String,
    /// Carried value for valued signals.
    pub value: Option<i64>,
}

impl Stimulus {
    /// A pure stimulus.
    pub fn pure(time: u64, signal: impl Into<String>) -> Stimulus {
        Stimulus {
            time,
            signal: signal.into(),
            value: None,
        }
    }

    /// A valued stimulus.
    pub fn valued(time: u64, signal: impl Into<String>, value: i64) -> Stimulus {
        Stimulus {
            time,
            signal: signal.into(),
            value: Some(value),
        }
    }
}

/// One emission observed during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Completion time of the emitting reaction.
    pub time: u64,
    /// Signal name.
    pub signal: String,
    /// Carried value.
    pub value: Option<i64>,
    /// Emitting machine name.
    pub by: String,
}

/// Aggregate simulation metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Final simulated wall-clock time (includes idle gaps between
    /// stimuli).
    pub total_cycles: u64,
    /// CPU-busy cycles only: software reactions plus RTOS services.
    pub busy_cycles: u64,
    /// Reactions executed per task (hardware reactions included).
    pub reactions: Vec<u64>,
    /// Reactions that fired a transition, per task.
    pub fired: Vec<u64>,
    /// Events lost to one-place-buffer overwrites, per task.
    pub overwritten: Vec<u64>,
    /// Cycles spent in RTOS services (dispatch + ISR + polling).
    pub rtos_cycles: u64,
    /// Reactions executed through chaining (no dispatch overhead).
    pub chained_reactions: u64,
    /// Reactions executed preemptively inside an interrupt window.
    pub preempting_reactions: u64,
}

/// How a machine is realized.
enum Runtime {
    /// A synthesized software routine on the shared CPU.
    Sw {
        prog: VmProgram,
        obj: ObjectCode,
        mem: VmMemory,
    },
    /// A hardware CFSM: reacts instantly off-CPU via the reference
    /// semantics.
    Hw { state: CfsmState, values: MapEnv },
}

struct Task {
    name: String,
    cfsm: polis_cfsm::Cfsm,
    runtime: Runtime,
    /// Presence flags per input (the one-place buffers).
    flags: Vec<bool>,
    /// Arrivals during the task's own execution (Section IV-D).
    pending: Vec<(usize, Option<i64>)>,
    /// Section IV-A: a task becomes enabled when any of its input events
    /// occurs and is disabled once it finishes its execution — even if no
    /// transition fired (the preserved events re-arm it only together with
    /// a fresh arrival, preventing livelock on partial snapshots).
    enabled: bool,
}

/// Host that exposes the latched snapshot and records RTOS interactions.
#[derive(Default)]
struct SnapshotHost {
    snapshot: Vec<bool>,
    emissions: Vec<(usize, Option<i64>)>,
    consumed: bool,
}

impl ReactionHost for SnapshotHost {
    fn detect(&mut self, input: usize) -> bool {
        self.snapshot[input]
    }
    fn emit_pure(&mut self, output: usize) {
        self.emissions.push((output, None));
    }
    fn emit_valued(&mut self, output: usize, value: i64) {
        self.emissions.push((output, Some(value)));
    }
    fn consume(&mut self) {
        self.consumed = true;
    }
}

/// The network co-simulator; see the crate docs.
pub struct Simulator {
    config: RtosConfig,
    tasks: Vec<Task>,
    /// `signal -> (task, input index)` delivery fan-out.
    consumers: HashMap<String, Vec<(usize, usize)>>,
    rr_next: usize,
    now: u64,
    trace: Vec<TraceEntry>,
    stats: SimStats,
}

impl Simulator {
    /// Synthesizes every software machine of `net` (characteristic
    /// function → sifted BDD → s-graph → object code) and wires up the
    /// RTOS; machines listed in [`RtosConfig::hardware`] become hardware
    /// actors instead.
    pub fn build(net: &Network, config: RtosConfig) -> Simulator {
        let graphs: Vec<Option<SGraph>> = net
            .cfsms()
            .iter()
            .map(|m| {
                if config.hardware.contains(m.name()) {
                    None
                } else {
                    let mut rf = ReactiveFn::build(m);
                    rf.sift(OrderScheme::OutputsAfterSupport);
                    Some(build(&rf).expect("validated CFSMs synthesize"))
                }
            })
            .collect();
        Simulator::with_optional_graphs(net, graphs, config)
    }

    /// Like [`Simulator::build`] with caller-provided s-graphs (one per
    /// machine, in network order) — for comparing implementation styles.
    ///
    /// # Panics
    ///
    /// Panics if `graphs.len() != net.cfsms().len()`.
    pub fn with_graphs(net: &Network, graphs: Vec<SGraph>, config: RtosConfig) -> Simulator {
        Simulator::with_optional_graphs(net, graphs.into_iter().map(Some).collect(), config)
    }

    fn with_optional_graphs(
        net: &Network,
        graphs: Vec<Option<SGraph>>,
        config: RtosConfig,
    ) -> Simulator {
        assert_eq!(graphs.len(), net.cfsms().len(), "one graph per machine");
        let mut tasks = Vec::new();
        let mut consumers: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (ti, (m, g)) in net.cfsms().iter().zip(graphs).enumerate() {
            let runtime = if config.hardware.contains(m.name()) {
                Runtime::Hw {
                    state: m.initial_state(),
                    values: MapEnv::new(),
                }
            } else {
                let g = g.expect("software machines carry a graph");
                let prog = compile(m, &g, config.buffering);
                let obj = assemble(&prog, config.profile);
                let mem = VmMemory::new(&prog);
                Runtime::Sw { prog, obj, mem }
            };
            for (ii, sig) in m.inputs().iter().enumerate() {
                consumers
                    .entry(sig.name().to_owned())
                    .or_default()
                    .push((ti, ii));
            }
            tasks.push(Task {
                name: m.name().to_owned(),
                cfsm: m.clone(),
                runtime,
                flags: vec![false; m.inputs().len()],
                pending: Vec::new(),
                enabled: false,
            });
        }
        let n = tasks.len();
        Simulator {
            config,
            tasks,
            consumers,
            rr_next: 0,
            now: 0,
            trace: Vec::new(),
            stats: SimStats {
                reactions: vec![0; n],
                fired: vec![0; n],
                overwritten: vec![0; n],
                ..SimStats::default()
            },
        }
    }

    /// The observed emission trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs the simulation over `stimuli` until every stimulus is
    /// delivered and no task remains enabled. Stimuli are sorted by time
    /// internally.
    pub fn run(&mut self, stimuli: &[Stimulus]) {
        let mut queue: Vec<Stimulus> = stimuli.to_vec();
        // Apply delivery-mode deferral (polling) up front.
        for s in &mut queue {
            if let Some(DeliveryMode::Polled { period }) = self.config.delivery.get(&s.signal) {
                let p = (*period).max(1);
                s.time = s.time.div_ceil(p) * p;
            }
        }
        queue.sort_by_key(|s| s.time);
        let mut qi = 0;

        loop {
            // Deliver everything due.
            while qi < queue.len() && queue[qi].time <= self.now {
                let s = queue[qi].clone();
                qi += 1;
                self.deliver_env(&s, None);
            }
            // Pick a task.
            let Some(ti) = self.pick_task() else {
                // Idle: jump to the next stimulus or stop.
                if qi < queue.len() {
                    self.now = self.now.max(queue[qi].time);
                    continue;
                }
                break;
            };
            let start = self.now;
            let (emissions, cycles) = self.react_sw(ti);
            self.now = start + cycles + self.config.overhead.dispatch;
            self.stats.busy_cycles += cycles + self.config.overhead.dispatch;
            self.stats.rtos_cycles += self.config.overhead.dispatch;

            // Environment events that arrived while the task was running
            // land in *its* pending set; other tasks get them directly.
            while qi < queue.len() && queue[qi].time <= self.now {
                let s = queue[qi].clone();
                qi += 1;
                self.deliver_env(&s, Some(ti));
            }
            // Preemption: strictly-more-urgent tasks enabled by those
            // arrivals run before the interrupted task's bookkeeping
            // completes.
            if self.config.preemptive {
                while let Some(hp) = self.more_urgent_enabled(ti) {
                    let (em, cyc) = self.react_sw(hp);
                    self.now += cyc + self.config.overhead.dispatch;
                    self.stats.busy_cycles += cyc + self.config.overhead.dispatch;
                    self.stats.rtos_cycles += self.config.overhead.dispatch;
                    self.stats.preempting_reactions += 1;
                    self.process_emissions(hp, em, Some(ti));
                }
            }
            // The hold-back window is over: flush deferred arrivals into
            // the task's flags for its next execution.
            let pending = std::mem::take(&mut self.tasks[ti].pending);
            for (input, value) in pending {
                self.set_flag(ti, input, value);
            }
            // Internal emissions are delivered at reaction completion.
            self.process_emissions(ti, emissions, None);
            self.stats.total_cycles = self.now;
        }
        self.stats.total_cycles = self.now;
    }

    /// Measures, over the whole trace, the worst latency from a stimulus
    /// on `input` to the next emission of `output` (a simple I/O-latency
    /// probe for the Section V-B constraint check). Returns `None` if the
    /// pairing never occurred.
    pub fn worst_latency(&self, stimuli: &[Stimulus], input: &str, output: &str) -> Option<u64> {
        let mut worst = None;
        for s in stimuli.iter().filter(|s| s.signal == input) {
            let response = self
                .trace
                .iter()
                .find(|t| t.signal == output && t.time >= s.time)?;
            let lat = response.time - s.time;
            worst = Some(worst.map_or(lat, |w: u64| w.max(lat)));
        }
        worst
    }

    fn is_hw(&self, ti: usize) -> bool {
        matches!(self.tasks[ti].runtime, Runtime::Hw { .. })
    }

    fn priority(&self, ti: usize) -> u32 {
        match &self.config.policy {
            SchedulingPolicy::StaticPriority { priorities } => {
                priorities.get(ti).copied().unwrap_or(u32::MAX)
            }
            SchedulingPolicy::RoundRobin => u32::MAX,
        }
    }

    fn more_urgent_enabled(&self, than: usize) -> Option<usize> {
        let bar = self.priority(than);
        (0..self.tasks.len())
            .filter(|&ti| !self.is_hw(ti) && self.tasks[ti].enabled && self.priority(ti) < bar)
            .min_by_key(|&ti| self.priority(ti))
    }

    fn pick_task(&mut self) -> Option<usize> {
        let n = self.tasks.len();
        match &self.config.policy {
            SchedulingPolicy::RoundRobin => {
                for k in 0..n {
                    let ti = (self.rr_next + k) % n;
                    if self.tasks[ti].enabled && !self.is_hw(ti) {
                        self.rr_next = (ti + 1) % n;
                        return Some(ti);
                    }
                }
                None
            }
            SchedulingPolicy::StaticPriority { priorities } => (0..n)
                .filter(|&ti| self.tasks[ti].enabled && !self.is_hw(ti))
                .min_by_key(|&ti| priorities.get(ti).copied().unwrap_or(u32::MAX)),
        }
    }

    /// Runs one software reaction of task `ti`; returns its emissions (by
    /// name) and cycle cost.
    fn react_sw(&mut self, ti: usize) -> (Vec<(String, Option<i64>)>, u64) {
        let task = &mut self.tasks[ti];
        task.enabled = false; // disabled once it finishes its execution
        let snapshot = task.flags.clone();
        let mut host = SnapshotHost {
            snapshot: snapshot.clone(),
            ..SnapshotHost::default()
        };
        let Runtime::Sw { prog, obj, mem } = &mut task.runtime else {
            unreachable!("hardware tasks react eagerly at delivery");
        };
        let stats = run_reaction(prog, obj, mem, &mut host).expect("synthesized routines execute");

        self.stats.reactions[ti] += 1;
        if host.consumed {
            self.stats.fired[ti] += 1;
            // The consumed snapshot is cleared; later arrivals survive.
            for (f, &snap) in task.flags.iter_mut().zip(&snapshot) {
                if snap {
                    *f = false;
                }
            }
        }
        let task = &self.tasks[ti];
        let emissions = host
            .emissions
            .into_iter()
            .map(|(o, v)| (task.cfsm.outputs()[o].name().to_owned(), v))
            .collect();
        (emissions, stats.cycles)
    }

    /// Records and delivers a finished reaction's emissions, running
    /// chained consumers inline (no dispatch or emission overhead).
    fn process_emissions(
        &mut self,
        by: usize,
        emissions: Vec<(String, Option<i64>)>,
        running: Option<usize>,
    ) {
        let by_name = self.tasks[by].name.clone();
        for (sig, value) in emissions {
            self.trace.push(TraceEntry {
                time: self.now,
                signal: sig.clone(),
                value,
                by: by_name.clone(),
            });
            self.deliver(&sig, value, running);

            // Chained consumers execute immediately as part of this task.
            let targets = self.consumers.get(&sig).cloned().unwrap_or_default();
            for (ti2, _) in targets {
                if self.is_hw(ti2) || !self.tasks[ti2].enabled {
                    continue;
                }
                let key = (by_name.clone(), self.tasks[ti2].name.clone());
                if self.config.chains.contains(&key) {
                    let (em2, cyc2) = self.react_sw(ti2);
                    self.now += cyc2;
                    self.stats.busy_cycles += cyc2;
                    self.stats.chained_reactions += 1;
                    self.process_emissions(ti2, em2, running);
                }
            }
        }
    }

    fn deliver_env(&mut self, s: &Stimulus, running: Option<usize>) {
        if matches!(
            self.config.delivery.get(&s.signal),
            None | Some(DeliveryMode::Interrupt)
        ) {
            self.now += self.config.overhead.isr;
            self.stats.rtos_cycles += self.config.overhead.isr;
            self.stats.busy_cycles += self.config.overhead.isr;
        } else {
            self.now += self.config.overhead.poll;
            self.stats.rtos_cycles += self.config.overhead.poll;
            self.stats.busy_cycles += self.config.overhead.poll;
        }
        self.deliver(&s.signal, s.value, running);
    }

    /// Sets flags and value buffers at every consumer; `running` holds
    /// arrivals for the executing task in its pending set (Section IV-D).
    /// Hardware consumers react immediately, off-CPU.
    fn deliver(&mut self, signal: &str, value: Option<i64>, running: Option<usize>) {
        let targets = self.consumers.get(signal).cloned().unwrap_or_default();
        for (ti, input) in targets {
            if running == Some(ti) {
                self.tasks[ti].pending.push((input, value));
            } else {
                self.set_flag(ti, input, value);
                if self.is_hw(ti) {
                    self.react_hw(ti, running);
                }
            }
        }
    }

    /// Executes one hardware reaction at delivery time: the hardware
    /// implementation "takes only one cycle" and does not occupy the CPU.
    fn react_hw(&mut self, ti: usize, running: Option<usize>) {
        let task = &mut self.tasks[ti];
        task.enabled = false;
        let snapshot = task.flags.clone();
        let present: BTreeSet<String> = task
            .cfsm
            .inputs()
            .iter()
            .zip(&snapshot)
            .filter(|(_, &p)| p)
            .map(|(s, _)| s.name().to_owned())
            .collect();
        let Runtime::Hw { state, values } = &mut task.runtime else {
            unreachable!("react_hw on a software task");
        };
        let r = task
            .cfsm
            .react(&present, values, state)
            .expect("hardware CFSM reacts");
        self.stats.reactions[ti] += 1;
        let mut emissions = Vec::new();
        if r.fired {
            self.stats.fired[ti] += 1;
            *state = r.next.clone();
            for f in task.flags.iter_mut() {
                *f = false;
            }
            for e in &r.emissions {
                emissions.push((e.signal.clone(), e.value.map(|v| v.as_int().unwrap_or(0))));
            }
        }
        // Hardware completion is hw_reaction_cycles later; the CPU clock
        // does not advance (the reaction runs in parallel).
        let at = self.now + self.config.hw_reaction_cycles;
        let by_name = self.tasks[ti].name.clone();
        for (sig, value) in emissions {
            self.trace.push(TraceEntry {
                time: at,
                signal: sig.clone(),
                value,
                by: by_name.clone(),
            });
            self.deliver(&sig, value, running);
        }
    }

    fn set_flag(&mut self, ti: usize, input: usize, value: Option<i64>) {
        let task = &mut self.tasks[ti];
        if task.flags[input] {
            // One-place buffer: the earlier occurrence is overwritten.
            self.stats.overwritten[ti] += 1;
        }
        task.flags[input] = true;
        task.enabled = true;
        if let Some(v) = value {
            match &mut task.runtime {
                Runtime::Sw { prog, mem, .. } => {
                    if let Some(slot) = prog.input_value_slot(input) {
                        mem.set(slot, v);
                    }
                }
                Runtime::Hw { values, .. } => {
                    let sig = task.cfsm.inputs()[input].name().to_owned();
                    values.set(value_var_name(&sig), polis_expr::Value::Int(v));
                }
            }
        }
    }
}
