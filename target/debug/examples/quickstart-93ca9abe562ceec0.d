/root/repo/target/debug/examples/quickstart-93ca9abe562ceec0.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-93ca9abe562ceec0.rmeta: examples/quickstart.rs

examples/quickstart.rs:
