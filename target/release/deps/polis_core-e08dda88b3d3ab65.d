/root/repo/target/release/deps/polis_core-e08dda88b3d3ab65.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

/root/repo/target/release/deps/libpolis_core-e08dda88b3d3ab65.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

/root/repo/target/release/deps/libpolis_core-e08dda88b3d3ab65.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/random.rs:
crates/core/src/trace.rs:
crates/core/src/workloads.rs:
