/root/repo/target/debug/deps/polis_codegen-83d30c3161b698a0.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_codegen-83d30c3161b698a0.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
