/root/repo/target/debug/deps/ablation_buffering-8b7f3a1581d860e0.d: crates/bench/src/bin/ablation_buffering.rs

/root/repo/target/debug/deps/ablation_buffering-8b7f3a1581d860e0: crates/bench/src/bin/ablation_buffering.rs

crates/bench/src/bin/ablation_buffering.rs:
