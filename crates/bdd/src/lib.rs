//! A reduced ordered binary decision diagram (ROBDD) package with dynamic
//! variable reordering by sifting.
//!
//! BDDs are the key intermediate representation of the POLIS software
//! synthesis flow (Balarin et al., Section II-B): the CFSM reactive function
//! is represented by the BDD of its characteristic function, optimized by
//! Rudell's sifting algorithm under the constraint that *no output variable
//! sifts above any input in its support*, and then translated one-to-one into
//! an s-graph (Section III-B).
//!
//! The package provides:
//!
//! * a [`Bdd`] manager with hash-consed nodes, an ITE operation cache, and
//!   the usual Boolean operations ([`Bdd::and`], [`Bdd::or`], [`Bdd::not`],
//!   [`Bdd::xor`], [`Bdd::ite`], ...);
//! * cofactor/restriction ([`Bdd::restrict`], [`Bdd::cofactors`]) and
//!   smoothing / existential quantification ([`Bdd::exists`]) used to build
//!   characteristic functions (Section II-C);
//! * a relational-product kernel for symbolic reachability:
//!   single-pass cube quantification ([`Bdd::exists_cube`],
//!   [`Bdd::forall_cube`]), combined conjoin-and-quantify
//!   ([`Bdd::and_exists`], with its own dedicated cache), the generalized
//!   cofactor ([`Bdd::constrain`]) and set difference ([`Bdd::and_not`]);
//! * mark-and-sweep garbage collection ([`Bdd::gc`]);
//! * in-place adjacent level swap and constrained sifting
//!   ([`Bdd::sift`], see the [`reorder`] module);
//! * multi-bit encodings of bounded-integer variables ([`encode`]).
//!
//! # Storage layer
//!
//! The kernel uses CUDD-style storage rather than the standard-library maps:
//!
//! * per-variable **open-addressing unique tables** (power-of-two capacity,
//!   linear probing, splitmix64-mixed keys, tombstone-free backward-shift
//!   deletion) for hash-consing;
//! * a **direct-mapped lossy operation cache** shared by ITE and the
//!   cofactor/quantification memos, plus a second dedicated cache for
//!   [`Bdd::and_exists`]; both invalidated in O(1) by bumping a
//!   generation counter (no rehash on reorder);
//! * a reusable **stamp buffer** for traversals (`size`, `support`, `gc`)
//!   so marking needs no per-call set allocation;
//! * **reference-count node reclamation** during sifting, so adjacent level
//!   swaps recycle dead slots through a free-list instead of growing the
//!   arena monotonically.
//!
//! Determinism: node indices depend only on the sequence of operations
//! performed on the manager — there is no randomized hashing and no
//! iteration over randomized containers — so a fixed call sequence yields
//! bit-identical results across runs and platforms.
//!
//! # Examples
//!
//! ```
//! use polis_bdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! let x = bdd.new_var("x");
//! let y = bdd.new_var("y");
//! let fx = bdd.var(x);
//! let fy = bdd.var(y);
//! let f = bdd.and(fx, fy);
//! assert!(bdd.eval(f, |v| v == x || v == y));
//! assert!(!bdd.eval(f, |v| v == x));
//! ```

pub mod encode;
pub mod reorder;

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// A BDD variable, identified by creation index (stable across reordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's creation index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A handle to a BDD node (a Boolean function rooted at that node).
///
/// Handles stay valid across [`Bdd::sift`] (reordering rewrites nodes in
/// place) and across [`Bdd::gc`] *if* the handle was reachable from the roots
/// passed to `gc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The constant false function.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The constant true function.
    pub const TRUE: NodeRef = NodeRef(1);

    /// `true` if this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// `true` if this is the true terminal.
    pub fn is_true(self) -> bool {
        self == NodeRef::TRUE
    }

    /// `true` if this is the false terminal.
    pub fn is_false(self) -> bool {
        self == NodeRef::FALSE
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

const TERMINAL_VAR: u32 = u32::MAX;
/// Level assigned to terminals: below every variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// Sentinel marking a vacant unique-table or cache slot. Never a real node:
/// the arena is indexed by `u32` handles and would overflow memory long
/// before reaching `u32::MAX` entries.
const EMPTY: NodeRef = NodeRef(u32::MAX);

/// The splitmix64 finalizer, mirroring `polis-core::random`'s mixer
/// (inlined here: `polis-core` depends on this crate, so it cannot be a
/// runtime dependency). Used to spread unique-table and cache keys.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

// ---------------------------------------------------------------------------
// Open-addressing unique table
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct UniqueSlot {
    lo: NodeRef,
    hi: NodeRef,
    /// `EMPTY` marks a vacant slot.
    node: NodeRef,
}

const VACANT: UniqueSlot = UniqueSlot {
    lo: EMPTY,
    hi: EMPTY,
    node: EMPTY,
};

/// One variable's hash-consing table: open addressing with linear probing
/// over a power-of-two slot array. Deletion is tombstone-free (backward
/// shift), so long-lived managers never accumulate probe-chain garbage —
/// important because sifting removes and re-inserts entries constantly.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    slots: Vec<UniqueSlot>,
    len: usize,
    /// Probe counters feeding [`BddStats`].
    lookups: u64,
    probes: u64,
}

impl UniqueTable {
    fn new() -> UniqueTable {
        UniqueTable {
            slots: Vec::new(),
            len: 0,
            lookups: 0,
            probes: 0,
        }
    }

    #[inline]
    fn hash(lo: NodeRef, hi: NodeRef) -> u64 {
        mix64(((lo.0 as u64) << 32) | hi.0 as u64)
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Looks up the node for `(lo, hi)`, counting probes.
    fn get(&mut self, lo: NodeRef, hi: NodeRef) -> Option<NodeRef> {
        self.lookups += 1;
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(lo, hi) as usize) & mask;
        loop {
            self.probes += 1;
            let s = self.slots[i];
            if s.node == EMPTY {
                return None;
            }
            if s.lo == lo && s.hi == hi {
                return Some(s.node);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `(lo, hi) -> node`, returning the previous mapping if one
    /// existed (the reorder module asserts on that case).
    pub(crate) fn insert(&mut self, lo: NodeRef, hi: NodeRef, node: NodeRef) -> Option<NodeRef> {
        if self.slots.is_empty() || (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(lo, hi) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.node == EMPTY {
                self.slots[i] = UniqueSlot { lo, hi, node };
                self.len += 1;
                return None;
            }
            if s.lo == lo && s.hi == hi {
                let prev = s.node;
                self.slots[i].node = node;
                return Some(prev);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.len = 0;
        for s in old {
            if s.node != EMPTY {
                self.insert_rehash(s);
            }
        }
    }

    /// Insert during a rebuild: the key is known absent and load is low.
    fn insert_rehash(&mut self, s: UniqueSlot) {
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(s.lo, s.hi) as usize) & mask;
        while self.slots[i].node != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = s;
        self.len += 1;
    }

    /// Removes `(lo, hi)` by backward-shift deletion: later entries of the
    /// probe chain slide into the hole, so no tombstones are left behind.
    pub(crate) fn remove(&mut self, lo: NodeRef, hi: NodeRef) -> Option<NodeRef> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(lo, hi) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.node == EMPTY {
                return None;
            }
            if s.lo == lo && s.hi == hi {
                let removed = s.node;
                let mut j = i;
                loop {
                    j = (j + 1) & mask;
                    let t = self.slots[j];
                    if t.node == EMPTY {
                        break;
                    }
                    // `t` may fill the hole at `i` iff its home slot is not
                    // cyclically inside (i, j] — otherwise moving it would
                    // break its own probe chain.
                    let home = (Self::hash(t.lo, t.hi) as usize) & mask;
                    if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                        self.slots[i] = t;
                        i = j;
                    }
                }
                self.slots[i] = VACANT;
                self.len -= 1;
                return Some(removed);
            }
            i = (i + 1) & mask;
        }
    }

    /// Keeps only entries whose node satisfies `keep`; dropped nodes are
    /// pushed onto `freed`. Rebuilds in place at the current capacity.
    fn retain(&mut self, mut keep: impl FnMut(NodeRef) -> bool, freed: &mut Vec<NodeRef>) {
        if self.len == 0 {
            return;
        }
        let mut survivors: Vec<UniqueSlot> = Vec::with_capacity(self.len);
        for s in &mut self.slots {
            if s.node != EMPTY {
                if keep(s.node) {
                    survivors.push(*s);
                } else {
                    freed.push(s.node);
                }
                *s = VACANT;
            }
        }
        self.len = 0;
        for s in survivors {
            self.insert_rehash(s);
        }
    }

    /// Iterates live entries as `(lo, hi, node)` in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeRef, NodeRef, NodeRef)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.node != EMPTY)
            .map(|s| (s.lo, s.hi, s.node))
    }
}

// ---------------------------------------------------------------------------
// Direct-mapped lossy operation cache
// ---------------------------------------------------------------------------

const OP_ITE: u32 = 0;
const OP_RESTRICT0: u32 = 1;
const OP_RESTRICT1: u32 = 2;
const OP_EXISTS: u32 = 3;
const OP_FORALL: u32 = 4;
const OP_EXISTS_CUBE: u32 = 5;
const OP_FORALL_CUBE: u32 = 6;
const OP_CONSTRAIN: u32 = 7;
/// Sole op code of the dedicated AndExists cache (kept distinct anyway so a
/// misrouted probe can never alias a shared-cache entry).
const OP_ANDEX: u32 = 8;
/// Cross-call rename memo entries in the shared cache; keyed by the node
/// and the interned substitution map (see [`Bdd::rename`]).
const OP_RENAME: u32 = 9;

/// At most this many distinct substitution maps are interned for the
/// cross-call rename cache; later maps fall back to per-call memoization
/// only. Relational-image workloads use one fixed map per machine, far
/// below the cap.
const RENAME_MAP_CAP: usize = 64;

#[derive(Debug, Clone, Copy)]
struct OpSlot {
    op: u32,
    a: NodeRef,
    b: NodeRef,
    c: NodeRef,
    /// Entry is valid iff `gen == OpCache::gen`.
    gen: u32,
    result: NodeRef,
}

const OP_CACHE_MIN: usize = 1 << 8;
const OP_CACHE_MAX: usize = 1 << 20;

/// CUDD-style direct-mapped operation cache shared by ITE and the
/// cofactor/quantification memos. Collisions overwrite (lossy), so capacity
/// is bounded; a generation counter invalidates every entry in O(1) when the
/// variable order changes.
#[derive(Debug, Clone)]
struct OpCache {
    slots: Vec<OpSlot>,
    /// Valid entries in the current generation.
    len: usize,
    gen: u32,
    evictions: u64,
}

impl OpCache {
    fn new() -> OpCache {
        OpCache {
            slots: Vec::new(),
            len: 0,
            gen: 0,
            evictions: 0,
        }
    }

    fn stale_slot(&self) -> OpSlot {
        OpSlot {
            op: u32::MAX,
            a: EMPTY,
            b: EMPTY,
            c: EMPTY,
            gen: self.gen.wrapping_sub(1),
            result: EMPTY,
        }
    }

    #[inline]
    fn index(&self, op: u32, a: NodeRef, b: NodeRef, c: NodeRef) -> usize {
        let h = mix64(((op as u64) << 32) | a.0 as u64) ^ mix64(((b.0 as u64) << 32) | c.0 as u64);
        (h as usize) & (self.slots.len() - 1)
    }

    fn lookup(&self, op: u32, a: NodeRef, b: NodeRef, c: NodeRef) -> Option<NodeRef> {
        if self.slots.is_empty() {
            return None;
        }
        let s = self.slots[self.index(op, a, b, c)];
        (s.gen == self.gen && s.op == op && s.a == a && s.b == b && s.c == c).then_some(s.result)
    }

    fn insert(&mut self, op: u32, a: NodeRef, b: NodeRef, c: NodeRef, result: NodeRef) {
        if self.slots.is_empty() {
            self.slots = vec![self.stale_slot(); OP_CACHE_MIN];
        } else if self.len * 4 >= self.slots.len() * 3 && self.slots.len() < OP_CACHE_MAX {
            self.grow();
        }
        let i = self.index(op, a, b, c);
        let s = &mut self.slots[i];
        if s.gen == self.gen {
            if s.op == op && s.a == a && s.b == b && s.c == c {
                s.result = result;
                return;
            }
            self.evictions += 1;
        } else {
            self.len += 1;
        }
        *s = OpSlot {
            op,
            a,
            b,
            c,
            gen: self.gen,
            result,
        };
    }

    /// Doubling rehash. Each valid entry moves to `h & new_mask`, which is
    /// collision-free: entries at distinct old indices stay distinct mod the
    /// old capacity.
    fn grow(&mut self) {
        let stale = self.stale_slot();
        let old = std::mem::take(&mut self.slots);
        self.slots = vec![stale; old.len() * 2];
        for s in old {
            if s.gen == self.gen {
                let i = self.index(s.op, s.a, s.b, s.c);
                self.slots[i] = s;
            }
        }
    }

    /// O(1) whole-cache invalidation by bumping the generation counter.
    fn invalidate(&mut self) {
        self.len = 0;
        if self.gen == u32::MAX {
            // Generation wrap: physically reset so ancient entries cannot
            // masquerade as generation-0 entries.
            self.gen = 0;
            let stale = self.stale_slot();
            for s in &mut self.slots {
                *s = stale;
            }
        } else {
            self.gen += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Reusable stamp buffer for traversals
// ---------------------------------------------------------------------------

/// A generation-stamped visited set over node indices: `mark` is O(1) and a
/// new traversal is started by bumping the generation, with no clearing and
/// no per-call allocation once the buffer is warm.
#[derive(Debug, Clone, Default)]
struct Marks {
    stamp: Vec<u32>,
    gen: u32,
}

impl Marks {
    /// Begins a fresh pass able to mark node indices `< n`.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.gen == u32::MAX {
            self.gen = 1;
            for s in &mut self.stamp {
                *s = 0;
            }
        } else {
            self.gen += 1;
        }
    }

    /// Marks `n`; returns `true` if it was not yet marked this pass.
    #[inline]
    fn mark(&mut self, n: NodeRef) -> bool {
        let s = &mut self.stamp[n.idx()];
        if *s == self.gen {
            false
        } else {
            *s = self.gen;
            true
        }
    }

    #[inline]
    fn is_marked(&self, n: NodeRef) -> bool {
        self.stamp[n.idx()] == self.gen
    }
}

/// Reusable node→node memo for `rename`: a generation-stamped slot per
/// node index, so each pass is O(1) to clear and probes are two array
/// reads instead of a hash lookup. Entries are only written for nodes of
/// the input BDD, whose indices all precede `begin`'s bound.
#[derive(Debug, Clone, Default)]
struct RenameMemo {
    stamp: Vec<u32>,
    val: Vec<NodeRef>,
    gen: u32,
}

impl RenameMemo {
    /// Begins a fresh pass able to memoize node indices `< n`.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.val.resize(n, NodeRef::FALSE);
        }
        if self.gen == u32::MAX {
            self.gen = 1;
            for s in &mut self.stamp {
                *s = 0;
            }
        } else {
            self.gen += 1;
        }
    }

    #[inline]
    fn get(&self, f: NodeRef) -> Option<NodeRef> {
        if self.stamp[f.idx()] == self.gen {
            Some(self.val[f.idx()])
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, f: NodeRef, r: NodeRef) {
        self.stamp[f.idx()] = self.gen;
        self.val[f.idx()] = r;
    }
}

// ---------------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------------

/// A reduced ordered BDD manager.
///
/// All functions created by one manager share its node store and variable
/// order. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    free: Vec<NodeRef>,
    /// Per-variable unique tables.
    unique: Vec<UniqueTable>,
    /// `level -> var index`.
    var_at_level: Vec<u32>,
    /// `var index -> level`.
    level_of_var: Vec<u32>,
    /// Human-readable variable names (debugging / DOT output).
    var_names: Vec<String>,
    /// Shared ITE + cofactor/quantification operation cache.
    cache: OpCache,
    /// Dedicated AndExists (relational-product) cache: three live node
    /// operands per key, so sharing slots with binary ops would evict the
    /// hottest entries of an image computation.
    andex: OpCache,
    /// Scratch visited-set shared by `size`/`support`/`gc` (interior
    /// mutability so `&self` traversals stay `&self`).
    marks: RefCell<Marks>,
    /// Scratch stamped memo reused across `rename` calls.
    rename_memo: RenameMemo,
    /// Interned substitution maps (source-sorted pairs); a map's index is
    /// the token that keys its cross-call entries in the shared cache.
    rename_maps: Vec<Vec<(u32, u32)>>,
    /// Per-node reference counts; only maintained while `rc_active`.
    rc: Vec<u32>,
    /// Whether sifting-time reference counting (and with it immediate dead
    /// node reclamation in `swap_levels`) is on.
    rc_active: bool,
    /// Total `mk` calls; a rough work counter exposed for benchmarks.
    mk_calls: u64,
    /// Operation-cache probes in `ite` (excluding terminal short-circuits).
    cache_lookups: u64,
    /// Operation-cache hits in `ite`.
    cache_hits: u64,
    /// Memo probes by `restrict`/`cofactors`/`exists`/`forall`.
    memo_lookups: u64,
    /// Memo hits by the same.
    memo_hits: u64,
    /// Adjacent-level swaps performed (by `swap_levels`, hence by sifting).
    swap_count: u64,
    /// Nodes returned to the free-list by `gc` or by sifting reclamation.
    reclaimed_nodes: u64,
    /// High-water mark of allocated (live) nodes.
    peak_live_nodes: u64,
    /// Non-terminal node visits by `restrict`/`cofactors` traversals.
    op_visits: u64,
    /// Dedicated-cache probes by `and_exists`.
    andex_lookups: u64,
    /// Dedicated-cache hits by `and_exists`.
    andex_hits: u64,
    /// Top-level `exists_cube`/`forall_cube` invocations.
    cube_quant_calls: u64,
}

/// A snapshot of the manager's work counters, exposed so the synthesis
/// pipeline can record layer-native metrics per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Total `mk` invocations.
    pub mk_calls: u64,
    /// Operation-cache probes in `ite`.
    pub cache_lookups: u64,
    /// Operation-cache hits in `ite`.
    pub cache_hits: u64,
    /// Adjacent-level swaps performed by reordering.
    pub swap_count: u64,
    /// Live entries across the per-variable unique tables.
    pub unique_entries: u64,
    /// Valid entries currently in the operation cache.
    pub cache_entries: u64,
    /// Unique-table lookups (hash-consing probe sequences started).
    pub unique_lookups: u64,
    /// Total unique-table slot probes; `avg_probe_len` = probes / lookups.
    pub unique_probes: u64,
    /// Valid cache entries overwritten by a colliding key (lossy cache).
    pub cache_evictions: u64,
    /// Memo probes by `restrict`/`cofactors`/`exists`/`forall`.
    pub memo_lookups: u64,
    /// Memo hits by the same.
    pub memo_hits: u64,
    /// Nodes returned to the free-list by `gc` or sifting reclamation.
    pub reclaimed_nodes: u64,
    /// High-water mark of allocated (live) nodes.
    pub peak_live_nodes: u64,
    /// Non-terminal node visits by `restrict`/`cofactors` traversals.
    pub op_visits: u64,
    /// Dedicated-cache probes by `and_exists`.
    pub andex_lookups: u64,
    /// Dedicated-cache hits by `and_exists`.
    pub andex_hits: u64,
    /// Top-level `exists_cube`/`forall_cube` invocations.
    pub cube_quant_calls: u64,
}

impl BddStats {
    /// Hit rate of the ITE operation cache in `[0, 1]`; zero when no
    /// lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Hit rate of the dedicated AndExists cache in `[0, 1]`; zero when no
    /// lookups have happened.
    pub fn andex_hit_rate(&self) -> f64 {
        if self.andex_lookups == 0 {
            0.0
        } else {
            self.andex_hits as f64 / self.andex_lookups as f64
        }
    }

    /// Mean unique-table probe-chain length per lookup; zero when no
    /// lookups have happened. Near 1.0 means near-ideal hashing.
    pub fn avg_probe_len(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_probes as f64 / self.unique_lookups as f64
        }
    }

    /// Element-wise sum with `other`, for aggregating per-manager stats
    /// (e.g. one manager per CFSM) into one report.
    pub fn merged(&self, other: &BddStats) -> BddStats {
        BddStats {
            mk_calls: self.mk_calls + other.mk_calls,
            cache_lookups: self.cache_lookups + other.cache_lookups,
            cache_hits: self.cache_hits + other.cache_hits,
            swap_count: self.swap_count + other.swap_count,
            unique_entries: self.unique_entries + other.unique_entries,
            cache_entries: self.cache_entries + other.cache_entries,
            unique_lookups: self.unique_lookups + other.unique_lookups,
            unique_probes: self.unique_probes + other.unique_probes,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            memo_lookups: self.memo_lookups + other.memo_lookups,
            memo_hits: self.memo_hits + other.memo_hits,
            reclaimed_nodes: self.reclaimed_nodes + other.reclaimed_nodes,
            peak_live_nodes: self.peak_live_nodes + other.peak_live_nodes,
            op_visits: self.op_visits + other.op_visits,
            andex_lookups: self.andex_lookups + other.andex_lookups,
            andex_hits: self.andex_hits + other.andex_hits,
            cube_quant_calls: self.cube_quant_calls + other.cube_quant_calls,
        }
    }
}

/// `c << k` if the result fits in `u128`, else `None` (`0` shifts freely).
fn shl_checked(c: u128, k: u32) -> Option<u128> {
    if c == 0 {
        return Some(0);
    }
    if k >= 128 || c > (u128::MAX >> k) {
        return None;
    }
    Some(c << k)
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates an empty manager with no variables.
    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: NodeRef::FALSE,
                    hi: NodeRef::FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: NodeRef::TRUE,
                    hi: NodeRef::TRUE,
                },
            ],
            free: Vec::new(),
            unique: Vec::new(),
            var_at_level: Vec::new(),
            level_of_var: Vec::new(),
            var_names: Vec::new(),
            cache: OpCache::new(),
            andex: OpCache::new(),
            marks: RefCell::new(Marks::default()),
            rename_memo: RenameMemo::default(),
            rename_maps: Vec::new(),
            rc: Vec::new(),
            rc_active: false,
            mk_calls: 0,
            cache_lookups: 0,
            cache_hits: 0,
            memo_lookups: 0,
            memo_hits: 0,
            swap_count: 0,
            reclaimed_nodes: 0,
            peak_live_nodes: 0,
            op_visits: 0,
            andex_lookups: 0,
            andex_hits: 0,
            cube_quant_calls: 0,
        }
    }

    /// Declares a new variable at the bottom of the current order.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let idx = self.level_of_var.len() as u32;
        self.level_of_var.push(self.var_at_level.len() as u32);
        self.var_at_level.push(idx);
        self.unique.push(UniqueTable::new());
        self.var_names.push(name.into());
        Var(idx)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// The name given to `v` at creation.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// The current level (0 = root-most) of variable `v`.
    pub fn level(&self, v: Var) -> usize {
        self.level_of_var[v.index()] as usize
    }

    /// The variable currently at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars()`.
    pub fn var_at(&self, level: usize) -> Var {
        Var(self.var_at_level[level])
    }

    /// The current variable order, root-most first.
    pub fn order(&self) -> Vec<Var> {
        self.var_at_level.iter().map(|&v| Var(v)).collect()
    }

    /// Total `mk` invocations so far (work counter for benchmarks).
    pub fn mk_calls(&self) -> u64 {
        self.mk_calls
    }

    /// Snapshot of the manager's cumulative work counters and current
    /// table sizes.
    pub fn stats(&self) -> BddStats {
        BddStats {
            mk_calls: self.mk_calls,
            cache_lookups: self.cache_lookups,
            cache_hits: self.cache_hits,
            swap_count: self.swap_count,
            unique_entries: self.unique.iter().map(|t| t.len() as u64).sum(),
            cache_entries: self.cache.len as u64,
            unique_lookups: self.unique.iter().map(|t| t.lookups).sum(),
            unique_probes: self.unique.iter().map(|t| t.probes).sum(),
            cache_evictions: self.cache.evictions,
            memo_lookups: self.memo_lookups,
            memo_hits: self.memo_hits,
            reclaimed_nodes: self.reclaimed_nodes,
            peak_live_nodes: self.peak_live_nodes,
            op_visits: self.op_visits,
            andex_lookups: self.andex_lookups,
            andex_hits: self.andex_hits,
            cube_quant_calls: self.cube_quant_calls,
        }
    }

    fn level_of_node(&self, n: NodeRef) -> u32 {
        let v = self.nodes[n.idx()].var;
        if v == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.level_of_var[v as usize]
        }
    }

    /// The variable labelling node `n`, or `None` for terminals.
    pub fn node_var(&self, n: NodeRef) -> Option<Var> {
        let v = self.nodes[n.idx()].var;
        (v != TERMINAL_VAR).then_some(Var(v))
    }

    /// The low (`var = 0`) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is a terminal.
    pub fn lo(&self, n: NodeRef) -> NodeRef {
        assert!(!n.is_terminal(), "terminals have no children");
        self.nodes[n.idx()].lo
    }

    /// The high (`var = 1`) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is a terminal.
    pub fn hi(&self, n: NodeRef) -> NodeRef {
        assert!(!n.is_terminal(), "terminals have no children");
        self.nodes[n.idx()].hi
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            NodeRef::TRUE
        } else {
            NodeRef::FALSE
        }
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: Var) -> NodeRef {
        self.mk(v.0, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// The single-variable function `!v`.
    pub fn nvar(&mut self, v: Var) -> NodeRef {
        self.mk(v.0, NodeRef::TRUE, NodeRef::FALSE)
    }

    /// Hash-consing node constructor; the only way nodes are created.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk_calls += 1;
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.level_of_var[var as usize] < self.level_of_node(lo)
                && self.level_of_var[var as usize] < self.level_of_node(hi),
            "mk would violate the variable order"
        );
        self.mk_raw(var, lo, hi)
    }

    /// Like `mk` but without the order assertion; used mid-swap when the
    /// recorded order is transiently inconsistent.
    fn mk_raw(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo;
        }
        if let Some(n) = self.unique[var as usize].get(lo, hi) {
            return n;
        }
        let node = Node { var, lo, hi };
        let r = if let Some(slot) = self.free.pop() {
            self.nodes[slot.idx()] = node;
            slot
        } else {
            let r = NodeRef(self.nodes.len() as u32);
            self.nodes.push(node);
            r
        };
        self.unique[var as usize].insert(lo, hi, r);
        if self.rc_active {
            self.rc_set(r, 0);
            self.rc_inc(lo);
            self.rc_inc(hi);
        }
        self.peak_live_nodes = self.peak_live_nodes.max(self.allocated_nodes() as u64);
        r
    }

    #[inline]
    fn rc_set(&mut self, n: NodeRef, v: u32) {
        let i = n.idx();
        if self.rc.len() <= i {
            self.rc.resize(i + 1, 0);
        }
        self.rc[i] = v;
    }

    #[inline]
    fn rc_inc(&mut self, n: NodeRef) {
        if n.is_terminal() {
            return;
        }
        let i = n.idx();
        if self.rc.len() <= i {
            self.rc.resize(i + 1, 0);
        }
        self.rc[i] += 1;
    }

    /// Drops one reference to `n`; nodes whose count reaches zero are
    /// unlinked from their unique table, put on the free-list, and release
    /// their children in turn. Only called while `rc_active`.
    fn rc_release(&mut self, n: NodeRef) {
        if n.is_terminal() {
            return;
        }
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            let i = m.idx();
            debug_assert!(self.rc[i] > 0, "rc underflow");
            self.rc[i] -= 1;
            if self.rc[i] == 0 {
                let node = self.nodes[i];
                self.unique[node.var as usize].remove(node.lo, node.hi);
                self.free.push(m);
                self.reclaimed_nodes += 1;
                if !node.lo.is_terminal() {
                    stack.push(node.lo);
                }
                if !node.hi.is_terminal() {
                    stack.push(node.hi);
                }
            }
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + !f·h`. All other Boolean
    /// operations are derived from it.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> NodeRef {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        let (mut f, mut g, mut h) = (f, g, h);
        if f == g {
            // f·f + !f·h = f + h = ite(f, 1, h)
            g = NodeRef::TRUE;
        }
        if f == h {
            // f·g + !f·f = f·g = ite(f, g, 0)
            h = NodeRef::FALSE;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        // Commutative normalization: `f + h` (g = 1) and `f · g` (h = 0) are
        // symmetric in their operands, so order them by node index to make
        // e.g. or(a, b) and or(b, a) share one cache slot.
        if g.is_true() && f.0 > h.0 {
            std::mem::swap(&mut f, &mut h);
        } else if h.is_false() && f.0 > g.0 {
            std::mem::swap(&mut f, &mut g);
        }
        self.cache_lookups += 1;
        if let Some(r) = self.cache.lookup(OP_ITE, f, g, h) {
            self.cache_hits += 1;
            return r;
        }
        let top = self
            .level_of_node(f)
            .min(self.level_of_node(g))
            .min(self.level_of_node(h));
        let v = self.var_at_level[top as usize];
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let (h0, h1) = self.cofactors_at(h, v);
        let t = self.ite(f1, g1, h1);
        let e = self.ite(f0, g0, h0);
        let r = self.mk(v, e, t);
        self.cache.insert(OP_ITE, f, g, h, r);
        r
    }

    /// Both cofactors of `n` with respect to variable index `v` (which must
    /// be at or above `n`'s level).
    fn cofactors_at(&self, n: NodeRef, v: u32) -> (NodeRef, NodeRef) {
        let node = &self.nodes[n.idx()];
        if node.var == v {
            (node.lo, node.hi)
        } else {
            (n, n)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, NodeRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, NodeRef::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: NodeRef) -> NodeRef {
        self.ite(f, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Biconditional (`f == g`).
    pub fn iff(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication (`f -> g`).
    pub fn implies(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, NodeRef::TRUE)
    }

    /// Conjunction of all `fs`.
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter()
            .fold(NodeRef::TRUE, |acc, f| self.and(acc, f))
    }

    /// Disjunction of all `fs`.
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter()
            .fold(NodeRef::FALSE, |acc, f| self.or(acc, f))
    }

    /// The restriction (cofactor) `f|_{v = val}` (Section II-C).
    ///
    /// Memoized in the persistent operation cache, so repeated cofactoring
    /// during sifting and s-graph extraction allocates nothing per call.
    pub fn restrict(&mut self, f: NodeRef, v: Var, val: bool) -> NodeRef {
        self.restrict_rec(f, v.0, val)
    }

    fn restrict_rec(&mut self, f: NodeRef, v: u32, val: bool) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        self.op_visits += 1;
        let flevel = self.level_of_node(f);
        let vlevel = self.level_of_var[v as usize];
        if flevel > vlevel {
            return f; // v does not occur in f
        }
        let node = self.nodes[f.idx()];
        if node.var == v {
            return if val { node.hi } else { node.lo };
        }
        let op = if val { OP_RESTRICT1 } else { OP_RESTRICT0 };
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(op, f, NodeRef(v), EMPTY) {
            self.memo_hits += 1;
            return r;
        }
        let lo = self.restrict_rec(node.lo, v, val);
        let hi = self.restrict_rec(node.hi, v, val);
        let r = self.mk(node.var, lo, hi);
        self.cache.insert(op, f, NodeRef(v), EMPTY, r);
        r
    }

    /// Both cofactors `(f|_{v=0}, f|_{v=1})` in one shared traversal.
    ///
    /// Each node above `v`'s level is visited once (filling both restrict
    /// memo slots), where two [`Bdd::restrict`] calls would visit it twice —
    /// this is what `exists`/`forall` are routed through.
    pub fn cofactors(&mut self, f: NodeRef, v: Var) -> (NodeRef, NodeRef) {
        self.cofactors_rec(f, v.0)
    }

    fn cofactors_rec(&mut self, f: NodeRef, v: u32) -> (NodeRef, NodeRef) {
        if f.is_terminal() {
            return (f, f);
        }
        self.op_visits += 1;
        let flevel = self.level_of_node(f);
        let vlevel = self.level_of_var[v as usize];
        if flevel > vlevel {
            return (f, f);
        }
        let node = self.nodes[f.idx()];
        if node.var == v {
            return (node.lo, node.hi);
        }
        let vref = NodeRef(v);
        self.memo_lookups += 1;
        let c0 = self.cache.lookup(OP_RESTRICT0, f, vref, EMPTY);
        let c1 = self.cache.lookup(OP_RESTRICT1, f, vref, EMPTY);
        if let (Some(r0), Some(r1)) = (c0, c1) {
            self.memo_hits += 1;
            return (r0, r1);
        }
        let (lo0, lo1) = self.cofactors_rec(node.lo, v);
        let (hi0, hi1) = self.cofactors_rec(node.hi, v);
        let r0 = self.mk(node.var, lo0, hi0);
        let r1 = self.mk(node.var, lo1, hi1);
        self.cache.insert(OP_RESTRICT0, f, vref, EMPTY, r0);
        self.cache.insert(OP_RESTRICT1, f, vref, EMPTY, r1);
        (r0, r1)
    }

    /// Existential quantification (smoothing, Section II-C):
    /// `∃v. f = f|_{v=0} + f|_{v=1}`.
    ///
    /// Both cofactors come from one shared [`Bdd::cofactors`] pass and the
    /// result itself is memoized.
    pub fn exists(&mut self, f: NodeRef, v: Var) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let vref = NodeRef(v.0);
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(OP_EXISTS, f, vref, EMPTY) {
            self.memo_hits += 1;
            return r;
        }
        let (f0, f1) = self.cofactors_rec(f, v.0);
        let r = self.or(f0, f1);
        self.cache.insert(OP_EXISTS, f, vref, EMPTY, r);
        r
    }

    /// Existential quantification over several variables.
    ///
    /// Thin compatibility wrapper: builds the positive cube of `vs` and
    /// delegates to the single-pass [`Bdd::exists_cube`]. Prefer building
    /// the cube once with [`Bdd::cube`] when quantifying the same set
    /// repeatedly.
    #[deprecated(
        since = "0.1.0",
        note = "build the variable cube once with `cube` and call `exists_cube`"
    )]
    pub fn exists_all(&mut self, f: NodeRef, vs: impl IntoIterator<Item = Var>) -> NodeRef {
        let c = self.cube(vs);
        self.exists_cube(f, c)
    }

    /// Universal quantification: `∀v. f = f|_{v=0} · f|_{v=1}`.
    pub fn forall(&mut self, f: NodeRef, v: Var) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let vref = NodeRef(v.0);
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(OP_FORALL, f, vref, EMPTY) {
            self.memo_hits += 1;
            return r;
        }
        let (f0, f1) = self.cofactors_rec(f, v.0);
        let r = self.and(f0, f1);
        self.cache.insert(OP_FORALL, f, vref, EMPTY, r);
        r
    }

    /// The positive cube (conjunction of positive literals) of `vs`, the
    /// canonical variable-set representation consumed by
    /// [`Bdd::exists_cube`], [`Bdd::forall_cube`] and [`Bdd::and_exists`].
    ///
    /// Built bottom-up in descending level order, so construction is O(k)
    /// `mk` calls with no ITE work. Duplicates are collapsed. The cube is an
    /// ordinary node: root it (gc/persistent-roots) like any other function
    /// if it must survive collection, and note that its *shape* tracks the
    /// variable order — after a [`Bdd::sift`] the handle stays valid and
    /// still denotes the same conjunction.
    pub fn cube(&mut self, vs: impl IntoIterator<Item = Var>) -> NodeRef {
        let mut vars: Vec<Var> = vs.into_iter().collect();
        // Sort deepest-first; duplicates land adjacent (level is injective).
        vars.sort_by_key(|&v| std::cmp::Reverse(self.level(v)));
        vars.dedup();
        let mut c = NodeRef::TRUE;
        for v in vars {
            c = self.mk(v.0, NodeRef::FALSE, c);
        }
        c
    }

    /// Existential quantification of every variable in the positive cube
    /// `cube` in a single traversal of `f`:
    /// `∃ x₁…xₖ. f` in one pass instead of k full [`Bdd::exists`] sweeps.
    ///
    /// `cube` must be a positive cube (every node's low child is 0), e.g.
    /// built by [`Bdd::cube`]; debug builds assert this. Memoized in the
    /// shared operation cache keyed on the advanced cube, so sub-problems
    /// of different top-level cubes still share entries.
    pub fn exists_cube(&mut self, f: NodeRef, cube: NodeRef) -> NodeRef {
        self.cube_quant_calls += 1;
        self.quant_cube_rec(f, cube, true)
    }

    /// Universal quantification of every cube variable in a single pass:
    /// `∀ x₁…xₖ. f`. Dual of [`Bdd::exists_cube`].
    pub fn forall_cube(&mut self, f: NodeRef, cube: NodeRef) -> NodeRef {
        self.cube_quant_calls += 1;
        self.quant_cube_rec(f, cube, false)
    }

    /// Shared single-pass cube quantifier: `exists` selects ∨ (with an early
    /// exit on 1), `forall` selects ∧ (early exit on 0).
    fn quant_cube_rec(&mut self, f: NodeRef, mut cube: NodeRef, exists: bool) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let flevel = self.level_of_node(f);
        // Skip cube variables above f's top: f does not depend on them.
        while !cube.is_terminal() && self.level_of_node(cube) < flevel {
            debug_assert!(self.nodes[cube.idx()].lo.is_false(), "not a positive cube");
            cube = self.nodes[cube.idx()].hi;
        }
        if cube.is_terminal() {
            debug_assert!(cube.is_true(), "cube must not be the zero function");
            return f;
        }
        let op = if exists {
            OP_EXISTS_CUBE
        } else {
            OP_FORALL_CUBE
        };
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(op, f, cube, EMPTY) {
            self.memo_hits += 1;
            return r;
        }
        self.op_visits += 1;
        let node = self.nodes[f.idx()];
        let r = if self.level_of_node(cube) == flevel {
            debug_assert!(self.nodes[cube.idx()].lo.is_false(), "not a positive cube");
            let rest = self.nodes[cube.idx()].hi;
            let t = self.quant_cube_rec(node.hi, rest, exists);
            // Short-circuit: ∨ saturates at 1, ∧ at 0.
            if t.is_true() && exists {
                NodeRef::TRUE
            } else if t.is_false() && !exists {
                NodeRef::FALSE
            } else {
                let e = self.quant_cube_rec(node.lo, rest, exists);
                if exists {
                    self.or(t, e)
                } else {
                    self.and(t, e)
                }
            }
        } else {
            let t = self.quant_cube_rec(node.hi, cube, exists);
            let e = self.quant_cube_rec(node.lo, cube, exists);
            self.mk(node.var, e, t)
        };
        self.cache.insert(op, f, cube, EMPTY, r);
        r
    }

    /// The relational product `∃ cube. f ∧ g` in one recursion, without ever
    /// materializing the conjunction `f ∧ g` (CUDD's `bddAndAbstract`).
    ///
    /// This is the image-computation workhorse: the intermediate conjunct of
    /// a frontier with a transition-relation part is typically far larger
    /// than either operand or the result, and this operator never builds it.
    /// Results are memoized in a dedicated cache (see [`BddStats`]'s
    /// `andex_lookups`/`andex_hits`) so relational products do not evict the
    /// ITE working set. `cube` must be a positive cube.
    pub fn and_exists(&mut self, f: NodeRef, g: NodeRef, cube: NodeRef) -> NodeRef {
        if f.is_false() || g.is_false() {
            return NodeRef::FALSE;
        }
        if f == g || g.is_true() {
            return self.exists_cube(f, cube);
        }
        if f.is_true() {
            return self.exists_cube(g, cube);
        }
        self.and_exists_rec(f, g, cube)
    }

    fn and_exists_rec(&mut self, f: NodeRef, g: NodeRef, cube: NodeRef) -> NodeRef {
        if f.is_false() || g.is_false() {
            return NodeRef::FALSE;
        }
        if f == g {
            return self.quant_cube_rec(f, cube, true);
        }
        if f.is_true() {
            return self.quant_cube_rec(g, cube, true);
        }
        if g.is_true() {
            return self.quant_cube_rec(f, cube, true);
        }
        // Both non-terminal. Conjunction is commutative: order the operands
        // by node index so (f, g) and (g, f) share one cache slot.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let top = self.level_of_node(f).min(self.level_of_node(g));
        // Advance the cube past variables above both operands.
        let mut cube = cube;
        while !cube.is_terminal() && self.level_of_node(cube) < top {
            debug_assert!(self.nodes[cube.idx()].lo.is_false(), "not a positive cube");
            cube = self.nodes[cube.idx()].hi;
        }
        if cube.is_terminal() {
            debug_assert!(cube.is_true(), "cube must not be the zero function");
            return self.and(f, g);
        }
        self.andex_lookups += 1;
        if let Some(r) = self.andex.lookup(OP_ANDEX, f, g, cube) {
            self.andex_hits += 1;
            return r;
        }
        self.op_visits += 1;
        let v = self.var_at_level[top as usize];
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let r = if self.level_of_node(cube) == top {
            let rest = self.nodes[cube.idx()].hi;
            let t = self.and_exists_rec(f1, g1, rest);
            if t.is_true() {
                NodeRef::TRUE
            } else {
                let e = self.and_exists_rec(f0, g0, rest);
                self.or(t, e)
            }
        } else {
            let t = self.and_exists_rec(f1, g1, cube);
            let e = self.and_exists_rec(f0, g0, cube);
            self.mk(v, e, t)
        };
        self.andex.insert(OP_ANDEX, f, g, cube, r);
        r
    }

    /// The generalized cofactor (Coudert/Madre `constrain`): a function that
    /// agrees with `f` everywhere `c` holds and is free to simplify outside
    /// `c`, i.e. `constrain(f, c) ∧ c == f ∧ c`.
    ///
    /// Used to minimize reachability frontiers against the reached set's
    /// don't-care space. When `c` is a positive cube this reduces to the
    /// ordinary cofactor `f|_c`. `c` must be satisfiable; `constrain(f, 0)`
    /// returns 0 by convention.
    pub fn constrain(&mut self, f: NodeRef, c: NodeRef) -> NodeRef {
        if c.is_false() {
            return NodeRef::FALSE;
        }
        self.constrain_rec(f, c)
    }

    fn constrain_rec(&mut self, f: NodeRef, c: NodeRef) -> NodeRef {
        if c.is_true() || f.is_terminal() {
            return f;
        }
        if f == c {
            return NodeRef::TRUE;
        }
        let top = self.level_of_node(f).min(self.level_of_node(c));
        let v = self.var_at_level[top as usize];
        let (c0, c1) = self.cofactors_at(c, v);
        // A one-sided care set maps the whole level onto the live branch —
        // this is where constrain drops variables (and why it is only a
        // *generalized* cofactor).
        if c0.is_false() {
            let (_, f1) = self.cofactors_at(f, v);
            return self.constrain_rec(f1, c1);
        }
        if c1.is_false() {
            let (f0, _) = self.cofactors_at(f, v);
            return self.constrain_rec(f0, c0);
        }
        self.memo_lookups += 1;
        if let Some(r) = self.cache.lookup(OP_CONSTRAIN, f, c, EMPTY) {
            self.memo_hits += 1;
            return r;
        }
        self.op_visits += 1;
        let (f0, f1) = self.cofactors_at(f, v);
        let t = self.constrain_rec(f1, c1);
        let e = self.constrain_rec(f0, c0);
        let r = self.mk(v, e, t);
        self.cache.insert(OP_CONSTRAIN, f, c, EMPTY, r);
        r
    }

    /// Difference `f ∧ ¬g` as a single ITE (`ite(g, 0, f)`), avoiding the
    /// materialized negation of `g`. The frontier step of reachability
    /// (`new ∖ reached`) is exactly this shape.
    pub fn and_not(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(g, NodeRef::FALSE, f)
    }

    /// Simultaneous variable renaming: rewrites `f` with every source
    /// variable of `pairs` replaced by its target variable.
    ///
    /// The substitution is performed bottom-up through [`Bdd::ite`], so it
    /// is correct for any variable order — targets need not occupy the
    /// levels of their sources. Sources must be distinct, and no target may
    /// also appear as a source or in the support of `f` (that would capture
    /// the renamed occurrences); the relational-image use — mapping
    /// next-state variables onto their quantified-out current-state rails —
    /// satisfies both by construction. Debug builds assert the
    /// source/target sets are disjoint.
    pub fn rename(&mut self, f: NodeRef, pairs: &[(Var, Var)]) -> NodeRef {
        let pairs: Vec<(Var, Var)> = pairs.iter().copied().filter(|&(s, t)| s != t).collect();
        if pairs.is_empty() || f.is_terminal() {
            return f;
        }
        debug_assert!(
            pairs
                .iter()
                .all(|&(_, t)| pairs.iter().all(|&(s, _)| s != t)),
            "rename target also appears as a source"
        );
        debug_assert!(
            pairs
                .iter()
                .enumerate()
                .all(|(i, &(s, _))| pairs[..i].iter().all(|&(s2, _)| s2 != s)),
            "duplicate rename source"
        );
        let mut map: Vec<u32> = (0..self.level_of_var.len() as u32).collect();
        for &(s, t) in &pairs {
            map[s.0 as usize] = t.0;
        }
        // Cross-call caching: intern the (source-sorted) map and use its
        // index as a token keying shared-cache entries, so subgraphs
        // shared between successive images skip the whole rebuild. The
        // cache's generation bump on gc/sifting invalidates these entries
        // along with everything else.
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|&(s, _)| s.0);
        let sorted: Vec<(u32, u32)> = sorted.into_iter().map(|(s, t)| (s.0, t.0)).collect();
        let token = match self.rename_maps.iter().position(|m| *m == sorted) {
            Some(i) => Some(i as u32),
            None if self.rename_maps.len() < RENAME_MAP_CAP => {
                self.rename_maps.push(sorted);
                Some(self.rename_maps.len() as u32 - 1)
            }
            None => None,
        };
        let mut memo = std::mem::take(&mut self.rename_memo);
        memo.begin(self.nodes.len());
        // Optimistic order-preserving rebuild: when the substitution keeps
        // every rebuilt node strictly above its children (checked locally,
        // which is exactly the ordered-BDD invariant), the renamed BDD has
        // `f`'s shape and plain `mk` per node suffices — no `ite`. The
        // relational-image rename (next-state rails onto their
        // quantified-out current-state neighbours) is order-preserving by
        // construction, and group-constrained sifting keeps it so. On a
        // violation the rebuild bails out to the general `ite`-based path;
        // memo entries from the partial attempt are correct renamed
        // subfunctions, so the fallback reuses them.
        let r = match self.rename_mono_rec(f, &map, token, &mut memo) {
            Some(r) => r,
            None => self.rename_rec(f, &map, token, &mut memo),
        };
        self.rename_memo = memo;
        r
    }

    /// Order-preserving rename: rebuilds `f` bottom-up substituting the
    /// variable labels directly. Returns `None` as soon as a substituted
    /// node would not sit strictly above its rebuilt children — the local
    /// ordered-BDD invariant whose node-wise validity makes the
    /// shape-preserving rebuild correct.
    fn rename_mono_rec(
        &mut self,
        f: NodeRef,
        map: &[u32],
        token: Option<u32>,
        memo: &mut RenameMemo,
    ) -> Option<NodeRef> {
        if f.is_terminal() {
            return Some(f);
        }
        if let Some(r) = memo.get(f) {
            return Some(r);
        }
        if let Some(tok) = token {
            if let Some(r) = self.cache.lookup(OP_RENAME, f, EMPTY, NodeRef(tok)) {
                memo.insert(f, r);
                return Some(r);
            }
        }
        let node = self.nodes[f.idx()];
        let lo = self.rename_mono_rec(node.lo, map, token, memo)?;
        let hi = self.rename_mono_rec(node.hi, map, token, memo)?;
        let v = map[node.var as usize];
        let vl = self.level_of_var[v as usize];
        for child in [lo, hi] {
            if !child.is_terminal() && self.level_of_var[self.nodes[child.idx()].var as usize] <= vl
            {
                return None;
            }
        }
        let r = self.mk(v, lo, hi);
        memo.insert(f, r);
        if let Some(tok) = token {
            self.cache.insert(OP_RENAME, f, EMPTY, NodeRef(tok), r);
        }
        Some(r)
    }

    fn rename_rec(
        &mut self,
        f: NodeRef,
        map: &[u32],
        token: Option<u32>,
        memo: &mut RenameMemo,
    ) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        if let Some(r) = memo.get(f) {
            return r;
        }
        if let Some(tok) = token {
            if let Some(r) = self.cache.lookup(OP_RENAME, f, EMPTY, NodeRef(tok)) {
                memo.insert(f, r);
                return r;
            }
        }
        let node = self.nodes[f.idx()];
        let lo = self.rename_rec(node.lo, map, token, memo);
        let hi = self.rename_rec(node.hi, map, token, memo);
        let v = map[node.var as usize];
        let vf = self.var(Var(v));
        let r = self.ite(vf, hi, lo);
        memo.insert(f, r);
        if let Some(tok) = token {
            self.cache.insert(OP_RENAME, f, EMPTY, NodeRef(tok), r);
        }
        r
    }

    /// The set of variables `f` essentially depends on, sorted by current
    /// level (root-most first).
    pub fn support(&self, f: NodeRef) -> Vec<Var> {
        let mut marks = self.marks.take();
        marks.begin(self.nodes.len());
        let mut vars: Vec<u32> = Vec::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marks.mark(n) {
                continue;
            }
            let node = &self.nodes[n.idx()];
            vars.push(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        self.marks.replace(marks);
        vars.sort_by_key(|&v| self.level_of_var[v as usize]);
        vars.dedup();
        vars.into_iter().map(Var).collect()
    }

    /// Evaluates `f` under the assignment `val` (a predicate on variables).
    pub fn eval(&self, f: NodeRef, val: impl Fn(Var) -> bool) -> bool {
        let mut n = f;
        while !n.is_terminal() {
            let node = &self.nodes[n.idx()];
            n = if val(Var(node.var)) { node.hi } else { node.lo };
        }
        n.is_true()
    }

    /// Number of satisfying assignments of `f` over all declared variables,
    /// saturating at `u128::MAX` when the count does not fit (128 or more
    /// variables can overflow). Use [`Bdd::checked_sat_count`] to detect
    /// overflow.
    pub fn sat_count(&self, f: NodeRef) -> u128 {
        self.checked_sat_count(f).unwrap_or(u128::MAX)
    }

    /// Number of satisfying assignments of `f` over all declared variables,
    /// or `None` if the count overflows `u128`.
    pub fn checked_sat_count(&self, f: NodeRef) -> Option<u128> {
        let nvars = self.num_vars() as u32;
        let mut memo: HashMap<NodeRef, u128> = HashMap::new();
        let below_root = self.sat_count_rec(f, &mut memo)?;
        // Scale by the variables above f's top level.
        let top = if f.is_terminal() {
            nvars
        } else {
            self.level_of_node(f)
        };
        shl_checked(below_root, top)
    }

    /// Counts assignments over the variables strictly below (and including)
    /// the node's level; `None` on overflow.
    fn sat_count_rec(&self, f: NodeRef, memo: &mut HashMap<NodeRef, u128>) -> Option<u128> {
        let nvars = self.num_vars() as u32;
        if f.is_false() {
            return Some(0);
        }
        if f.is_true() {
            return Some(1);
        }
        if let Some(&c) = memo.get(&f) {
            return Some(c);
        }
        let node = &self.nodes[f.idx()];
        let level = self.level_of_var[node.var as usize];
        let clevel = |child: NodeRef| {
            if child.is_terminal() {
                nvars
            } else {
                self.level_of_node(child)
            }
        };
        let lo = self.sat_count_rec(node.lo, memo)?;
        let hi = self.sat_count_rec(node.hi, memo)?;
        let wlo = shl_checked(lo, clevel(node.lo) - level - 1)?;
        let whi = shl_checked(hi, clevel(node.hi) - level - 1)?;
        let c = wlo.checked_add(whi)?;
        memo.insert(f, c);
        Some(c)
    }

    /// Returns one satisfying assignment of `f` as `(Var, bool)` pairs for
    /// the variables on the chosen path, or `None` if `f` is unsatisfiable.
    pub fn pick_cube(&self, f: NodeRef) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut n = f;
        while !n.is_terminal() {
            let node = &self.nodes[n.idx()];
            if node.hi.is_false() {
                cube.push((Var(node.var), false));
                n = node.lo;
            } else {
                cube.push((Var(node.var), true));
                n = node.hi;
            }
        }
        debug_assert!(n.is_true());
        Some(cube)
    }

    /// Number of distinct nodes (terminals excluded) reachable from `roots`.
    pub fn size(&self, roots: &[NodeRef]) -> usize {
        let mut marks = self.marks.take();
        marks.begin(self.nodes.len());
        let mut stack: Vec<NodeRef> = roots.to_vec();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marks.mark(n) {
                continue;
            }
            count += 1;
            let node = &self.nodes[n.idx()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        self.marks.replace(marks);
        count
    }

    /// Total allocated (live or dead) non-terminal nodes in the store.
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len() - 2 - self.free.len()
    }

    /// Mark-and-sweep garbage collection: frees every node not reachable
    /// from `roots` and invalidates the operation cache. Handles reachable
    /// from `roots` remain valid. Returns the number of nodes freed.
    pub fn gc(&mut self, roots: &[NodeRef]) -> usize {
        let mut marks = self.marks.take();
        marks.begin(self.nodes.len());
        let mut stack: Vec<NodeRef> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marks.mark(n) {
                continue;
            }
            let node = &self.nodes[n.idx()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let before = self.free.len();
        for table in &mut self.unique {
            table.retain(|n| marks.is_marked(n), &mut self.free);
        }
        self.marks.replace(marks);
        let freed = self.free.len() - before;
        self.reclaimed_nodes += freed as u64;
        self.cache.invalidate();
        self.andex.invalidate();
        freed
    }

    /// Invalidates both operation caches in O(1) (needed after reordering;
    /// done automatically by [`Bdd::sift`]).
    pub fn clear_cache(&mut self) {
        self.cache.invalidate();
        self.andex.invalidate();
    }

    /// Renders the graph rooted at `roots` in Graphviz DOT format.
    pub fn to_dot(&self, roots: &[(&str, NodeRef)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = Vec::new();
        for (name, r) in roots {
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(out, "  \"{name}\" -> n{};", r.0);
            stack.push(*r);
        }
        let _ = writeln!(out, "  n0 [shape=box,label=\"0\"];");
        let _ = writeln!(out, "  n1 [shape=box,label=\"1\"];");
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = &self.nodes[n.idx()];
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"];",
                n.0, self.var_names[node.var as usize]
            );
            let _ = writeln!(out, "  n{} -> n{} [style=dashed];", n.0, node.lo.0);
            let _ = writeln!(out, "  n{} -> n{};", n.0, node.hi.0);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        out.push_str("}\n");
        out
    }

    // ---- internals shared with the reorder module ----

    pub(crate) fn node(&self, n: NodeRef) -> (u32, NodeRef, NodeRef) {
        let node = &self.nodes[n.idx()];
        (node.var, node.lo, node.hi)
    }

    pub(crate) fn rewrite_node(&mut self, n: NodeRef, var: u32, lo: NodeRef, hi: NodeRef) {
        self.nodes[n.idx()] = Node { var, lo, hi };
    }

    pub(crate) fn unique_table(&self, var: u32) -> &UniqueTable {
        &self.unique[var as usize]
    }

    pub(crate) fn unique_table_mut(&mut self, var: u32) -> &mut UniqueTable {
        &mut self.unique[var as usize]
    }

    pub(crate) fn make_inner(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk_raw(var, lo, hi)
    }

    pub(crate) fn set_level(&mut self, v: u32, level: u32) {
        self.level_of_var[v as usize] = level;
        self.var_at_level[level as usize] = v;
    }

    /// Installs reference counts for every live node (callers must have
    /// garbage-collected first so the tables contain exactly the reachable
    /// nodes) and turns on sifting-time reclamation.
    pub(crate) fn rc_begin(&mut self, roots: &[NodeRef]) {
        self.rc.clear();
        self.rc.resize(self.nodes.len(), 0);
        let rc = &mut self.rc;
        for table in &self.unique {
            for (lo, hi, _) in table.iter() {
                if !lo.is_terminal() {
                    rc[lo.idx()] += 1;
                }
                if !hi.is_terminal() {
                    rc[hi.idx()] += 1;
                }
            }
        }
        for &r in roots {
            if !r.is_terminal() {
                rc[r.idx()] += 1;
            }
        }
        self.rc_active = true;
    }

    /// Turns sifting-time reclamation back off and drops the counts.
    pub(crate) fn rc_end(&mut self) {
        self.rc_active = false;
        self.rc.clear();
    }

    pub(crate) fn rc_is_active(&self) -> bool {
        self.rc_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (Bdd, Var, Var, Var) {
        let mut b = Bdd::new();
        let x = b.new_var("x");
        let y = b.new_var("y");
        let z = b.new_var("z");
        (b, x, y, z)
    }

    #[test]
    fn constants_and_vars() {
        let (mut b, x, _, _) = setup3();
        assert!(b.constant(true).is_true());
        assert!(b.constant(false).is_false());
        let fx = b.var(x);
        assert!(b.eval(fx, |_| true));
        assert!(!b.eval(fx, |_| false));
        let nx = b.nvar(x);
        let alt = b.not(fx);
        assert_eq!(nx, alt, "canonical: !x built two ways is one node");
    }

    #[test]
    fn canonical_hash_consing() {
        let (mut b, x, y, _) = setup3();
        let fx = b.var(x);
        let fy = b.var(y);
        let f1 = b.and(fx, fy);
        let f2 = b.and(fy, fx);
        assert_eq!(f1, f2, "and is commutative up to node identity");
        let g1 = b.or(fx, fy);
        let nfx = b.not(fx);
        let nfy = b.not(fy);
        let ng = b.and(nfx, nfy);
        let g2 = b.not(ng);
        assert_eq!(g1, g2, "De Morgan holds up to node identity");
    }

    #[test]
    fn ite_truth_table() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let f = b.ite(fx, fy, fz);
        for bits in 0..8u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            let want = if assign(x) { assign(y) } else { assign(z) };
            assert_eq!(b.eval(f, assign), want, "bits={bits:03b}");
        }
    }

    #[test]
    fn xor_iff_implies() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let fxor = b.xor(fx, fy);
        let fiff = b.iff(fx, fy);
        let fimp = b.implies(fx, fy);
        for bits in 0..4u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            assert_eq!(b.eval(fxor, assign), assign(x) ^ assign(y));
            assert_eq!(b.eval(fiff, assign), assign(x) == assign(y));
            assert_eq!(b.eval(fimp, assign), !assign(x) | assign(y));
        }
    }

    #[test]
    fn commutative_ops_share_cache_slots() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let _f = b.or(fx, fy);
        let hits_before = b.stats().cache_hits;
        let _g = b.or(fy, fx); // normalized to the same cache key
        assert!(
            b.stats().cache_hits > hits_before,
            "or(b, a) must hit the cache entry left by or(a, b)"
        );
        let _h = b.and(fx, fy);
        let hits_before = b.stats().cache_hits;
        let _k = b.and(fy, fx);
        assert!(
            b.stats().cache_hits > hits_before,
            "and(b, a) must hit the cache entry left by and(a, b)"
        );
    }

    #[test]
    fn restrict_and_exists() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy);
        let f_x1 = b.restrict(f, x, true);
        assert_eq!(f_x1, fy);
        let f_x0 = b.restrict(f, x, false);
        assert!(f_x0.is_false());
        let ex = b.exists(f, x);
        assert_eq!(ex, fy);
        let fa = b.forall(f, x);
        assert!(fa.is_false());
    }

    #[test]
    fn cofactors_match_restrict() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let t = b.and(fx, fy);
        let u = b.xor(fy, fz);
        let f = b.or(t, u);
        for v in [x, y, z] {
            let r0 = b.restrict(f, v, false);
            let r1 = b.restrict(f, v, true);
            b.clear_cache();
            let (c0, c1) = b.cofactors(f, v);
            assert_eq!((c0, c1), (r0, r1), "cofactors vs restrict at {v}");
        }
    }

    #[test]
    fn shared_cofactor_pass_halves_visits() {
        // Build a function wide enough that the traversal count is
        // meaningful, then compare two restrict sweeps against one
        // cofactors sweep on a cold cache.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..10).map(|i| b.new_var(format!("v{i}"))).collect();
        let mut f = NodeRef::FALSE;
        for w in vars.windows(2) {
            let a = b.var(w[0]);
            let c = b.var(w[1]);
            let t = b.and(a, c);
            f = b.xor(f, t);
        }
        let v = vars[9]; // bottom variable: every node is above it
        b.clear_cache();
        let before = b.stats().op_visits;
        let r0 = b.restrict(f, v, false);
        let r1 = b.restrict(f, v, true);
        let two_pass_visits = b.stats().op_visits - before;
        b.clear_cache();
        let before = b.stats().op_visits;
        let (c0, c1) = b.cofactors(f, v);
        let one_pass_visits = b.stats().op_visits - before;
        assert_eq!((c0, c1), (r0, r1));
        // Ideally one pass does half the visits of two; the lossy cache can
        // cost a few re-traversals, so assert a 25% drop at minimum.
        assert!(
            4 * one_pass_visits <= 3 * two_pass_visits,
            "shared pass must visit substantially fewer nodes: \
             one-pass {one_pass_visits} vs two-pass {two_pass_visits}"
        );
    }

    #[test]
    fn support_is_essential_dependence() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        // f = x·y + x·!y = x : support must not include y.
        let nfy = b.not(fy);
        let a = b.and(fx, fy);
        let c = b.and(fx, nfy);
        let f = b.or(a, c);
        assert_eq!(b.support(f), vec![x]);
        let g = b.and(fy, fz);
        assert_eq!(b.support(g), vec![y, z]);
    }

    #[test]
    fn sat_count_small() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        assert_eq!(b.sat_count(NodeRef::TRUE), 8);
        assert_eq!(b.sat_count(NodeRef::FALSE), 0);
        assert_eq!(b.sat_count(fx), 4);
        let f = b.and(fx, fy);
        assert_eq!(b.sat_count(f), 2);
        let g = b.or_all([fx, fy, fz]);
        assert_eq!(b.sat_count(g), 7);
        let h = b.xor(fx, fy);
        assert_eq!(b.sat_count(h), 4);
    }

    #[test]
    fn sat_count_at_the_u128_boundary() {
        // 127 variables: every count fits in u128.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..127).map(|i| b.new_var(format!("v{i}"))).collect();
        assert_eq!(b.checked_sat_count(NodeRef::TRUE), Some(1u128 << 127));
        let fx = b.var(vars[0]);
        assert_eq!(b.checked_sat_count(fx), Some(1u128 << 126));

        // 128 variables: the tautology's count (2^128) overflows, but
        // narrower functions still fit exactly.
        let mut b = Bdd::new();
        let vars: Vec<Var> = (0..128).map(|i| b.new_var(format!("v{i}"))).collect();
        assert_eq!(b.checked_sat_count(NodeRef::TRUE), None);
        assert_eq!(b.sat_count(NodeRef::TRUE), u128::MAX, "saturates, no panic");
        assert_eq!(b.checked_sat_count(NodeRef::FALSE), Some(0));
        let fx = b.var(vars[0]);
        assert_eq!(b.checked_sat_count(fx), Some(1u128 << 127));
        let nfx = b.not(fx);
        let taut = b.or(fx, nfx);
        assert_eq!(b.checked_sat_count(taut), None);
    }

    #[test]
    fn pick_cube_satisfies() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let nfx = b.not(fx);
        let f = b.and(nfx, fy);
        let cube = b.pick_cube(f).unwrap();
        let assign = |v: Var| cube.iter().any(|&(cv, val)| cv == v && val);
        assert!(b.eval(f, assign));
        assert_eq!(b.pick_cube(NodeRef::FALSE), None);
    }

    #[test]
    fn gc_frees_unreachable_keeps_reachable() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let keep = b.and(fx, fy);
        let _garbage = b.xor(fy, fz);
        let before = b.allocated_nodes();
        let freed = b.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(b.allocated_nodes(), before - freed);
        // keep still evaluates correctly after gc
        assert!(b.eval(keep, |_| true));
        // and new operations still work
        let again = b.and(fx, fy);
        assert_eq!(again, keep);
    }

    #[test]
    fn unique_table_remove_keeps_probe_chains_intact() {
        // Stress the backward-shift deletion: insert a batch, remove half
        // in an interleaved pattern, and verify every survivor is still
        // found and every removed key is gone.
        let mut t = UniqueTable::new();
        let n = 512u32;
        for i in 0..n {
            t.insert(NodeRef(i), NodeRef(i + 1), NodeRef(1000 + i));
        }
        for i in (0..n).step_by(2) {
            assert_eq!(
                t.remove(NodeRef(i), NodeRef(i + 1)),
                Some(NodeRef(1000 + i))
            );
        }
        assert_eq!(t.len(), n as usize / 2);
        for i in 0..n {
            let got = t.get(NodeRef(i), NodeRef(i + 1));
            if i % 2 == 0 {
                assert_eq!(got, None, "removed key {i} must be gone");
            } else {
                assert_eq!(got, Some(NodeRef(1000 + i)), "survivor {i} must be found");
            }
        }
        // Re-inserting removed keys must work and not duplicate.
        for i in (0..n).step_by(2) {
            assert_eq!(
                t.insert(NodeRef(i), NodeRef(i + 1), NodeRef(2000 + i)),
                None
            );
        }
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn op_cache_generation_invalidation() {
        let mut c = OpCache::new();
        c.insert(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7), NodeRef(8));
        assert_eq!(
            c.lookup(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7)),
            Some(NodeRef(8))
        );
        c.invalidate();
        assert_eq!(c.lookup(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7)), None);
        assert_eq!(c.len, 0);
        // Entries written after invalidation are visible again.
        c.insert(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7), NodeRef(9));
        assert_eq!(
            c.lookup(OP_ITE, NodeRef(5), NodeRef(6), NodeRef(7)),
            Some(NodeRef(9))
        );
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy);
        let g = b.or(fx, fy);
        let both = b.size(&[f, g]);
        assert!(both <= b.size(&[f]) + b.size(&[g]));
        assert_eq!(b.size(&[NodeRef::TRUE]), 0);
    }

    #[test]
    fn to_dot_contains_roots_and_terminals() {
        let (mut b, x, _, _) = setup3();
        let fx = b.var(x);
        let dot = b.to_dot(&[("f", fx)]);
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("label=\"x\""));
    }

    #[test]
    fn var_metadata() {
        let (b, x, y, z) = setup3();
        assert_eq!(b.num_vars(), 3);
        assert_eq!(b.var_name(y), "y");
        assert_eq!(b.level(x), 0);
        assert_eq!(b.var_at(2), z);
        assert_eq!(b.order(), vec![x, y, z]);
    }

    #[test]
    fn rename_substitutes_variables() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy); // x & y
        let r = b.rename(f, &[(y, z)]); // -> x & z
        let fz = b.var(z);
        let expect = b.and(fx, fz);
        assert_eq!(r, expect);
        // Untouched variables and empty maps are identities.
        assert_eq!(b.rename(f, &[]), f);
        assert_eq!(b.rename(f, &[(z, z)]), f);
    }

    #[test]
    fn rename_is_simultaneous_and_order_independent() {
        let mut b = Bdd::new();
        // Next-state rail declared *before* its current rail: renaming must
        // move functions upward in the order correctly.
        let xn = b.new_var("x'");
        let yn = b.new_var("y'");
        let x = b.new_var("x");
        let y = b.new_var("y");
        let (fxn, fyn) = (b.var(xn), b.var(yn));
        let nyn = b.not(fyn);
        let f = b.and(fxn, nyn); // x' & !y'
        let r = b.rename(f, &[(xn, x), (yn, y)]);
        let (fx, fy) = (b.var(x), b.var(y));
        let nfy = b.not(fy);
        let expect = b.and(fx, nfy);
        assert_eq!(r, expect);
        // Truth table agrees under the variable swap.
        for bits in 0..4u32 {
            let val = |v: Var| (v == x && bits & 1 != 0) || (v == y && bits & 2 != 0);
            let val_next = |v: Var| (v == xn && bits & 1 != 0) || (v == yn && bits & 2 != 0);
            assert_eq!(b.eval(r, val), b.eval(f, val_next));
        }
    }

    #[test]
    fn rename_preserves_sharing_with_xor() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.xor(fx, fy);
        let g = b.rename(f, &[(x, z)]);
        let fz = b.var(z);
        let expect = b.xor(fz, fy);
        assert_eq!(g, expect);
        assert_eq!(b.support(g), vec![y, z]);
    }
}
