/root/repo/target/debug/deps/theorem1-5bc2d7ef334524d2.d: crates/sgraph/tests/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-5bc2d7ef334524d2.rmeta: crates/sgraph/tests/theorem1.rs Cargo.toml

crates/sgraph/tests/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
