/root/repo/target/release/deps/falsepath-6ff2c84418652c6d.d: crates/bench/src/bin/falsepath.rs

/root/repo/target/release/deps/falsepath-6ff2c84418652c6d: crates/bench/src/bin/falsepath.rs

crates/bench/src/bin/falsepath.rs:
