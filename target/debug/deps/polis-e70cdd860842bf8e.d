/root/repo/target/debug/deps/polis-e70cdd860842bf8e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpolis-e70cdd860842bf8e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
