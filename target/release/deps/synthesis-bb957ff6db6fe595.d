/root/repo/target/release/deps/synthesis-bb957ff6db6fe595.d: crates/bench/benches/synthesis.rs

/root/repo/target/release/deps/synthesis-bb957ff6db6fe595: crates/bench/benches/synthesis.rs

crates/bench/benches/synthesis.rs:
