/root/repo/target/debug/deps/table3-51c1082d632c47ef.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-51c1082d632c47ef: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
