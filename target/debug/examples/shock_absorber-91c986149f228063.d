/root/repo/target/debug/examples/shock_absorber-91c986149f228063.d: examples/shock_absorber.rs

/root/repo/target/debug/examples/libshock_absorber-91c986149f228063.rmeta: examples/shock_absorber.rs

examples/shock_absorber.rs:
