/root/repo/target/debug/deps/table2-c27e2ab29275633a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-c27e2ab29275633a.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
