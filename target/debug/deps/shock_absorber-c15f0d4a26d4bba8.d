/root/repo/target/debug/deps/shock_absorber-c15f0d4a26d4bba8.d: crates/bench/src/bin/shock_absorber.rs Cargo.toml

/root/repo/target/debug/deps/libshock_absorber-c15f0d4a26d4bba8.rmeta: crates/bench/src/bin/shock_absorber.rs Cargo.toml

crates/bench/src/bin/shock_absorber.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
