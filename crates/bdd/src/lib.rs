//! A reduced ordered binary decision diagram (ROBDD) package with dynamic
//! variable reordering by sifting.
//!
//! BDDs are the key intermediate representation of the POLIS software
//! synthesis flow (Balarin et al., Section II-B): the CFSM reactive function
//! is represented by the BDD of its characteristic function, optimized by
//! Rudell's sifting algorithm under the constraint that *no output variable
//! sifts above any input in its support*, and then translated one-to-one into
//! an s-graph (Section III-B).
//!
//! The package provides:
//!
//! * a [`Bdd`] manager with hash-consed nodes, an ITE operation cache, and
//!   the usual Boolean operations ([`Bdd::and`], [`Bdd::or`], [`Bdd::not`],
//!   [`Bdd::xor`], [`Bdd::ite`], ...);
//! * cofactor/restriction ([`Bdd::restrict`]) and smoothing / existential
//!   quantification ([`Bdd::exists`]) used to build characteristic functions
//!   (Section II-C);
//! * mark-and-sweep garbage collection ([`Bdd::gc`]);
//! * in-place adjacent level swap and constrained sifting
//!   ([`Bdd::sift`], see the [`reorder`] module);
//! * multi-bit encodings of bounded-integer variables ([`encode`]).
//!
//! # Examples
//!
//! ```
//! use polis_bdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! let x = bdd.new_var("x");
//! let y = bdd.new_var("y");
//! let fx = bdd.var(x);
//! let fy = bdd.var(y);
//! let f = bdd.and(fx, fy);
//! assert!(bdd.eval(f, |v| v == x || v == y));
//! assert!(!bdd.eval(f, |v| v == x));
//! ```

pub mod encode;
pub mod reorder;

use std::collections::HashMap;
use std::fmt;

/// A BDD variable, identified by creation index (stable across reordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's creation index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A handle to a BDD node (a Boolean function rooted at that node).
///
/// Handles stay valid across [`Bdd::sift`] (reordering rewrites nodes in
/// place) and across [`Bdd::gc`] *if* the handle was reachable from the roots
/// passed to `gc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The constant false function.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The constant true function.
    pub const TRUE: NodeRef = NodeRef(1);

    /// `true` if this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// `true` if this is the true terminal.
    pub fn is_true(self) -> bool {
        self == NodeRef::TRUE
    }

    /// `true` if this is the false terminal.
    pub fn is_false(self) -> bool {
        self == NodeRef::FALSE
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

const TERMINAL_VAR: u32 = u32::MAX;
/// Level assigned to terminals: below every variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// A reduced ordered BDD manager.
///
/// All functions created by one manager share its node store and variable
/// order. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    free: Vec<NodeRef>,
    /// Per-variable unique tables: `(lo, hi) -> node`.
    unique: Vec<HashMap<(NodeRef, NodeRef), NodeRef>>,
    /// `level -> var index`.
    var_at_level: Vec<u32>,
    /// `var index -> level`.
    level_of_var: Vec<u32>,
    /// Human-readable variable names (debugging / DOT output).
    var_names: Vec<String>,
    ite_cache: HashMap<(NodeRef, NodeRef, NodeRef), NodeRef>,
    /// Total `mk` calls; a rough work counter exposed for benchmarks.
    mk_calls: u64,
    /// Operation-cache probes in `ite` (excluding terminal short-circuits).
    cache_lookups: u64,
    /// Operation-cache hits in `ite`.
    cache_hits: u64,
    /// Adjacent-level swaps performed (by `swap_levels`, hence by sifting).
    swap_count: u64,
}

/// A snapshot of the manager's work counters, exposed so the synthesis
/// pipeline can record layer-native metrics per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Total `mk` invocations.
    pub mk_calls: u64,
    /// Operation-cache probes in `ite`.
    pub cache_lookups: u64,
    /// Operation-cache hits in `ite`.
    pub cache_hits: u64,
    /// Adjacent-level swaps performed by reordering.
    pub swap_count: u64,
    /// Live entries across the per-variable unique tables.
    pub unique_entries: u64,
    /// Entries currently in the ITE operation cache.
    pub cache_entries: u64,
}

impl BddStats {
    /// Hit rate of the ITE operation cache in `[0, 1]`; zero when no
    /// lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates an empty manager with no variables.
    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: NodeRef::FALSE,
                    hi: NodeRef::FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: NodeRef::TRUE,
                    hi: NodeRef::TRUE,
                },
            ],
            free: Vec::new(),
            unique: Vec::new(),
            var_at_level: Vec::new(),
            level_of_var: Vec::new(),
            var_names: Vec::new(),
            ite_cache: HashMap::new(),
            mk_calls: 0,
            cache_lookups: 0,
            cache_hits: 0,
            swap_count: 0,
        }
    }

    /// Declares a new variable at the bottom of the current order.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let idx = self.level_of_var.len() as u32;
        self.level_of_var.push(self.var_at_level.len() as u32);
        self.var_at_level.push(idx);
        self.unique.push(HashMap::new());
        self.var_names.push(name.into());
        Var(idx)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// The name given to `v` at creation.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// The current level (0 = root-most) of variable `v`.
    pub fn level(&self, v: Var) -> usize {
        self.level_of_var[v.index()] as usize
    }

    /// The variable currently at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars()`.
    pub fn var_at(&self, level: usize) -> Var {
        Var(self.var_at_level[level])
    }

    /// The current variable order, root-most first.
    pub fn order(&self) -> Vec<Var> {
        self.var_at_level.iter().map(|&v| Var(v)).collect()
    }

    /// Total `mk` invocations so far (work counter for benchmarks).
    pub fn mk_calls(&self) -> u64 {
        self.mk_calls
    }

    /// Snapshot of the manager's cumulative work counters and current
    /// table sizes.
    pub fn stats(&self) -> BddStats {
        BddStats {
            mk_calls: self.mk_calls,
            cache_lookups: self.cache_lookups,
            cache_hits: self.cache_hits,
            swap_count: self.swap_count,
            unique_entries: self.unique.iter().map(|t| t.len() as u64).sum(),
            cache_entries: self.ite_cache.len() as u64,
        }
    }

    fn level_of_node(&self, n: NodeRef) -> u32 {
        let v = self.nodes[n.idx()].var;
        if v == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.level_of_var[v as usize]
        }
    }

    /// The variable labelling node `n`, or `None` for terminals.
    pub fn node_var(&self, n: NodeRef) -> Option<Var> {
        let v = self.nodes[n.idx()].var;
        (v != TERMINAL_VAR).then_some(Var(v))
    }

    /// The low (`var = 0`) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is a terminal.
    pub fn lo(&self, n: NodeRef) -> NodeRef {
        assert!(!n.is_terminal(), "terminals have no children");
        self.nodes[n.idx()].lo
    }

    /// The high (`var = 1`) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is a terminal.
    pub fn hi(&self, n: NodeRef) -> NodeRef {
        assert!(!n.is_terminal(), "terminals have no children");
        self.nodes[n.idx()].hi
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            NodeRef::TRUE
        } else {
            NodeRef::FALSE
        }
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: Var) -> NodeRef {
        self.mk(v.0, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// The single-variable function `!v`.
    pub fn nvar(&mut self, v: Var) -> NodeRef {
        self.mk(v.0, NodeRef::TRUE, NodeRef::FALSE)
    }

    /// Hash-consing node constructor; the only way nodes are created.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk_calls += 1;
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.level_of_var[var as usize] < self.level_of_node(lo)
                && self.level_of_var[var as usize] < self.level_of_node(hi),
            "mk would violate the variable order"
        );
        self.mk_raw(var, lo, hi)
    }

    /// Like `mk` but without the order assertion; used mid-swap when the
    /// recorded order is transiently inconsistent.
    fn mk_raw(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo;
        }
        if let Some(&n) = self.unique[var as usize].get(&(lo, hi)) {
            return n;
        }
        let node = Node { var, lo, hi };
        let r = if let Some(slot) = self.free.pop() {
            self.nodes[slot.idx()] = node;
            slot
        } else {
            let r = NodeRef(self.nodes.len() as u32);
            self.nodes.push(node);
            r
        };
        self.unique[var as usize].insert((lo, hi), r);
        r
    }

    /// If-then-else: `ite(f, g, h) = f·g + !f·h`. All other Boolean
    /// operations are derived from it.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> NodeRef {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if f == g {
            // f·f + !f·h = f + h = ite(f, 1, h)
            return self.ite(f, NodeRef::TRUE, h);
        }
        if f == h {
            // f·g + !f·f = f·g = ite(f, g, 0)
            return self.ite(f, g, NodeRef::FALSE);
        }
        self.cache_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.cache_hits += 1;
            return r;
        }
        let top = self
            .level_of_node(f)
            .min(self.level_of_node(g))
            .min(self.level_of_node(h));
        let v = self.var_at_level[top as usize];
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let (h0, h1) = self.cofactors_at(h, v);
        let t = self.ite(f1, g1, h1);
        let e = self.ite(f0, g0, h0);
        let r = self.mk(v, e, t);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Both cofactors of `n` with respect to variable index `v` (which must
    /// be at or above `n`'s level).
    fn cofactors_at(&self, n: NodeRef, v: u32) -> (NodeRef, NodeRef) {
        let node = &self.nodes[n.idx()];
        if node.var == v {
            (node.lo, node.hi)
        } else {
            (n, n)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, NodeRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, NodeRef::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: NodeRef) -> NodeRef {
        self.ite(f, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Biconditional (`f == g`).
    pub fn iff(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication (`f -> g`).
    pub fn implies(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.ite(f, g, NodeRef::TRUE)
    }

    /// Conjunction of all `fs`.
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter()
            .fold(NodeRef::TRUE, |acc, f| self.and(acc, f))
    }

    /// Disjunction of all `fs`.
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = NodeRef>) -> NodeRef {
        fs.into_iter()
            .fold(NodeRef::FALSE, |acc, f| self.or(acc, f))
    }

    /// The restriction (cofactor) `f|_{v = val}` (Section II-C).
    pub fn restrict(&mut self, f: NodeRef, v: Var, val: bool) -> NodeRef {
        let mut memo = HashMap::new();
        self.restrict_rec(f, v.0, val, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: NodeRef,
        v: u32,
        val: bool,
        memo: &mut HashMap<NodeRef, NodeRef>,
    ) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let flevel = self.level_of_node(f);
        let vlevel = self.level_of_var[v as usize];
        if flevel > vlevel {
            return f; // v does not occur in f
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let node = self.nodes[f.idx()];
        let r = if node.var == v {
            if val {
                node.hi
            } else {
                node.lo
            }
        } else {
            let lo = self.restrict_rec(node.lo, v, val, memo);
            let hi = self.restrict_rec(node.hi, v, val, memo);
            self.mk(node.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Existential quantification (smoothing, Section II-C):
    /// `∃v. f = f|_{v=0} + f|_{v=1}`.
    pub fn exists(&mut self, f: NodeRef, v: Var) -> NodeRef {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.or(f0, f1)
    }

    /// Existential quantification over several variables.
    pub fn exists_all(&mut self, f: NodeRef, vs: impl IntoIterator<Item = Var>) -> NodeRef {
        vs.into_iter().fold(f, |acc, v| self.exists(acc, v))
    }

    /// Universal quantification: `∀v. f = f|_{v=0} · f|_{v=1}`.
    pub fn forall(&mut self, f: NodeRef, v: Var) -> NodeRef {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.and(f0, f1)
    }

    /// The set of variables `f` essentially depends on, sorted by current
    /// level (root-most first).
    pub fn support(&self, f: NodeRef) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = &self.nodes[n.idx()];
            vars.insert(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let mut out: Vec<Var> = vars.into_iter().map(Var).collect();
        out.sort_by_key(|v| self.level_of_var[v.index()]);
        out
    }

    /// Evaluates `f` under the assignment `val` (a predicate on variables).
    pub fn eval(&self, f: NodeRef, val: impl Fn(Var) -> bool) -> bool {
        let mut n = f;
        while !n.is_terminal() {
            let node = &self.nodes[n.idx()];
            n = if val(Var(node.var)) { node.hi } else { node.lo };
        }
        n.is_true()
    }

    /// Number of satisfying assignments of `f` over all declared variables.
    ///
    /// # Panics
    ///
    /// Panics if more than 127 variables are declared (the count would not
    /// fit in a `u128`).
    pub fn sat_count(&self, f: NodeRef) -> u128 {
        let nvars = self.num_vars() as u32;
        assert!(nvars < 128, "sat_count supports at most 127 variables");
        let mut memo: HashMap<NodeRef, u128> = HashMap::new();
        let below_root = self.sat_count_rec(f, &mut memo);
        // Scale by the variables above f's top level.
        let top = if f.is_terminal() {
            nvars
        } else {
            self.level_of_node(f)
        };
        below_root << top
    }

    /// Counts assignments over the variables strictly below (and including)
    /// the node's level.
    fn sat_count_rec(&self, f: NodeRef, memo: &mut HashMap<NodeRef, u128>) -> u128 {
        let nvars = self.num_vars() as u32;
        if f.is_false() {
            return 0;
        }
        if f.is_true() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let node = &self.nodes[f.idx()];
        let level = self.level_of_var[node.var as usize];
        let child_weight = |s: &Bdd, child: NodeRef, count: u128| {
            let clevel = if child.is_terminal() {
                nvars
            } else {
                s.level_of_node(child)
            };
            count << (clevel - level - 1)
        };
        let lo = self.sat_count_rec(node.lo, memo);
        let hi = self.sat_count_rec(node.hi, memo);
        let c = child_weight(self, node.lo, lo) + child_weight(self, node.hi, hi);
        memo.insert(f, c);
        c
    }

    /// Returns one satisfying assignment of `f` as `(Var, bool)` pairs for
    /// the variables on the chosen path, or `None` if `f` is unsatisfiable.
    pub fn pick_cube(&self, f: NodeRef) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut n = f;
        while !n.is_terminal() {
            let node = &self.nodes[n.idx()];
            if node.hi.is_false() {
                cube.push((Var(node.var), false));
                n = node.lo;
            } else {
                cube.push((Var(node.var), true));
                n = node.hi;
            }
        }
        debug_assert!(n.is_true());
        Some(cube)
    }

    /// Number of distinct nodes (terminals excluded) reachable from `roots`.
    pub fn size(&self, roots: &[NodeRef]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<NodeRef> = roots.to_vec();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            count += 1;
            let node = &self.nodes[n.idx()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        count
    }

    /// Total allocated (live or dead) non-terminal nodes in the store.
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len() - 2 - self.free.len()
    }

    /// Mark-and-sweep garbage collection: frees every node not reachable
    /// from `roots` and clears the operation cache. Handles reachable from
    /// `roots` remain valid. Returns the number of nodes freed.
    pub fn gc(&mut self, roots: &[NodeRef]) -> usize {
        let mut marked = std::collections::HashSet::new();
        let mut stack: Vec<NodeRef> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !marked.insert(n) {
                continue;
            }
            let node = &self.nodes[n.idx()];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let mut freed = 0;
        for table in &mut self.unique {
            table.retain(|_, &mut n| {
                if marked.contains(&n) {
                    true
                } else {
                    self.free.push(n);
                    freed += 1;
                    false
                }
            });
        }
        self.ite_cache.clear();
        freed
    }

    /// Clears the ITE operation cache (needed after reordering; done
    /// automatically by [`Bdd::sift`]).
    pub fn clear_cache(&mut self) {
        self.ite_cache.clear();
    }

    /// Renders the graph rooted at `roots` in Graphviz DOT format.
    pub fn to_dot(&self, roots: &[(&str, NodeRef)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = Vec::new();
        for (name, r) in roots {
            let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
            let _ = writeln!(out, "  \"{name}\" -> n{};", r.0);
            stack.push(*r);
        }
        let _ = writeln!(out, "  n0 [shape=box,label=\"0\"];");
        let _ = writeln!(out, "  n1 [shape=box,label=\"1\"];");
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = &self.nodes[n.idx()];
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"];",
                n.0, self.var_names[node.var as usize]
            );
            let _ = writeln!(out, "  n{} -> n{} [style=dashed];", n.0, node.lo.0);
            let _ = writeln!(out, "  n{} -> n{};", n.0, node.hi.0);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        out.push_str("}\n");
        out
    }

    // ---- internals shared with the reorder module ----

    pub(crate) fn node(&self, n: NodeRef) -> (u32, NodeRef, NodeRef) {
        let node = &self.nodes[n.idx()];
        (node.var, node.lo, node.hi)
    }

    pub(crate) fn rewrite_node(&mut self, n: NodeRef, var: u32, lo: NodeRef, hi: NodeRef) {
        self.nodes[n.idx()] = Node { var, lo, hi };
    }

    pub(crate) fn unique_table(&self, var: u32) -> &HashMap<(NodeRef, NodeRef), NodeRef> {
        &self.unique[var as usize]
    }

    pub(crate) fn unique_table_mut(
        &mut self,
        var: u32,
    ) -> &mut HashMap<(NodeRef, NodeRef), NodeRef> {
        &mut self.unique[var as usize]
    }

    pub(crate) fn make_inner(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk_raw(var, lo, hi)
    }

    pub(crate) fn set_level(&mut self, v: u32, level: u32) {
        self.level_of_var[v as usize] = level;
        self.var_at_level[level as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (Bdd, Var, Var, Var) {
        let mut b = Bdd::new();
        let x = b.new_var("x");
        let y = b.new_var("y");
        let z = b.new_var("z");
        (b, x, y, z)
    }

    #[test]
    fn constants_and_vars() {
        let (mut b, x, _, _) = setup3();
        assert!(b.constant(true).is_true());
        assert!(b.constant(false).is_false());
        let fx = b.var(x);
        assert!(b.eval(fx, |_| true));
        assert!(!b.eval(fx, |_| false));
        let nx = b.nvar(x);
        let alt = b.not(fx);
        assert_eq!(nx, alt, "canonical: !x built two ways is one node");
    }

    #[test]
    fn canonical_hash_consing() {
        let (mut b, x, y, _) = setup3();
        let fx = b.var(x);
        let fy = b.var(y);
        let f1 = b.and(fx, fy);
        let f2 = b.and(fy, fx);
        assert_eq!(f1, f2, "and is commutative up to node identity");
        let g1 = b.or(fx, fy);
        let nfx = b.not(fx);
        let nfy = b.not(fy);
        let ng = b.and(nfx, nfy);
        let g2 = b.not(ng);
        assert_eq!(g1, g2, "De Morgan holds up to node identity");
    }

    #[test]
    fn ite_truth_table() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let f = b.ite(fx, fy, fz);
        for bits in 0..8u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            let want = if assign(x) { assign(y) } else { assign(z) };
            assert_eq!(b.eval(f, assign), want, "bits={bits:03b}");
        }
    }

    #[test]
    fn xor_iff_implies() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let fxor = b.xor(fx, fy);
        let fiff = b.iff(fx, fy);
        let fimp = b.implies(fx, fy);
        for bits in 0..4u32 {
            let assign = |v: Var| bits & (1 << v.0) != 0;
            assert_eq!(b.eval(fxor, assign), assign(x) ^ assign(y));
            assert_eq!(b.eval(fiff, assign), assign(x) == assign(y));
            assert_eq!(b.eval(fimp, assign), !assign(x) | assign(y));
        }
    }

    #[test]
    fn restrict_and_exists() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy);
        let f_x1 = b.restrict(f, x, true);
        assert_eq!(f_x1, fy);
        let f_x0 = b.restrict(f, x, false);
        assert!(f_x0.is_false());
        let ex = b.exists(f, x);
        assert_eq!(ex, fy);
        let fa = b.forall(f, x);
        assert!(fa.is_false());
    }

    #[test]
    fn support_is_essential_dependence() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        // f = x·y + x·!y = x : support must not include y.
        let nfy = b.not(fy);
        let a = b.and(fx, fy);
        let c = b.and(fx, nfy);
        let f = b.or(a, c);
        assert_eq!(b.support(f), vec![x]);
        let g = b.and(fy, fz);
        assert_eq!(b.support(g), vec![y, z]);
    }

    #[test]
    fn sat_count_small() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        assert_eq!(b.sat_count(NodeRef::TRUE), 8);
        assert_eq!(b.sat_count(NodeRef::FALSE), 0);
        assert_eq!(b.sat_count(fx), 4);
        let f = b.and(fx, fy);
        assert_eq!(b.sat_count(f), 2);
        let g = b.or_all([fx, fy, fz]);
        assert_eq!(b.sat_count(g), 7);
        let h = b.xor(fx, fy);
        assert_eq!(b.sat_count(h), 4);
    }

    #[test]
    fn pick_cube_satisfies() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let nfx = b.not(fx);
        let f = b.and(nfx, fy);
        let cube = b.pick_cube(f).unwrap();
        let assign = |v: Var| cube.iter().any(|&(cv, val)| cv == v && val);
        assert!(b.eval(f, assign));
        assert_eq!(b.pick_cube(NodeRef::FALSE), None);
    }

    #[test]
    fn gc_frees_unreachable_keeps_reachable() {
        let (mut b, x, y, z) = setup3();
        let (fx, fy, fz) = (b.var(x), b.var(y), b.var(z));
        let keep = b.and(fx, fy);
        let _garbage = b.xor(fy, fz);
        let before = b.allocated_nodes();
        let freed = b.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(b.allocated_nodes(), before - freed);
        // keep still evaluates correctly after gc
        assert!(b.eval(keep, |_| true));
        // and new operations still work
        let again = b.and(fx, fy);
        assert_eq!(again, keep);
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let (mut b, x, y, _) = setup3();
        let (fx, fy) = (b.var(x), b.var(y));
        let f = b.and(fx, fy);
        let g = b.or(fx, fy);
        let both = b.size(&[f, g]);
        assert!(both <= b.size(&[f]) + b.size(&[g]));
        assert_eq!(b.size(&[NodeRef::TRUE]), 0);
    }

    #[test]
    fn to_dot_contains_roots_and_terminals() {
        let (mut b, x, _, _) = setup3();
        let fx = b.var(x);
        let dot = b.to_dot(&[("f", fx)]);
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("label=\"x\""));
    }

    #[test]
    fn var_metadata() {
        let (b, x, y, z) = setup3();
        assert_eq!(b.num_vars(), 3);
        assert_eq!(b.var_name(y), "y");
        assert_eq!(b.level(x), 0);
        assert_eq!(b.var_at(2), z);
        assert_eq!(b.order(), vec![x, y, z]);
    }
}
