/root/repo/target/debug/deps/granularity-02ee35ed7e31a33d.d: crates/bench/src/bin/granularity.rs

/root/repo/target/debug/deps/granularity-02ee35ed7e31a33d: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:
