/root/repo/target/debug/examples/seatbelt-444c6c7df3a9defd.d: examples/seatbelt.rs

/root/repo/target/debug/examples/libseatbelt-444c6c7df3a9defd.rmeta: examples/seatbelt.rs

examples/seatbelt.rs:
