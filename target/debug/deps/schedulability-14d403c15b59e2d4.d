/root/repo/target/debug/deps/schedulability-14d403c15b59e2d4.d: crates/bench/src/bin/schedulability.rs Cargo.toml

/root/repo/target/debug/deps/libschedulability-14d403c15b59e2d4.rmeta: crates/bench/src/bin/schedulability.rs Cargo.toml

crates/bench/src/bin/schedulability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
