//! Finite-domain types and runtime values.

use std::error::Error;
use std::fmt;

/// The type of a CFSM variable: a boolean or a bounded integer.
///
/// Every CFSM variable ranges over a *finite* domain (Section II-D); this is
/// what makes the characteristic-function/BDD machinery applicable. Integers
/// carry an explicit bit width (1..=32) and signedness; values wrap to the
/// width on assignment, like a C integer of that size.
///
/// # Examples
///
/// ```
/// use polis_expr::Type;
/// let t = Type::uint(4);
/// assert_eq!(t.domain_size(), 16);
/// assert_eq!(t.clamp(17), 1); // wraps modulo 2^4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A boolean (presence flag, pure value).
    Bool,
    /// A bounded integer with `bits` significant bits.
    Int {
        /// Number of bits, `1..=32`.
        bits: u8,
        /// Two's-complement if `true`, otherwise unsigned.
        signed: bool,
    },
}

impl Type {
    /// An unsigned integer type of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn uint(bits: u8) -> Type {
        assert!((1..=32).contains(&bits), "integer width must be 1..=32");
        Type::Int {
            bits,
            signed: false,
        }
    }

    /// A signed (two's complement) integer type of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn int(bits: u8) -> Type {
        assert!((1..=32).contains(&bits), "integer width must be 1..=32");
        Type::Int { bits, signed: true }
    }

    /// Number of distinct values of this type.
    pub fn domain_size(self) -> u64 {
        match self {
            Type::Bool => 2,
            Type::Int { bits, .. } => 1u64 << bits,
        }
    }

    /// Number of bits needed to encode one value of this type in a BDD
    /// (`1` for booleans, `bits` for integers).
    pub fn encoded_bits(self) -> u8 {
        match self {
            Type::Bool => 1,
            Type::Int { bits, .. } => bits,
        }
    }

    /// Smallest representable value.
    pub fn min_value(self) -> i64 {
        match self {
            Type::Bool => 0,
            Type::Int { signed: false, .. } => 0,
            Type::Int { bits, signed: true } => -(1i64 << (bits - 1)),
        }
    }

    /// Largest representable value.
    pub fn max_value(self) -> i64 {
        match self {
            Type::Bool => 1,
            Type::Int {
                bits,
                signed: false,
            } => (1i64 << bits) - 1,
            Type::Int { bits, signed: true } => (1i64 << (bits - 1)) - 1,
        }
    }

    /// Wraps `v` into the representable range of this type, with C-like
    /// modular semantics.
    pub fn clamp(self, v: i64) -> i64 {
        match self {
            Type::Bool => {
                if v == 0 {
                    0
                } else {
                    1
                }
            }
            Type::Int {
                bits,
                signed: false,
            } => {
                let mask = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                (v as u64 & mask) as i64
            }
            Type::Int { bits, signed: true } => {
                let shift = 64 - u32::from(bits);
                (v << shift) >> shift
            }
        }
    }

    /// Encodes a value of this type into an unsigned bit pattern of
    /// [`Type::encoded_bits`] bits (two's complement for signed types).
    pub fn encode(self, v: i64) -> u64 {
        let clamped = self.clamp(v);
        match self {
            Type::Bool => clamped as u64 & 1,
            Type::Int { bits, .. } => {
                let mask = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                clamped as u64 & mask
            }
        }
    }

    /// Decodes a bit pattern produced by [`Type::encode`] back to a value.
    pub fn decode(self, bits_value: u64) -> i64 {
        match self {
            Type::Bool => (bits_value & 1) as i64,
            Type::Int { .. } => self.clamp(bits_value as i64),
        }
    }

    /// The C type used to hold values of this type in generated code.
    pub fn c_type(self) -> &'static str {
        match self {
            Type::Bool => "unsigned char",
            Type::Int {
                bits,
                signed: false,
            } => {
                if bits <= 8 {
                    "unsigned char"
                } else if bits <= 16 {
                    "unsigned short"
                } else {
                    "unsigned long"
                }
            }
            Type::Int { bits, signed: true } => {
                if bits <= 8 {
                    "signed char"
                } else if bits <= 16 {
                    "short"
                } else {
                    "long"
                }
            }
        }
    }

    /// Size in bytes of a value of this type on an 8-bit-class target.
    pub fn byte_size(self) -> u32 {
        match self {
            Type::Bool => 1,
            Type::Int { bits, .. } => u32::from(bits).div_ceil(8),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int {
                bits,
                signed: false,
            } => write!(f, "u{bits}"),
            Type::Int { bits, signed: true } => write!(f, "i{bits}"),
        }
    }
}

/// A runtime value: a boolean or an integer.
///
/// Values are untyped at rest; the owning variable's [`Type`] wraps them on
/// assignment. Relational operators produce [`Value::Bool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A truth value.
    Bool(bool),
    /// An integer value (already within its variable's range).
    Int(i64),
}

impl Value {
    /// A boolean value.
    pub fn truth(v: bool) -> Value {
        Value::Bool(v)
    }

    /// An integer value.
    pub fn from_i64(v: i64) -> Value {
        Value::Int(v)
    }

    /// Interprets the value as a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::ExpectedBool`] for integer values, so that type
    /// confusion in specifications is caught rather than coerced.
    pub fn as_bool(self) -> Result<bool, TypeError> {
        match self {
            Value::Bool(b) => Ok(b),
            Value::Int(v) => Err(TypeError::ExpectedBool { found: v }),
        }
    }

    /// Interprets the value as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::ExpectedInt`] for boolean values.
    pub fn as_int(self) -> Result<i64, TypeError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Bool(b) => Err(TypeError::ExpectedInt { found: b }),
        }
    }

    /// The default (reset) value of a type: `false` or `0`.
    pub fn default_of(ty: Type) -> Value {
        match ty {
            Type::Bool => Value::Bool(false),
            Type::Int { .. } => Value::Int(0),
        }
    }

    /// Wraps the value to `ty`'s range; booleans pass through unchanged when
    /// `ty` is boolean, integers are clamped modularly.
    pub fn coerce(self, ty: Type) -> Value {
        match (self, ty) {
            (Value::Bool(b), Type::Bool) => Value::Bool(b),
            (Value::Int(v), Type::Bool) => Value::Bool(v != 0),
            (Value::Bool(b), t @ Type::Int { .. }) => Value::Int(t.clamp(i64::from(b))),
            (Value::Int(v), t @ Type::Int { .. }) => Value::Int(t.clamp(v)),
        }
    }

    /// Encodes the value as a bit pattern of `ty.encoded_bits()` bits.
    pub fn encode(self, ty: Type) -> u64 {
        match self.coerce(ty) {
            Value::Bool(b) => u64::from(b),
            Value::Int(v) => ty.encode(v),
        }
    }

    /// Decodes a bit pattern into a value of type `ty`.
    pub fn decode(ty: Type, bits: u64) -> Value {
        match ty {
            Type::Bool => Value::Bool(bits & 1 == 1),
            Type::Int { .. } => Value::Int(ty.decode(bits)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", u8::from(*b)),
            Value::Int(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

/// A runtime type mismatch between a value and its expected kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeError {
    /// A boolean was expected but an integer was found.
    ExpectedBool {
        /// The offending integer.
        found: i64,
    },
    /// An integer was expected but a boolean was found.
    ExpectedInt {
        /// The offending boolean.
        found: bool,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::ExpectedBool { found } => {
                write!(f, "expected a boolean value, found integer {found}")
            }
            TypeError::ExpectedInt { found } => {
                write!(f, "expected an integer value, found boolean {found}")
            }
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_clamp_wraps_modularly() {
        let t = Type::uint(4);
        assert_eq!(t.clamp(16), 0);
        assert_eq!(t.clamp(17), 1);
        assert_eq!(t.clamp(-1), 15);
        assert_eq!(t.min_value(), 0);
        assert_eq!(t.max_value(), 15);
    }

    #[test]
    fn int_clamp_is_twos_complement() {
        let t = Type::int(4);
        assert_eq!(t.clamp(7), 7);
        assert_eq!(t.clamp(8), -8);
        assert_eq!(t.clamp(-9), 7);
        assert_eq!(t.min_value(), -8);
        assert_eq!(t.max_value(), 7);
    }

    #[test]
    fn encode_decode_roundtrip_uint() {
        let t = Type::uint(5);
        for v in 0..32 {
            assert_eq!(t.decode(t.encode(v)), v);
        }
    }

    #[test]
    fn encode_decode_roundtrip_signed() {
        let t = Type::int(5);
        for v in -16..16 {
            assert_eq!(t.decode(t.encode(v)), v);
        }
    }

    #[test]
    fn bool_encode_roundtrip() {
        for b in [false, true] {
            let v = Value::truth(b);
            assert_eq!(Value::decode(Type::Bool, v.encode(Type::Bool)), v);
        }
    }

    #[test]
    fn value_accessors_enforce_kinds() {
        assert!(Value::Int(3).as_bool().is_err());
        assert!(Value::Bool(true).as_int().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::Int(9).as_int().unwrap(), 9);
    }

    #[test]
    fn coerce_between_kinds() {
        assert_eq!(Value::Int(2).coerce(Type::Bool), Value::Bool(true));
        assert_eq!(Value::Bool(true).coerce(Type::uint(8)), Value::Int(1));
        assert_eq!(Value::Int(300).coerce(Type::uint(8)), Value::Int(44));
    }

    #[test]
    fn domain_sizes() {
        assert_eq!(Type::Bool.domain_size(), 2);
        assert_eq!(Type::uint(3).domain_size(), 8);
        assert_eq!(Type::int(3).domain_size(), 8);
    }

    #[test]
    fn byte_sizes_for_mcu_target() {
        assert_eq!(Type::Bool.byte_size(), 1);
        assert_eq!(Type::uint(8).byte_size(), 1);
        assert_eq!(Type::uint(9).byte_size(), 2);
        assert_eq!(Type::uint(16).byte_size(), 2);
        assert_eq!(Type::uint(17).byte_size(), 3);
    }

    #[test]
    #[should_panic(expected = "integer width")]
    fn zero_width_rejected() {
        let _ = Type::uint(0);
    }
}
