/root/repo/target/debug/deps/polis_bdd-35e8e77f6ce033a9.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_bdd-35e8e77f6ce033a9.rmeta: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
