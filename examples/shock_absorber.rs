//! The shock absorber controller redesign (Section V-B): full synthesis
//! including the RTOS, ROM/RAM accounting with and without the
//! write-before-read buffering optimization, and an I/O latency check.
//!
//! Run with `cargo run --example shock_absorber`.

use polis::core::{synthesize_network, workloads, SynthesisOptions};
use polis::rtos::{RtosConfig, Simulator, Stimulus};
use polis::sgraph::BufferPolicy;

fn main() {
    let net = workloads::shock_absorber();
    println!("shock absorber network: {} CFSMs", net.cfsms().len());

    // The paper's implementation copies every variable on entry; the
    // announced data-flow optimization buffers only write-before-read
    // hazards. Compare both.
    for (label, policy) in [
        ("buffer-all (paper)", BufferPolicy::All),
        ("write-before-read only", BufferPolicy::Minimal),
    ] {
        let opts = SynthesisOptions {
            buffering: policy,
            ..SynthesisOptions::default()
        };
        let r = synthesize_network(&net, &opts, &RtosConfig::default());
        println!(
            "{label:<24} ROM {:>6} B   RAM {:>5} B   (incl. generated RTOS)",
            r.total_rom, r.total_ram
        );
    }

    // Latency: acceleration sample -> filtered output, and mode command ->
    // valve refresh, under a realistic stimulus.
    let mut stim = Vec::new();
    for i in 0..10u64 {
        stim.push(Stimulus::valued(
            i * 50_000,
            "acc_sample",
            if i % 2 == 0 { 30 } else { -30 },
        ));
    }
    stim.push(Stimulus::valued(20_000, "speed_sample", 110));
    stim.push(Stimulus::pure(260_000, "window"));
    for i in 0..4u64 {
        stim.push(Stimulus::pure(300_000 + i * 100_000, "pwm_tick"));
    }
    let mut sim = Simulator::build(&net, RtosConfig::default());
    sim.run(&stim);

    println!("\n--- trace ---");
    for t in sim.trace() {
        match t.value {
            Some(v) => println!(
                "t={:>8}  {:<10} = {:>4}  (by {})",
                t.time, t.signal, v, t.by
            ),
            None => println!("t={:>8}  {:<10}         (by {})", t.time, t.signal, t.by),
        }
    }

    let lat = sim
        .worst_latency(&stim, "acc_sample", "acc_f")
        .expect("filter responded");
    // The paper's specification allowed a 12 unit I/O latency; at a 1 MHz
    // 68HC11-class clock a 12 ms budget is 12_000 cycles.
    let budget = 12_000;
    println!(
        "\nworst acc_sample -> acc_f latency: {lat} cycles (budget {budget}): {}",
        if lat <= budget { "MET" } else { "MISSED" }
    );
}
