//! The `polis` command-line tool: synthesize, estimate, simulate, and
//! inspect CFSM networks written in the textual specification language.
//!
//! ```text
//! polis synth <spec> [-o DIR] [--style dg|chain|2lvl] [--target mcu8|risc32]
//!                    [--scheme natural|after-inputs|after-support]
//!                    [--buffering all|minimal] [--collapse]
//! polis estimate <spec> [same options]
//! polis sim <spec> --stim <file> [--policy rr|prio] [--target ...]
//! polis verify <spec> [--props] [--node-budget N] [--reorder-threshold N|off]
//! polis prop <spec> [--max-rings N] [--node-budget N] [--reorder-threshold N|off]
//! polis dot <spec> [--module NAME]
//! ```
//!
//! Stimulus files contain one event per line: `<time> <signal> [value]`;
//! `#` starts a comment.

use polis::cfsm::Network;
use polis::codegen::emit_network_header;
use polis::core::{
    synthesize_network, synthesize_network_staged, ImplStyle, MetricValue, StageRecord, SynthTrace,
    SynthesisOptions,
};
use polis::lang::{emit_spec_source, parse_network, parse_spec, Spec};
use polis::rtos::{RtosConfig, SchedulingPolicy, Simulator, Stimulus};
use polis::sgraph::BufferPolicy;
use polis::verify::{verify_network, verify_with_props, VerifyOptions};
use polis::vm::Profile;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("polis: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if it
                    .peek()
                    .map(|n| !n.starts_with("--") && !n.starts_with('-'))
                    .unwrap_or(false)
                    && takes_value(name)
                {
                    it.next()
                } else {
                    None
                };
                flags.push((name.to_owned(), value));
            } else if let Some(name) = a.strip_prefix('-') {
                let value = if takes_value(name) { it.next() } else { None };
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn takes_value(name: &str) -> bool {
    matches!(
        name,
        "o" | "style"
            | "target"
            | "scheme"
            | "buffering"
            | "stim"
            | "policy"
            | "module"
            | "jobs"
            | "trace"
            | "node-budget"
            | "reorder-threshold"
            | "max-rings"
    )
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw);
    let Some(command) = args.positional.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "synth" => synth(&args),
        "estimate" => estimate_cmd(&args),
        "sim" => sim(&args),
        "verify" => verify_cmd(&args),
        "prop" => prop_cmd(&args),
        "dot" => dot(&args),
        "fmt" => fmt(&args),
        "help" | "--help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     polis synth <spec> [-o DIR] [--style dg|chain|2lvl] [--target mcu8|risc32]\n    \
       [--scheme natural|after-inputs|after-support] [--buffering all|minimal] [--collapse]\n    \
       [--jobs N] [--trace FILE] [--verify] [--refine] [--node-budget N]\n    \
       [--reorder-threshold N|off]\n  \
     polis estimate <spec> [same options]\n  \
     polis sim <spec> --stim <file> [--policy rr|prio] [--target mcu8|risc32]\n  \
     polis verify <spec> [--props] [--node-budget N] [--reorder-threshold N|off]\n    \
       [--max-rings N]\n  \
     polis prop <spec> [--max-rings N] [--node-budget N] [--reorder-threshold N|off]\n  \
     polis dot <spec> [--module NAME]\n  \
     polis fmt <spec>"
        .to_owned()
}

fn load_network(args: &Args) -> Result<Network, String> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| format!("missing <spec> argument\n{}", usage()))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = PathBuf::from(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "network".to_owned());
    parse_network(&name, &src).map_err(|e| format!("{path}:{e}"))
}

/// Like [`load_network`], keeping the resolved property suite.
fn load_spec(args: &Args) -> Result<(String, Spec), String> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| format!("missing <spec> argument\n{}", usage()))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = PathBuf::from(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "network".to_owned());
    let spec = parse_spec(&name, &src).map_err(|e| format!("{path}:{e}"))?;
    Ok((path.clone(), spec))
}

/// The verification flags shared by `verify` and `prop`.
fn verify_options(args: &Args) -> Result<VerifyOptions, String> {
    let mut vopts = VerifyOptions::default();
    if let Some(budget) = args.flag("node-budget") {
        vopts.node_budget = budget
            .parse::<usize>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| format!("--node-budget takes a positive integer, got `{budget}`"))?;
    }
    if let Some(threshold) = args.flag("reorder-threshold") {
        vopts.reorder_threshold = parse_reorder_threshold(threshold)?;
    }
    if let Some(cap) = args.flag("max-rings") {
        vopts.max_trace_rings = cap
            .parse::<usize>()
            .ok()
            .filter(|&c| c >= 1)
            .ok_or_else(|| format!("--max-rings takes a positive integer, got `{cap}`"))?;
    }
    Ok(vopts)
}

fn options(args: &Args) -> Result<SynthesisOptions, String> {
    let mut opts = SynthesisOptions::default();
    if let Some(style) = args.flag("style") {
        opts.style = match style {
            "dg" | "decision-graph" => ImplStyle::DecisionGraph,
            "chain" | "ite" => ImplStyle::IteChain,
            "2lvl" | "two-level" => ImplStyle::TwoLevel,
            other => return Err(format!("unknown style `{other}`")),
        };
    }
    if let Some(scheme) = args.flag("scheme") {
        opts.scheme = match scheme {
            "natural" => polis::cfsm::OrderScheme::Natural,
            "after-inputs" => polis::cfsm::OrderScheme::OutputsAfterAllInputs,
            "after-support" => polis::cfsm::OrderScheme::OutputsAfterSupport,
            other => return Err(format!("unknown scheme `{other}`")),
        };
    }
    if let Some(target) = args.flag("target") {
        opts.profile = parse_target(target)?;
    }
    if let Some(buffering) = args.flag("buffering") {
        opts.buffering = match buffering {
            "all" => BufferPolicy::All,
            "minimal" | "wbr" => BufferPolicy::Minimal,
            other => return Err(format!("unknown buffering policy `{other}`")),
        };
    }
    opts.collapse = args.has("collapse");
    opts.verify = args.has("verify") || args.has("refine");
    opts.verify_refine_estimates = args.has("refine");
    if let Some(budget) = args.flag("node-budget") {
        opts.verify_node_budget = budget
            .parse::<usize>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| format!("--node-budget takes a positive integer, got `{budget}`"))?;
    }
    if let Some(threshold) = args.flag("reorder-threshold") {
        opts.verify_reorder_threshold = parse_reorder_threshold(threshold)?;
    }
    Ok(opts)
}

/// `--reorder-threshold N` (positive node count) or `off` to disable
/// mid-reachability sifting.
fn parse_reorder_threshold(raw: &str) -> Result<usize, String> {
    if raw == "off" {
        return Ok(usize::MAX);
    }
    raw.parse::<usize>()
        .ok()
        .filter(|&t| t >= 1)
        .ok_or_else(|| {
            format!("--reorder-threshold takes a positive integer or `off`, got `{raw}`")
        })
}

fn parse_target(target: &str) -> Result<Profile, String> {
    match target {
        "mcu8" => Ok(Profile::Mcu8),
        "risc32" => Ok(Profile::Risc32),
        other => Err(format!("unknown target `{other}`")),
    }
}

fn cost_table(net: &Network, result: &polis::core::NetworkSynthesis) {
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>10}",
        "module", "ROM[B]", "RAM[B]", "min[cyc]", "max[cyc]"
    );
    for (m, r) in net.cfsms().iter().zip(&result.machines) {
        println!(
            "{:<14} {:>8} {:>8} {:>10} {:>10}",
            m.name(),
            r.measured.size_bytes,
            r.measured.ram_bytes,
            r.measured.min_cycles,
            r.measured.max_cycles
        );
    }
    println!(
        "total ROM {} B (incl. RTOS allowance), RAM {} B, synthesis {:?}",
        result.total_rom, result.total_ram, result.synthesis_time
    );
}

fn synth(args: &Args) -> Result<(), String> {
    let parse_start = std::time::Instant::now();
    let net = load_network(args)?;
    let parse_wall = parse_start.elapsed();
    let opts = options(args)?;
    let jobs = match args.flag("jobs") {
        Some(j) => j
            .parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| format!("--jobs takes a positive integer, got `{j}`"))?,
        None => 1,
    };

    let mut trace = SynthTrace::new();
    trace.push(StageRecord {
        stage: "parse",
        machine: None,
        wall: parse_wall,
        counters: vec![(
            "modules".to_owned(),
            MetricValue::Int(net.cfsms().len() as u64),
        )],
    });
    let (result, synth_trace) =
        match synthesize_network_staged(&net, &opts, &RtosConfig::default(), jobs) {
            Ok(r) => r,
            Err(failure) => {
                // Flush the partial trace before reporting the abort, so
                // an interrupted run still leaves its instrumentation.
                trace.extend(failure.trace);
                if let Some(trace_path) = args.flag("trace") {
                    std::fs::write(trace_path, trace.to_json())
                        .map_err(|e| format!("cannot write `{trace_path}`: {e}"))?;
                    eprintln!("polis: wrote partial trace to {trace_path}");
                }
                return Err(failure.error.to_string());
            }
        };
    trace.extend(synth_trace);

    let out_dir = PathBuf::from(args.flag("o").unwrap_or("."));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", out_dir.display()))?;
    let write = |name: &str, content: &str| -> Result<(), String> {
        let p = out_dir.join(name);
        std::fs::write(&p, content).map_err(|e| format!("cannot write `{}`: {e}", p.display()))?;
        println!("wrote {}", p.display());
        Ok(())
    };
    write("polis_rtos.h", &emit_network_header(&net))?;
    write("rtos.c", &result.rtos_c)?;
    for (m, r) in net.cfsms().iter().zip(&result.machines) {
        write(&format!("{}.c", m.name()), &r.c_code)?;
    }
    if let Some(trace_path) = args.flag("trace") {
        std::fs::write(trace_path, trace.to_json())
            .map_err(|e| format!("cannot write `{trace_path}`: {e}"))?;
        println!("wrote {trace_path}");
    }
    println!();
    cost_table(&net, &result);
    if let Some(report) = &result.verify {
        println!();
        print!("{}", report.render());
        if opts.verify_refine_estimates {
            for (m, r) in net.cfsms().iter().zip(&result.machines) {
                if let Some(reach) = r.max_cycles_reach_aware {
                    println!(
                        "{}: max cycles {} (reach-aware {})",
                        m.name(),
                        r.estimate.max_cycles,
                        reach
                    );
                }
            }
        }
    }
    Ok(())
}

fn verify_cmd(args: &Args) -> Result<(), String> {
    let (_, spec) = load_spec(args)?;
    let net = &spec.network;
    let vopts = verify_options(args)?;
    if !args.has("props") {
        let report = verify_network(net, &vopts).map_err(|e| e.to_string())?;
        print!("{}", report.render());
        println!(
            "verification took {:?} ({} iterations)",
            report.stats.wall, report.stats.iterations
        );
        return Ok(());
    }
    let (report, props) =
        verify_with_props(net, &spec.properties, &vopts).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    if let Some(trace) = report.deadlock.as_ref().and_then(|w| w.trace.as_ref()) {
        println!("deadlock trace ({} steps):", trace.len());
        for line in trace.render(net).lines() {
            println!("  {line}");
        }
    }
    println!(
        "verification took {:?} ({} iterations)",
        report.stats.wall, report.stats.iterations
    );
    print!("{}", props.render(net));
    Ok(())
}

fn prop_cmd(args: &Args) -> Result<(), String> {
    let (path, spec) = load_spec(args)?;
    let net = &spec.network;
    if spec.properties.is_empty() {
        return Err(format!("`{path}` declares no properties block"));
    }
    let vopts = verify_options(args)?;
    let (report, props) =
        verify_with_props(net, &spec.properties, &vopts).map_err(|e| e.to_string())?;
    print!("{}", props.render(net));
    println!(
        "checked {} properties in {:?} ({} reachable-set iterations, {} rings, {} preimage nodes)",
        props.checked,
        report.stats.wall + props.wall,
        report.stats.iterations,
        props.rings_stored,
        props.preimage_nodes
    );
    Ok(())
}

fn estimate_cmd(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    let opts = options(args)?;
    let result = synthesize_network(&net, &opts, &RtosConfig::default());
    println!(
        "{:<14} {:>8} {:>8} {:>7} | {:>9} {:>9} {:>7}",
        "module", "est[B]", "meas[B]", "err%", "est[cyc]", "meas[cyc]", "err%"
    );
    for (m, r) in net.cfsms().iter().zip(&result.machines) {
        let err = |a: u64, b: u64| (a as f64 - b as f64) / (b as f64).max(1.0) * 100.0;
        println!(
            "{:<14} {:>8} {:>8} {:>+6.1}% | {:>9} {:>9} {:>+6.1}%",
            m.name(),
            r.estimate.size_bytes,
            r.measured.size_bytes,
            err(r.estimate.size_bytes, r.measured.size_bytes),
            r.estimate.max_cycles,
            r.measured.max_cycles,
            err(r.estimate.max_cycles, r.measured.max_cycles),
        );
    }
    Ok(())
}

fn parse_stimuli(path: &str) -> Result<Vec<Stimulus>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| format!("{path}:{}: {what}", lineno + 1);
        let time: u64 = parts
            .next()
            .ok_or_else(|| err("missing time"))?
            .parse()
            .map_err(|_| err("bad time"))?;
        let signal = parts.next().ok_or_else(|| err("missing signal"))?;
        match parts.next() {
            Some(v) => out.push(Stimulus::valued(
                time,
                signal,
                v.parse().map_err(|_| err("bad value"))?,
            )),
            None => out.push(Stimulus::pure(time, signal)),
        }
    }
    Ok(out)
}

fn sim(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    let stim_path = args.flag("stim").ok_or("sim requires --stim <file>")?;
    let stim = parse_stimuli(stim_path)?;
    let mut config = RtosConfig::default();
    if let Some(target) = args.flag("target") {
        config.profile = parse_target(target)?;
    }
    if let Some(policy) = args.flag("policy") {
        config.policy = match policy {
            "rr" => SchedulingPolicy::RoundRobin,
            "prio" => SchedulingPolicy::StaticPriority {
                priorities: (0..net.cfsms().len() as u32).collect(),
            },
            other => return Err(format!("unknown policy `{other}`")),
        };
    }
    let mut sim = Simulator::build(&net, config);
    sim.run(&stim);
    for t in sim.trace() {
        match t.value {
            Some(v) => println!("{:>10}  {:<16} = {:<6} (by {})", t.time, t.signal, v, t.by),
            None => println!("{:>10}  {:<16}          (by {})", t.time, t.signal, t.by),
        }
    }
    let s = sim.stats();
    println!(
        "-- {} wall cycles, {} busy ({} in RTOS); reactions {:?}, overwritten {:?}",
        s.total_cycles, s.busy_cycles, s.rtos_cycles, s.reactions, s.overwritten
    );
    Ok(())
}

fn fmt(args: &Args) -> Result<(), String> {
    let (_, spec) = load_spec(args)?;
    print!("{}", emit_spec_source(&spec.network, &spec.properties));
    Ok(())
}

fn dot(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    let opts = options(args)?;
    for m in net.cfsms() {
        if let Some(only) = args.flag("module") {
            if m.name() != only {
                continue;
            }
        }
        let r = polis::core::synthesize(m, &opts);
        println!("{}", r.graph.to_dot());
    }
    Ok(())
}
