/root/repo/target/debug/deps/schedulability-44b55165c8cb6ee8.d: crates/bench/src/bin/schedulability.rs Cargo.toml

/root/repo/target/debug/deps/libschedulability-44b55165c8cb6ee8.rmeta: crates/bench/src/bin/schedulability.rs Cargo.toml

crates/bench/src/bin/schedulability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
