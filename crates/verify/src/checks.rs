//! The three verdicts evaluated against the reachable set, plus the
//! reachability-invariant export that feeds `estimate::falsepath`.

use crate::model::NetworkModel;
use crate::trace::{decode_point, walk_trace, DecodedState, TraceRings};
use crate::{DeadTransition, DeadlockWitness, LostEvent};
use polis_bdd::{NodeRef, Var};
use polis_cfsm::Network;
use polis_estimate::{Incompat, PathAtom};

/// Lost-event analysis: a buffer (consumer, input) can lose an event iff
/// some reachable state has the buffer full while its emitter can fire an
/// emitting reaction (Section II-D's "events may be lost"). For primary
/// inputs the environment can always redeliver, so a full buffer alone
/// suffices. (Driver ≠ consumer always: `Cfsm::build` rejects machines
/// consuming their own output.)
pub(crate) fn lost_events(
    model: &mut NetworkModel,
    net: &Network,
    reached: NodeRef,
) -> Vec<LostEvent> {
    let cfsms = net.cfsms();
    let mut out = Vec::new();
    for buf in net.buffers() {
        let flag = model.vars[buf.consumer].flag_cur[buf.input];
        let full = model.bdd.var(flag);
        let full_reachable = model.bdd.and(reached, full);
        let possible = match buf.driver {
            None => !full_reachable.is_false(),
            Some(d) => {
                let oi = cfsms[d]
                    .output_index(&buf.signal)
                    .expect("driver has output");
                let emit = model.emit_possible(d, &cfsms[d], oi);
                let clash = model.bdd.and(full_reachable, emit);
                !clash.is_false()
            }
        };
        out.push(LostEvent {
            consumer: cfsms[buf.consumer].name().to_owned(),
            signal: buf.signal,
            driver: buf.driver.map(|d| cfsms[d].name().to_owned()),
            possible,
        });
    }
    out
}

/// Dead-transition analysis: transition `t` of machine `i` is dead iff
/// its priority-resolved enabling condition intersects no reachable
/// state (for any data-test valuation — tests are free variables, so a
/// transition is only reported when no data could ever enable it).
pub(crate) fn dead_transitions(
    model: &mut NetworkModel,
    net: &Network,
    reached: NodeRef,
) -> Vec<DeadTransition> {
    let mut out = Vec::new();
    for (i, m) in net.cfsms().iter().enumerate() {
        for (ti, t) in m.transitions().iter().enumerate() {
            let cond = model.conds[i][ti];
            let live = model.bdd.and(reached, cond);
            if live.is_false() {
                out.push(DeadTransition {
                    machine: m.name().to_owned(),
                    transition: ti,
                    from: m.states()[t.from].clone(),
                    to: m.states()[t.to].clone(),
                });
            }
        }
    }
    out
}

/// Deadlock analysis: a reachable state where at least one buffer is
/// full yet no machine has an enabled transition for *any* data-test
/// valuation, even after the environment delivers any further primary
/// inputs — pending work nobody can ever consume. Without the delivery
/// closure a machine guarded on `p ∧ q` with only `p` pending would be
/// flagged although the environment can still supply `q`.
pub(crate) fn deadlock(
    model: &mut NetworkModel,
    net: &Network,
    reached: NodeRef,
    rings: Option<&TraceRings>,
) -> Option<DeadlockWitness> {
    let all_flags: Vec<Var> = model
        .vars
        .iter()
        .flat_map(|mv| mv.flag_cur.clone())
        .collect();
    let pending_lits: Vec<NodeRef> = all_flags.iter().map(|&f| model.bdd.var(f)).collect();
    let pending = model.bdd.or_all(pending_lits);
    let mut fireable = NodeRef::FALSE;
    for i in 0..model.vars.len() {
        let conds = model.conds[i].clone();
        let any = model.bdd.or_all(conds);
        let tests_cube = model.bdd.cube(model.vars[i].tests.iter().copied());
        let can_fire = model.bdd.exists_cube(any, tests_cube);
        fireable = model.bdd.or(fireable, can_fire);
    }
    // Close "some machine can fire" under environment deliveries: a
    // delivery sets every consumer flag of one signal to 1. Deliveries
    // commute and are idempotent, so one pass over the steps reaches the
    // fixpoint over arbitrary delivery sequences. Cofactoring on the
    // step's whole flag cube at once (constrain over a positive cube *is*
    // the ordinary cofactor) replaces the old per-flag restrict loop.
    let mut can_ever_fire = fireable;
    for step in &model.env_steps {
        let delivered = model.bdd.constrain(can_ever_fire, step.cube);
        can_ever_fire = model.bdd.or(can_ever_fire, delivered);
    }
    let stuck = model.bdd.not(can_ever_fire);
    let mut dead = model.bdd.and(reached, pending);
    dead = model.bdd.and(dead, stuck);
    if dead.is_false() {
        return None;
    }
    // Shared witness path with the property checker: walk a full decoded
    // trace through the onion rings when they were stored, otherwise
    // fall back to the single decoded cube state.
    let trace = rings.and_then(|r| walk_trace(model, net, r, dead));
    let witness = match &trace {
        Some(t) => t.states.last().cloned()?,
        None => decode_point(model, dead)?,
    };
    Some(DeadlockWitness {
        description: describe_state(net, &witness),
        trace,
    })
}

/// One `machine@state pending[signals...]` line per machine.
fn describe_state(net: &Network, s: &DecodedState) -> Vec<String> {
    net.cfsms()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let pending: Vec<&str> = m
                .inputs()
                .iter()
                .enumerate()
                .filter(|&(k, _)| s.pending[i][k])
                .map(|(_, sig)| sig.name())
                .collect();
            let mut line = format!("{}@{}", m.name(), m.states()[s.ctrl[i]]);
            if !pending.is_empty() {
                line.push_str(&format!(" pending[{}]", pending.join(",")));
            }
            line
        })
        .collect()
}

/// Projects the reachable set onto machine `i`'s own state variables and
/// extracts pairwise presence incompatibilities: input-flag polarities
/// that no reachable state exhibits together. These are exactly the
/// event-level [`Incompat`] pairs `estimate::falsepath` consumes.
pub(crate) fn presence_incompats(
    model: &mut NetworkModel,
    reached: NodeRef,
    machine: usize,
) -> Vec<Incompat> {
    let own: Vec<Var> = model.vars[machine].state_vars();
    let others: Vec<Var> = model
        .state_vars
        .iter()
        .copied()
        .filter(|v| !own.contains(v))
        .collect();
    let others_cube = model.bdd.cube(others);
    let projected = model.bdd.exists_cube(reached, others_cube);
    let flags = model.vars[machine].flag_cur.clone();
    let mut out = Vec::new();
    for k1 in 0..flags.len() {
        for k2 in k1 + 1..flags.len() {
            for p1 in [false, true] {
                for p2 in [false, true] {
                    let l1 = lit(model, flags[k1], p1);
                    let l2 = lit(model, flags[k2], p2);
                    let both = model.bdd.and(l1, l2);
                    let witness = model.bdd.and(projected, both);
                    if witness.is_false() {
                        out.push(Incompat {
                            a: (PathAtom::Present(k1), p1),
                            b: (PathAtom::Present(k2), p2),
                        });
                    }
                }
            }
        }
    }
    out
}

fn lit(model: &mut NetworkModel, v: Var, polarity: bool) -> NodeRef {
    if polarity {
        model.bdd.var(v)
    } else {
        model.bdd.nvar(v)
    }
}
