/root/repo/target/debug/deps/polis_rtos-768c5cacde0d2a8b.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/debug/deps/libpolis_rtos-768c5cacde0d2a8b.rmeta: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
