/root/repo/target/debug/deps/polis_rtos-8b45094e6cc57666.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/debug/deps/libpolis_rtos-8b45094e6cc57666.rmeta: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
