/root/repo/target/debug/deps/cli-17228095b1456ca0.d: tests/cli.rs

/root/repo/target/debug/deps/cli-17228095b1456ca0: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_polis=/root/repo/target/debug/polis
