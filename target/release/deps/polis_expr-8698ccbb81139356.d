/root/repo/target/release/deps/polis_expr-8698ccbb81139356.d: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

/root/repo/target/release/deps/libpolis_expr-8698ccbb81139356.rlib: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

/root/repo/target/release/deps/libpolis_expr-8698ccbb81139356.rmeta: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

crates/expr/src/lib.rs:
crates/expr/src/eval.rs:
crates/expr/src/print.rs:
crates/expr/src/types.rs:
