/root/repo/target/debug/deps/roundtrip-8c4e06914a3f4fb7.d: crates/core/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-8c4e06914a3f4fb7.rmeta: crates/core/tests/roundtrip.rs Cargo.toml

crates/core/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
