//! Benchmarks for the synthesis pipeline: s-graph construction,
//! instruction selection, assembly, and the end-to-end flow per dashboard
//! module. Uses the self-contained harness in `polis_bench::bench`.

use polis_bench::bench;
use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::{synthesize_with_params, workloads, SynthesisOptions};
use polis_estimate::calibrate;
use polis_sgraph::build;
use polis_vm::{assemble, compile, BufferPolicy, Profile};

fn main() {
    let net = workloads::dashboard();
    let odometer = net.cfsms()[net.machine_index("odometer").unwrap()].clone();
    bench("sgraph/build_odometer", || {
        let mut rf = ReactiveFn::build(&odometer);
        rf.sift(OrderScheme::OutputsAfterSupport);
        build(&rf).expect("builds")
    });

    let shock = workloads::shock_absorber();
    let mode = shock.cfsms()[shock.machine_index("mode").unwrap()].clone();
    let mut rf = ReactiveFn::build(&mode);
    rf.sift(OrderScheme::OutputsAfterSupport);
    let g = build(&rf).expect("builds");
    bench("vm/compile_mode", || compile(&mode, &g, BufferPolicy::All));
    let prog = compile(&mode, &g, BufferPolicy::All);
    bench("vm/assemble_mode_mcu8", || assemble(&prog, Profile::Mcu8));

    let params = calibrate(Profile::Mcu8);
    let opts = SynthesisOptions::default();
    bench("pipeline/dashboard_all_modules", || {
        net.cfsms()
            .iter()
            .map(|m| {
                synthesize_with_params(m, &opts, &params)
                    .measured
                    .size_bytes
            })
            .sum::<u64>()
    });
}
