//! Micro-benchmarks for the BDD substrate: apply operations,
//! characteristic-function construction, and constrained sifting.
//! Uses the self-contained harness in `polis_bench::bench` so the
//! workspace builds offline.

use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, NodeRef, Var};
use polis_bench::bench;
use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::random::{random_cfsm, RandomSpec};
use polis_core::workloads;

/// Builds the n-queens-ish interleaved pair function used in the sifting
/// literature: OR of AND pairs under a deliberately bad order.
fn bad_pairs(bdd: &mut Bdd, pairs: usize) -> NodeRef {
    let mut vars: Vec<Var> = Vec::new();
    for i in 0..pairs {
        vars.push(bdd.new_var(format!("a{i}")));
    }
    for i in 0..pairs {
        vars.push(bdd.new_var(format!("b{i}")));
    }
    let mut f = NodeRef::FALSE;
    for i in 0..pairs {
        let a = bdd.var(vars[i]);
        let b = bdd.var(vars[pairs + i]);
        let t = bdd.and(a, b);
        f = bdd.or(f, t);
    }
    f
}

fn main() {
    bench("bdd/build_pairs_8", || {
        let mut bdd = Bdd::new();
        bad_pairs(&mut bdd, 8)
    });

    bench("bdd/sift_pairs_8", || {
        let mut bdd = Bdd::new();
        let f = bad_pairs(&mut bdd, 8);
        bdd.sift(&[f], &SiftConfig::to_convergence())
    });

    let net = workloads::dashboard();
    let fuel = net.cfsms()[net.machine_index("fuel").unwrap()].clone();
    bench("chi/build_fuel", || ReactiveFn::build(&fuel));

    let spec = RandomSpec {
        states: 4,
        transitions: 12,
        ..RandomSpec::default()
    };
    let m = random_cfsm("bench", &spec, 11);
    bench("chi/build_random_12t", || ReactiveFn::build(&m));
    bench("chi/sift_random_12t", || {
        let mut rf = ReactiveFn::build(&m);
        rf.sift(OrderScheme::OutputsAfterSupport)
    });
}
