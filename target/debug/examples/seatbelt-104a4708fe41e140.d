/root/repo/target/debug/examples/seatbelt-104a4708fe41e140.d: examples/seatbelt.rs Cargo.toml

/root/repo/target/debug/examples/libseatbelt-104a4708fe41e140.rmeta: examples/seatbelt.rs Cargo.toml

examples/seatbelt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
