/root/repo/target/debug/deps/polis-d6194d1aa3ec26db.d: src/bin/polis.rs

/root/repo/target/debug/deps/libpolis-d6194d1aa3ec26db.rmeta: src/bin/polis.rs

src/bin/polis.rs:
