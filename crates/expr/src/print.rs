//! C pretty-printing of expressions.
//!
//! Generated code targets either a full C compiler (infix operators) or the
//! restricted software-library style used on very small micro-controllers
//! where multi-byte arithmetic is provided by runtime routines (`ADD(x, y)`,
//! `EQ(x, y)`, ... — Section III-C1 lists ~30 such functions).

use crate::{BinOp, Expr, UnOp, Value};
use std::fmt::Write as _;

/// The rendering style for C expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CStyle {
    /// Ordinary infix C operators: `(a + b)`.
    #[default]
    Infix,
    /// Software-library calls: `ADD(a, b)`; used for 8-bit targets whose
    /// arithmetic is implemented by runtime routines.
    LibCalls,
}

impl Expr {
    /// Renders the expression as a C expression in the default infix style.
    ///
    /// # Examples
    ///
    /// ```
    /// use polis_expr::Expr;
    /// let e = Expr::var("a").add(Expr::int(1)).eq(Expr::var("b"));
    /// assert_eq!(e.to_c(), "((a + 1) == b)");
    /// ```
    pub fn to_c(&self) -> String {
        self.to_c_styled(CStyle::Infix)
    }

    /// Renders the expression in the requested [`CStyle`].
    pub fn to_c_styled(&self, style: CStyle) -> String {
        let mut out = String::new();
        write_c(&mut out, self, style);
        out
    }
}

fn write_c(out: &mut String, expr: &Expr, style: CStyle) {
    match expr {
        Expr::Const(Value::Bool(b)) => {
            let _ = write!(out, "{}", u8::from(*b));
        }
        Expr::Const(Value::Int(v)) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(name) => out.push_str(name),
        Expr::Unary(UnOp::Not, a) => {
            out.push_str("(!");
            write_c(out, a, style);
            out.push(')');
        }
        Expr::Unary(UnOp::Neg, a) => {
            out.push_str("(-");
            write_c(out, a, style);
            out.push(')');
        }
        Expr::Binary(op, a, b) => write_binop(out, *op, a, b, style),
        Expr::Ite(c, t, e) => {
            out.push('(');
            write_c(out, c, style);
            out.push_str(" ? ");
            write_c(out, t, style);
            out.push_str(" : ");
            write_c(out, e, style);
            out.push(')');
        }
    }
}

fn write_binop(out: &mut String, op: BinOp, a: &Expr, b: &Expr, style: CStyle) {
    let as_call = match style {
        CStyle::LibCalls => true,
        // MIN/MAX have no C operator, so they are always macro calls.
        CStyle::Infix => matches!(op, BinOp::Min | BinOp::Max),
    };
    if as_call {
        out.push_str(op.lib_name());
        out.push('(');
        write_c(out, a, style);
        out.push_str(", ");
        write_c(out, b, style);
        out.push(')');
    } else {
        out.push('(');
        write_c(out, a, style);
        out.push(' ');
        out.push_str(op.c_symbol());
        out.push(' ');
        write_c(out, b, style);
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infix_rendering() {
        let e = Expr::var("x").add(Expr::int(1)).lt(Expr::var("y"));
        assert_eq!(e.to_c(), "((x + 1) < y)");
    }

    #[test]
    fn libcall_rendering() {
        let e = Expr::var("x").add(Expr::int(1)).lt(Expr::var("y"));
        assert_eq!(e.to_c_styled(CStyle::LibCalls), "LT(ADD(x, 1), y)");
    }

    #[test]
    fn min_max_are_calls_even_in_infix_style() {
        let e = Expr::var("x").min(Expr::var("y"));
        assert_eq!(e.to_c(), "MIN(x, y)");
        let e = Expr::var("x").max(Expr::int(0));
        assert_eq!(e.to_c(), "MAX(x, 0)");
    }

    #[test]
    fn unary_and_ite_rendering() {
        let e = Expr::ite(Expr::var("p").not(), Expr::int(1), Expr::var("x").neg());
        assert_eq!(e.to_c(), "((!p) ? 1 : (-x))");
    }

    #[test]
    fn bool_constants_render_as_ints() {
        assert_eq!(Expr::bool(true).to_c(), "1");
        assert_eq!(Expr::bool(false).to_c(), "0");
    }

    #[test]
    fn display_matches_to_c() {
        let e = Expr::var("a").eq(Expr::int(3));
        assert_eq!(format!("{e}"), e.to_c());
    }
}
