/root/repo/target/debug/deps/polis_estimate-40cdb423ea5134a1.d: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_estimate-40cdb423ea5134a1.rmeta: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs Cargo.toml

crates/estimate/src/lib.rs:
crates/estimate/src/calibrate.rs:
crates/estimate/src/cost.rs:
crates/estimate/src/falsepath.rs:
crates/estimate/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
