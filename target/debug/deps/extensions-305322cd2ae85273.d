/root/repo/target/debug/deps/extensions-305322cd2ae85273.d: crates/rtos/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-305322cd2ae85273.rmeta: crates/rtos/tests/extensions.rs Cargo.toml

crates/rtos/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
