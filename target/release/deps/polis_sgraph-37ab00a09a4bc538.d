/root/repo/target/release/deps/polis_sgraph-37ab00a09a4bc538.d: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

/root/repo/target/release/deps/libpolis_sgraph-37ab00a09a4bc538.rlib: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

/root/repo/target/release/deps/libpolis_sgraph-37ab00a09a4bc538.rmeta: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

crates/sgraph/src/lib.rs:
crates/sgraph/src/analysis.rs:
crates/sgraph/src/builder.rs:
crates/sgraph/src/chain.rs:
crates/sgraph/src/collapse.rs:
crates/sgraph/src/cond.rs:
crates/sgraph/src/eval.rs:
crates/sgraph/src/graph.rs:
