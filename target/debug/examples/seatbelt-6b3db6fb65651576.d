/root/repo/target/debug/examples/seatbelt-6b3db6fb65651576.d: examples/seatbelt.rs

/root/repo/target/debug/examples/seatbelt-6b3db6fb65651576: examples/seatbelt.rs

examples/seatbelt.rs:
