/root/repo/target/debug/deps/compose_prop-d511cf9f0e214a24.d: crates/cfsm/tests/compose_prop.rs

/root/repo/target/debug/deps/libcompose_prop-d511cf9f0e214a24.rmeta: crates/cfsm/tests/compose_prop.rs

crates/cfsm/tests/compose_prop.rs:
