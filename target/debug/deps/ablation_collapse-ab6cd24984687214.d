/root/repo/target/debug/deps/ablation_collapse-ab6cd24984687214.d: crates/bench/src/bin/ablation_collapse.rs

/root/repo/target/debug/deps/ablation_collapse-ab6cd24984687214: crates/bench/src/bin/ablation_collapse.rs

crates/bench/src/bin/ablation_collapse.rs:
