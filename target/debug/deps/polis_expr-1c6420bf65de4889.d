/root/repo/target/debug/deps/polis_expr-1c6420bf65de4889.d: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_expr-1c6420bf65de4889.rmeta: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs Cargo.toml

crates/expr/src/lib.rs:
crates/expr/src/eval.rs:
crates/expr/src/print.rs:
crates/expr/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
