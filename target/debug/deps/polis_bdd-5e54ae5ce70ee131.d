/root/repo/target/debug/deps/polis_bdd-5e54ae5ce70ee131.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libpolis_bdd-5e54ae5ce70ee131.rmeta: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
