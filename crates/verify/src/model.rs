//! The symbolic model of a CFSM network: a global variable layout over
//! one BDD manager, plus the disjunctively partitioned transition
//! relation.
//!
//! # State encoding
//!
//! The product state of a network is the pair (control state of every
//! machine, fill bit of every one-place event buffer). For each machine
//! the model declares, in network order:
//!
//! 1. per input buffer: a current flag bit and its next-state partner,
//!    kept adjacent in the order;
//! 2. the binary-encoded control state, current then next (only for
//!    machines with more than one control state);
//! 3. one auxiliary variable per data test (existentially quantified out
//!    of every image — data is abstracted as free nondeterminism);
//! 4. one auxiliary variable per action (quantified out after the buffer
//!    updates are applied).
//!
//! # Transition partitioning
//!
//! There is no monolithic transition relation. The GALS semantics of
//! Section II-D interleaves individual machine reactions and environment
//! deliveries, so the model keeps one small relation per event source:
//!
//! * [`EnvStep`] — the environment delivers primary input `s`: every
//!   consumer's flag for `s` becomes 1, nothing else changes. Because
//!   only current-state variables are involved, the image is a
//!   quantify-and-set with no renaming.
//! * [`ReactStep`] — machine `i` fires one reaction: the machine's
//!   imported `χ|consume=1` constrains (flags, ctrl, tests) → (actions,
//!   next ctrl); the update constraint propagates emissions into consumer
//!   buffers (`flag' ↔ flag ∨ emitted`); the machine's own buffers are
//!   cleared (snapshot consumption). The two constraint sets are
//!   disjoint because no machine consumes its own output — `Cfsm::build`
//!   rejects that, and the encoding asserts it. Reactions that fire
//!   nothing are identity steps and are simply omitted.
//!
//! A machine may attempt a reaction from any reachable state and the test
//! variables are unconstrained, so the reachable set over-approximates
//! every schedule the generated RTOS (or `rtos::sim`) can produce — the
//! direction that makes the lost-event/deadlock verdicts sound alarms.

use polis_bdd::encode::MvVar;
use polis_bdd::{Bdd, NodeRef, Var};
use polis_cfsm::{Action, Cfsm, Guard, Network, ReactiveFn, RfVarKind};
use std::collections::HashMap;

/// The BDD variables owned by one machine of the network.
pub(crate) struct MachineVars {
    /// Current control state (`None` for single-state machines).
    pub ctrl_cur: Option<MvVar>,
    /// Next control state.
    pub ctrl_next: Option<MvVar>,
    /// Current buffer flag per input, in input order.
    pub flag_cur: Vec<Var>,
    /// Next buffer flag per input.
    pub flag_next: Vec<Var>,
    /// Auxiliary variable per data test.
    pub tests: Vec<Var>,
    /// Auxiliary variable per action.
    pub acts: Vec<Var>,
}

impl MachineVars {
    /// Current control bits (empty for single-state machines).
    pub fn ctrl_cur_bits(&self) -> &[Var] {
        self.ctrl_cur.as_ref().map_or(&[], |mv| mv.bits())
    }

    /// All current-state variables of this machine: buffer flags then
    /// control bits.
    pub fn state_vars(&self) -> Vec<Var> {
        let mut out = self.flag_cur.clone();
        out.extend_from_slice(self.ctrl_cur_bits());
        out
    }
}

/// Environment delivery of one primary input signal.
pub(crate) struct EnvStep {
    /// Positive cube over every consumer's current flag for the signal,
    /// precomputed at model build. One BDD serves both roles of the
    /// image: the quantification set handed to `exists_cube` and the
    /// set-literal conjunction applied with a single `and` afterwards.
    pub cube: NodeRef,
}

/// One machine's reaction as a partitioned transition relation with a
/// pre-computed early-quantification schedule.
pub(crate) struct ReactStep {
    /// Imported `χ|consume=1` over global variables.
    pub chi_fire: NodeRef,
    /// Consumer buffer updates fused with snapshot consumption:
    /// `(flag' ↔ flag ∨ ⋁ emitting actions) ∧ ⋀ ¬own_flag'`. The clear
    /// half has no action variables in its support, so conjoining it
    /// before the action quantification is sound and saves one
    /// relational product per image.
    pub update_clear: NodeRef,
    /// Test variables (quantified immediately after `χ` is conjoined).
    pub q_tests: Vec<Var>,
    /// Action variables (quantified after `update_clear` is conjoined).
    pub q_acts: Vec<Var>,
    /// Next → current renaming applied last.
    pub rename: Vec<(Var, Var)>,
    /// Positive cube over `q_tests` (for the `χ` relational product).
    pub tests_cube: NodeRef,
    /// Positive cube over `q_acts` plus the current-state variables the
    /// step consumes — the machine's own flags and control bits and every
    /// affected consumer flag (for the `update_clear` relational
    /// product).
    pub acts_cur_cube: NodeRef,
}

/// The full symbolic model: manager, layout, partitioned relation, and
/// the per-transition enabling conditions used by the checks.
pub(crate) struct NetworkModel {
    /// The single global manager.
    pub bdd: Bdd,
    /// Per-machine variable blocks, in network order.
    pub vars: Vec<MachineVars>,
    /// One step per primary input signal.
    pub env_steps: Vec<EnvStep>,
    /// One step per machine.
    pub react_steps: Vec<ReactStep>,
    /// The initial product state: every machine in its initial control
    /// state, every buffer empty.
    pub init: NodeRef,
    /// All current-state variables, in layout order.
    pub state_vars: Vec<Var>,
    /// Per machine, per transition: the priority-resolved enabling
    /// condition over (own flags, own ctrl, own tests) — the symbolic
    /// mirror of the `χ` construction in `cfsm::chi`.
    pub conds: Vec<Vec<NodeRef>>,
}

impl NetworkModel {
    /// Builds the model for `net`. Deterministic: node indices depend
    /// only on the network, never on hash iteration order.
    pub fn build(net: &Network) -> NetworkModel {
        let mut bdd = Bdd::new();
        let cfsms = net.cfsms();

        // -- variable layout --
        let mut vars: Vec<MachineVars> = Vec::with_capacity(cfsms.len());
        for m in cfsms {
            let mut flag_cur = Vec::with_capacity(m.inputs().len());
            let mut flag_next = Vec::with_capacity(m.inputs().len());
            for s in m.inputs() {
                flag_cur.push(bdd.new_var(format!("{}.{}", m.name(), s.name())));
                flag_next.push(bdd.new_var(format!("{}.{}'", m.name(), s.name())));
            }
            let nstates = m.states().len() as u64;
            let (ctrl_cur, ctrl_next) = if nstates > 1 {
                (
                    Some(MvVar::new(&mut bdd, format!("{}.ctrl", m.name()), nstates)),
                    Some(MvVar::new(&mut bdd, format!("{}.ctrl'", m.name()), nstates)),
                )
            } else {
                (None, None)
            };
            let tests = m
                .tests()
                .iter()
                .map(|t| bdd.new_var(format!("{}.test_{}", m.name(), t.name)))
                .collect();
            let acts = (0..m.actions().len())
                .map(|a| bdd.new_var(format!("{}.act_{}", m.name(), m.action_label(a))))
                .collect();
            vars.push(MachineVars {
                ctrl_cur,
                ctrl_next,
                flag_cur,
                flag_next,
                tests,
                acts,
            });
        }
        let state_vars: Vec<Var> = vars.iter().flat_map(MachineVars::state_vars).collect();

        // -- initial state --
        let mut init = NodeRef::TRUE;
        for (m, mv) in cfsms.iter().zip(&vars) {
            if let Some(ctrl) = &mv.ctrl_cur {
                let eq = ctrl.eq_const(&mut bdd, m.init_state() as u64);
                init = bdd.and(init, eq);
            }
            for &f in &mv.flag_cur {
                let empty = bdd.nvar(f);
                init = bdd.and(init, empty);
            }
        }

        // -- environment deliveries --
        let env_steps = net
            .primary_inputs()
            .into_iter()
            .map(|sig| {
                let flags = net
                    .consumers_of(&sig)
                    .into_iter()
                    .map(|c| {
                        let k = cfsms[c].input_index(&sig).expect("consumer has input");
                        vars[c].flag_cur[k]
                    })
                    .collect::<Vec<Var>>();
                let cube = bdd.cube(flags);
                EnvStep { cube }
            })
            .collect();

        // -- machine reactions --
        let mut react_steps = Vec::with_capacity(cfsms.len());
        for (i, m) in cfsms.iter().enumerate() {
            let mut rf = ReactiveFn::build(m);
            let map = chi_var_map(&rf, &vars[i]);
            let consume = rf
                .outputs()
                .iter()
                .find(|v| v.kind == RfVarKind::Consume)
                .expect("χ has a consume variable")
                .bits[0];
            let chi = rf.chi();
            let chi_fire_src = rf.bdd_mut().restrict(chi, consume, true);
            let chi_fire = import(&mut bdd, &rf, chi_fire_src, &map);

            let mut update = NodeRef::TRUE;
            let mut affected: Vec<(usize, usize)> = Vec::new();
            for (oi, out) in m.outputs().iter().enumerate() {
                let consumers = net.consumers_of(out.name());
                if consumers.is_empty() {
                    continue;
                }
                let emit = emits_signal(&mut bdd, m, &vars[i], oi);
                for c in consumers {
                    // A machine never consumes its own output:
                    // `Cfsm::build` rejects an input named like an output
                    // (see `machine_cannot_consume_its_own_output` in
                    // `cfsm::network`). The encoding below depends on it —
                    // `update` on an own buffer would contradict
                    // `own_clear` (¬flag') and duplicate a rename source.
                    debug_assert!(c != i, "self-consuming machine in network");
                    let k = cfsms[c]
                        .input_index(out.name())
                        .expect("consumer has input");
                    affected.push((c, k));
                    let cur = bdd.var(vars[c].flag_cur[k]);
                    let nxt = bdd.var(vars[c].flag_next[k]);
                    let filled = bdd.or(cur, emit);
                    let constraint = bdd.iff(nxt, filled);
                    update = bdd.and(update, constraint);
                }
            }
            let own_lits: Vec<NodeRef> = vars[i].flag_next.iter().map(|&f| bdd.nvar(f)).collect();
            let own_clear = bdd.and_all(own_lits);

            let mut q_cur = vars[i].state_vars();
            let mut rename: Vec<(Var, Var)> = vars[i]
                .flag_next
                .iter()
                .zip(&vars[i].flag_cur)
                .map(|(&n, &c)| (n, c))
                .collect();
            if let (Some(next), Some(cur)) = (&vars[i].ctrl_next, &vars[i].ctrl_cur) {
                rename.extend(next.bits().iter().zip(cur.bits()).map(|(&n, &c)| (n, c)));
            }
            for &(c, k) in &affected {
                q_cur.push(vars[c].flag_cur[k]);
                rename.push((vars[c].flag_next[k], vars[c].flag_cur[k]));
            }
            let update_clear = bdd.and(update, own_clear);
            let tests_cube = bdd.cube(vars[i].tests.iter().copied());
            let acts_cur_cube = bdd.cube(vars[i].acts.iter().copied().chain(q_cur.iter().copied()));
            react_steps.push(ReactStep {
                chi_fire,
                update_clear,
                q_tests: vars[i].tests.clone(),
                q_acts: vars[i].acts.clone(),
                rename,
                tests_cube,
                acts_cur_cube,
            });
        }

        // -- per-transition enabling conditions (priority-resolved) --
        let mut conds = Vec::with_capacity(cfsms.len());
        for (i, m) in cfsms.iter().enumerate() {
            let mut machine_conds = Vec::with_capacity(m.num_transitions());
            let mut taken: Vec<NodeRef> = vec![NodeRef::FALSE; m.states().len()];
            for t in m.transitions() {
                let in_state = match &vars[i].ctrl_cur {
                    Some(mv) => mv.eq_const(&mut bdd, t.from as u64),
                    None => NodeRef::TRUE,
                };
                let guard = guard_to_bdd(&mut bdd, &t.guard, &vars[i]);
                let raw = bdd.and(in_state, guard);
                let not_taken = bdd.not(taken[t.from]);
                let cond = bdd.and(raw, not_taken);
                taken[t.from] = bdd.or(taken[t.from], raw);
                machine_conds.push(cond);
            }
            conds.push(machine_conds);
        }

        let mut model = NetworkModel {
            bdd,
            vars,
            env_steps,
            react_steps,
            init,
            state_vars,
            conds,
        };
        let roots = model.persistent_roots();
        model.bdd.gc(&roots);
        model
    }

    /// Every node the model must keep alive across reclamation: the
    /// partitioned relation, the initial state, the precomputed
    /// quantification cubes, and the enabling conditions. The cubes are
    /// ordinary nodes — omitting them here would let a mid-traversal `gc`
    /// free them out from under the next image.
    pub fn persistent_roots(&self) -> Vec<NodeRef> {
        let mut roots = vec![self.init];
        for step in &self.env_steps {
            roots.push(step.cube);
        }
        for step in &self.react_steps {
            roots.push(step.chi_fire);
            roots.push(step.update_clear);
            roots.push(step.tests_cube);
            roots.push(step.acts_cur_cube);
        }
        for machine_conds in &self.conds {
            roots.extend_from_slice(machine_conds);
        }
        roots
    }

    /// The sifting constraints of the verify manager, for reordering
    /// during reachability: each buffer's (cur, next) flag rail pair and
    /// each machine's combined ctrl cur+next bit block must stay
    /// contiguous and in declaration order, so renaming schedules and
    /// `MvVar` decoding survive the reorder. Test/action auxiliaries sift
    /// freely as singletons.
    pub fn sift_config(&self) -> polis_bdd::reorder::SiftConfig {
        let mut groups: Vec<Vec<Var>> = Vec::new();
        for mv in &self.vars {
            for (&c, &n) in mv.flag_cur.iter().zip(&mv.flag_next) {
                groups.push(vec![c, n]);
            }
            if let (Some(cur), Some(next)) = (&mv.ctrl_cur, &mv.ctrl_next) {
                let mut block: Vec<Var> = cur.bits().to_vec();
                block.extend_from_slice(next.bits());
                groups.push(block);
            }
        }
        polis_bdd::reorder::SiftConfig {
            precedence: Vec::new(),
            groups,
            max_passes: 1,
        }
    }

    /// The disjunction of all emitting-action variables of machine `i`
    /// for its output signal index `oi`, restricted to firing reactions
    /// and projected onto the machine's current-state variables: the
    /// predicate "machine `i` can emit this signal now" (for some data).
    pub fn emit_possible(&mut self, i: usize, m: &Cfsm, oi: usize) -> NodeRef {
        let emit = emits_signal(&mut self.bdd, m, &self.vars[i], oi);
        let step = &self.react_steps[i];
        let mut f = self.bdd.and(step.chi_fire, emit);
        let mut aux: Vec<Var> = step.q_tests.clone();
        aux.extend_from_slice(&step.q_acts);
        if let Some(next) = &self.vars[i].ctrl_next {
            aux.extend_from_slice(next.bits());
        }
        let aux_cube = self.bdd.cube(aux);
        f = self.bdd.exists_cube(f, aux_cube);
        f
    }
}

/// `⋁` over the action variables of machine `i` that emit output `oi`.
fn emits_signal(bdd: &mut Bdd, m: &Cfsm, mv: &MachineVars, oi: usize) -> NodeRef {
    let lits: Vec<NodeRef> = m
        .actions()
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a, Action::Emit { signal, .. } if *signal == oi))
        .map(|(ai, _)| bdd.var(mv.acts[ai]))
        .collect();
    bdd.or_all(lits)
}

/// Maps every `χ` variable of `rf` onto the machine's global variables.
fn chi_var_map(rf: &ReactiveFn, mv: &MachineVars) -> HashMap<Var, Var> {
    let mut map = HashMap::new();
    for v in rf.inputs() {
        match v.kind {
            RfVarKind::Present { input } => {
                map.insert(v.bits[0], mv.flag_cur[input]);
            }
            RfVarKind::Ctrl => {
                let bits = mv.ctrl_cur.as_ref().expect("ctrl var exists").bits();
                for (&src, &dst) in v.bits.iter().zip(bits) {
                    map.insert(src, dst);
                }
            }
            RfVarKind::Test { test } => {
                map.insert(v.bits[0], mv.tests[test]);
            }
            _ => {}
        }
    }
    for v in rf.outputs() {
        match v.kind {
            RfVarKind::Action { action } => {
                map.insert(v.bits[0], mv.acts[action]);
            }
            RfVarKind::NextCtrl => {
                let bits = mv.ctrl_next.as_ref().expect("next ctrl var exists").bits();
                for (&src, &dst) in v.bits.iter().zip(bits) {
                    map.insert(src, dst);
                }
            }
            _ => {}
        }
    }
    map
}

/// Copies `f` from the reactive function's manager into `dst`, rewriting
/// each source variable through `map`. Memoized per source node, so the
/// copy is linear in the source BDD size.
fn import(dst: &mut Bdd, rf: &ReactiveFn, f: NodeRef, map: &HashMap<Var, Var>) -> NodeRef {
    fn rec(
        dst: &mut Bdd,
        rf: &ReactiveFn,
        f: NodeRef,
        map: &HashMap<Var, Var>,
        memo: &mut HashMap<NodeRef, NodeRef>,
    ) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let src = rf.bdd();
        let v = src.node_var(f).expect("non-terminal has a variable");
        let (flo, fhi) = (src.lo(f), src.hi(f));
        let lo = rec(dst, rf, flo, map, memo);
        let hi = rec(dst, rf, fhi, map, memo);
        let gv = *map.get(&v).expect("every χ variable is mapped");
        let guard = dst.var(gv);
        let r = dst.ite(guard, hi, lo);
        memo.insert(f, r);
        r
    }
    let mut memo = HashMap::new();
    rec(dst, rf, f, map, &mut memo)
}

/// Translates a guard over the machine's global flag/test variables.
fn guard_to_bdd(bdd: &mut Bdd, g: &Guard, mv: &MachineVars) -> NodeRef {
    match g {
        Guard::True => NodeRef::TRUE,
        Guard::False => NodeRef::FALSE,
        Guard::Present(i) => bdd.var(mv.flag_cur[*i]),
        Guard::Test(i) => bdd.var(mv.tests[*i]),
        Guard::Not(x) => {
            let fx = guard_to_bdd(bdd, x, mv);
            bdd.not(fx)
        }
        Guard::And(a, b) => {
            let fa = guard_to_bdd(bdd, a, mv);
            let fb = guard_to_bdd(bdd, b, mv);
            bdd.and(fa, fb)
        }
        Guard::Or(a, b) => {
            let fa = guard_to_bdd(bdd, a, mv);
            let fb = guard_to_bdd(bdd, b, mv);
            bdd.or(fa, fb)
        }
    }
}
