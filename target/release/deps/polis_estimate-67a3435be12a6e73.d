/root/repo/target/release/deps/polis_estimate-67a3435be12a6e73.d: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/release/deps/libpolis_estimate-67a3435be12a6e73.rlib: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

/root/repo/target/release/deps/libpolis_estimate-67a3435be12a6e73.rmeta: crates/estimate/src/lib.rs crates/estimate/src/calibrate.rs crates/estimate/src/cost.rs crates/estimate/src/falsepath.rs crates/estimate/src/params.rs

crates/estimate/src/lib.rs:
crates/estimate/src/calibrate.rs:
crates/estimate/src/cost.rs:
crates/estimate/src/falsepath.rs:
crates/estimate/src/params.rs:
