/root/repo/target/debug/deps/polis_bench-b8bbeee8a7b934f8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/polis_bench-b8bbeee8a7b934f8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
