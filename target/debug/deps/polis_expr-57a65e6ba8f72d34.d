/root/repo/target/debug/deps/polis_expr-57a65e6ba8f72d34.d: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

/root/repo/target/debug/deps/polis_expr-57a65e6ba8f72d34: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

crates/expr/src/lib.rs:
crates/expr/src/eval.rs:
crates/expr/src/print.rs:
crates/expr/src/types.rs:
