//! **False-path analysis demo (Section III-C)** — worst-case execution
//! bounds with and without event/test incompatibility relations.
//!
//! "False paths can be determined with a good degree of accuracy from the
//! structure of the CFSM network, e.g., by computing event incompatibility
//! relations." For each machine with interval tests (comparisons of one
//! variable against constants), we derive the incompatible test-outcome
//! pairs automatically and recompute the PERT bound excluding the paths
//! they kill.

use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::workloads;
use polis_estimate::{calibrate, derive_incompatibilities, estimate, max_cycles_false_path_aware};
use polis_expr::{Expr, Type, Value};
use polis_sgraph::{build, BufferPolicy};
use polis_vm::Profile;

/// A controller whose specification contains a dead guard combination
/// (both speed bands at once) guarding its most expensive action — the
/// kind of false path incompatibility analysis exists to kill.
fn overlapping_bands() -> polis_cfsm::Cfsm {
    let mut b = polis_cfsm::Cfsm::builder("bands");
    b.input_valued("x", Type::uint(8));
    b.output_pure("hi");
    b.output_pure("lo");
    b.state_var("acc", Type::uint(8), Value::Int(0));
    let s = b.ctrl_state("s");
    let t_hi = b.test("hi_band", Expr::var("x_value").ge(Expr::int(90)));
    let t_lo = b.test("lo_band", Expr::var("x_value").lt(Expr::int(40)));
    b.transition(s, s)
        .when_present("x")
        .when_test(t_hi)
        .when_test(t_lo) // dead: the bands cannot overlap
        .emit("hi")
        .emit("lo")
        .assign(
            "acc",
            Expr::var("acc").mul(Expr::var("acc")).div(Expr::int(3)),
        )
        .done();
    b.transition(s, s)
        .when_present("x")
        .when_test(t_hi)
        .emit("hi")
        .assign("acc", Expr::var("acc").add(Expr::int(2)))
        .done();
    b.transition(s, s)
        .when_present("x")
        .when_test(t_lo)
        .emit("lo")
        .assign("acc", Expr::var("acc").add(Expr::int(1)))
        .done();
    b.build().expect("bands is valid")
}

fn main() {
    let params = calibrate(Profile::Mcu8);
    println!("False-path-aware worst-case bounds (Mcu8)\n");
    println!(
        "| {:<12} | {:>7} | {:>10} | {:>10} | {:>8} |",
        "CFSM", "incomp.", "plain max", "aware max", "tighter"
    );
    println!("|{}|", "-".repeat(60));
    let mut any_tighter = false;
    let extra = vec![overlapping_bands()];
    for machines in [
        workloads::shock_absorber().cfsms().to_vec(),
        workloads::dashboard().cfsms().to_vec(),
        extra,
    ] {
        for m in &machines {
            let incs = derive_incompatibilities(m);
            if incs.is_empty() {
                continue;
            }
            let mut rf = ReactiveFn::build(m);
            rf.sift(OrderScheme::OutputsAfterSupport);
            let g = build(&rf).expect("builds");
            let plain = estimate(m, &g, &params, BufferPolicy::All).max_cycles;
            let aware = max_cycles_false_path_aware(m, &g, &params, &incs);
            let tighter = aware < plain;
            any_tighter |= tighter;
            println!(
                "| {:<12} | {:>7} | {:>10} | {:>10} | {:>8} |",
                m.name(),
                incs.len(),
                plain,
                aware,
                if tighter { "yes" } else { "no" }
            );
        }
    }
    println!(
        "\nNote: on the BDD-synthesized workload machines the bounds rarely move —\n\
         the priority-resolved characteristic function already excludes most\n\
         structurally false paths. The `bands` row carries a dead guard\n\
         combination in its *specification*, which only the incompatibility\n\
         relations can remove."
    );
    println!(
        "shape check (analysis tightens at least the dead-combination case): {}",
        if any_tighter { "HOLDS" } else { "VIOLATED" }
    );
}
