//! Property-style test: the synchronous product of a random acyclic
//! pipeline is observationally equivalent to the tick-by-tick synchronous
//! execution of the original network. Deterministically seeded, offline.

use polis_cfsm::{compose, value_var_name, Cfsm, CfsmState, Network};
use polis_core::random::Rng;
use polis_expr::{Expr, MapEnv, Type, Value};
use std::collections::BTreeSet;

/// A two-stage pipeline with randomized guards/actions per stage.
#[derive(Debug, Clone)]
struct PipeSpec {
    stage1_states: usize,
    stage1_bump: bool,
    stage2_threshold: i64,
    stage2_needs_ext: bool,
}

fn gen_spec(rng: &mut Rng) -> PipeSpec {
    PipeSpec {
        stage1_states: rng.usize(1..3),
        stage1_bump: rng.bool(),
        stage2_threshold: rng.i64(0..16),
        stage2_needs_ext: rng.bool(),
    }
}

fn instantiate(spec: &PipeSpec) -> Network {
    let mut b = Cfsm::builder("src");
    b.input_pure("tick");
    b.input_valued("raw", Type::uint(4));
    b.output_valued("mid", Type::uint(4));
    b.state_var("n", Type::uint(4), Value::Int(0));
    let states: Vec<_> = (0..spec.stage1_states)
        .map(|i| b.ctrl_state(format!("s{i}")))
        .collect();
    for (i, &st) in states.iter().enumerate() {
        let next = states[(i + 1) % states.len()];
        let mut tb = b
            .transition(st, next)
            .when_present("raw")
            .emit_value("mid", Expr::var("raw_value").add(Expr::var("n")));
        if spec.stage1_bump {
            tb = tb.assign("n", Expr::var("n").add(Expr::int(1)));
        }
        tb.done();
        b.transition(st, st).when_present("tick").done();
    }
    let src = b.build().unwrap();

    let mut b = Cfsm::builder("sink");
    b.input_valued("mid", Type::uint(4));
    if spec.stage2_needs_ext {
        b.input_pure("en");
    }
    b.output_pure("hit");
    let s = b.ctrl_state("s");
    let t = b.test(
        "thr",
        Expr::var("mid_value").ge(Expr::int(spec.stage2_threshold)),
    );
    let mut tb = b.transition(s, s).when_present("mid").when_test(t);
    if spec.stage2_needs_ext {
        tb = tb.when_present("en");
    }
    tb.emit("hit").done();
    let sink = b.build().unwrap();

    Network::new("pipe", vec![src, sink]).unwrap()
}

/// Synchronous tick of the network in topological order (the composition's
/// reference semantics).
fn sync_tick(
    net: &Network,
    present_ext: &BTreeSet<String>,
    values: &MapEnv,
    states: &mut [CfsmState],
) -> Vec<(String, Option<i64>)> {
    let topo = net.topo_order().expect("acyclic");
    let mut present = present_ext.clone();
    let mut vals = values.clone();
    let mut out = Vec::new();
    for &mi in &topo {
        let m = &net.cfsms()[mi];
        let r = m.react(&present, &vals, &states[mi]).unwrap();
        for e in &r.emissions {
            out.push((e.signal.clone(), e.value.map(|v| v.as_int().unwrap())));
            present.insert(e.signal.clone());
            if let Some(v) = e.value {
                vals.set(value_var_name(&e.signal), v);
            }
        }
        states[mi] = r.next;
    }
    out.sort();
    out
}

#[test]
fn product_equals_synchronous_reference() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xc0_0b05e ^ case);
        let spec = gen_spec(&mut rng);
        let net = instantiate(&spec);
        let product = compose::compose(&net).expect("composes");

        let mut ref_states: Vec<CfsmState> =
            net.cfsms().iter().map(|m| m.initial_state()).collect();
        let mut p_state = product.initial_state();

        for _ in 0..rng.usize(1..10) {
            let (tick, raw, en, rawv) = (rng.bool(), rng.bool(), rng.bool(), rng.i64(0..16));
            let mut present = BTreeSet::new();
            if tick {
                present.insert("tick".to_string());
            }
            if raw {
                present.insert("raw".to_string());
            }
            if en && spec.stage2_needs_ext {
                present.insert("en".to_string());
            }
            let mut vals = MapEnv::new();
            vals.set("raw_value", Value::Int(rawv));

            let want = sync_tick(&net, &present, &vals, &mut ref_states);
            let r = product.react(&present, &vals, &p_state).unwrap();
            p_state = r.next;
            let mut got: Vec<(String, Option<i64>)> = r
                .emissions
                .iter()
                .map(|e| (e.signal.clone(), e.value.map(|v| v.as_int().unwrap())))
                .collect();
            got.sort();
            assert_eq!(got, want, "case={case}");
        }
    }
}

#[test]
fn product_state_count_bounded_by_tuple_product() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xface ^ case);
        let spec = gen_spec(&mut rng);
        let net = instantiate(&spec);
        let product = compose::compose(&net).expect("composes");
        let bound: usize = net.cfsms().iter().map(|m| m.states().len()).product();
        assert!(product.states().len() <= bound, "case={case}");
        assert!(!product.states().is_empty(), "case={case}");
    }
}
