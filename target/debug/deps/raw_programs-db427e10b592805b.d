/root/repo/target/debug/deps/raw_programs-db427e10b592805b.d: crates/vm/tests/raw_programs.rs

/root/repo/target/debug/deps/raw_programs-db427e10b592805b: crates/vm/tests/raw_programs.rs

crates/vm/tests/raw_programs.rs:
