/root/repo/target/debug/examples/quickstart-606197cb34c9b5d6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-606197cb34c9b5d6: examples/quickstart.rs

examples/quickstart.rs:
