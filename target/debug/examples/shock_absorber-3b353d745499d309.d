/root/repo/target/debug/examples/shock_absorber-3b353d745499d309.d: examples/shock_absorber.rs Cargo.toml

/root/repo/target/debug/examples/libshock_absorber-3b353d745499d309.rmeta: examples/shock_absorber.rs Cargo.toml

examples/shock_absorber.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
