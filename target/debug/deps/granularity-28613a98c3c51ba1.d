/root/repo/target/debug/deps/granularity-28613a98c3c51ba1.d: crates/bench/src/bin/granularity.rs Cargo.toml

/root/repo/target/debug/deps/libgranularity-28613a98c3c51ba1.rmeta: crates/bench/src/bin/granularity.rs Cargo.toml

crates/bench/src/bin/granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
