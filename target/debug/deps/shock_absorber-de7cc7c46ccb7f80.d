/root/repo/target/debug/deps/shock_absorber-de7cc7c46ccb7f80.d: crates/bench/src/bin/shock_absorber.rs

/root/repo/target/debug/deps/shock_absorber-de7cc7c46ccb7f80: crates/bench/src/bin/shock_absorber.rs

crates/bench/src/bin/shock_absorber.rs:
