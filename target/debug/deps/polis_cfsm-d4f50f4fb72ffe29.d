/root/repo/target/debug/deps/polis_cfsm-d4f50f4fb72ffe29.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/debug/deps/libpolis_cfsm-d4f50f4fb72ffe29.rmeta: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
