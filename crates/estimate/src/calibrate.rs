//! Parameter calibration against a target profile.
//!
//! Following Section III-C1, the parameters are "determined for each target
//! system ... with a set of sample benchmark programs", each containing
//! statements in the styles the synthesizer generates. We build those probe
//! routines, measure them through the assembler (bytes) and object-code
//! analyzer / executor (cycles) — the interfaces a profiler or an
//! assembly-level analysis tool would expose — and derive each parameter
//! from measurement differences.
//!
//! Calibration deliberately measures probes in a *typical* context (small
//! slot indices, short branches, byte-sized immediates). Real synthesized
//! code also contains extended addressing, widened branches, and mixed
//! expression shapes, which is exactly where the estimator deviates from
//! the exact measurement — the error Table I quantifies.

use crate::params::{CostPair, CostParams};
use polis_expr::{BinOp, Type};
use polis_vm::{
    analyze, assemble, run_reaction, CollectingHost, Inst, Profile, SlotInfo, SlotKind, VmMemory,
    VmProgram,
};

/// Measures the probe suite on `profile` and derives the parameter set.
pub fn calibrate(profile: Profile) -> CostParams {
    let m = Measurer { profile };

    let baseline = m.measure(vec![]);
    let call_return = baseline;

    // One detection + conditional branch (both edges land on returns).
    let present = {
        let p = m.measure_raw(vec![
            Inst::Detect(0),
            Inst::Branch {
                when: true,
                target: 3,
            },
            Inst::Return,
            Inst::Return,
        ]);
        diff(p, baseline)
    };

    // Edge extras measured dynamically (taken vs. not taken).
    let (edge_true_cycles, edge_false_cycles) = {
        let taken = m.run_cycles(
            vec![
                Inst::PushImm(1),
                Inst::Branch {
                    when: true,
                    target: 3,
                },
                Inst::Return,
                Inst::Return,
            ],
            &[],
        );
        let fallthrough = m.run_cycles(
            vec![
                Inst::PushImm(0),
                Inst::Branch {
                    when: true,
                    target: 3,
                },
                Inst::Return,
                Inst::Return,
            ],
            &[],
        );
        let extra = taken as f64 - fallthrough as f64;
        (extra.max(0.0), (-extra).max(0.0))
    };

    // Expression-test base: push a flag variable and branch on it.
    let test_expr_base = {
        let p = m.measure_raw(vec![
            Inst::PushVar(0),
            Inst::Branch {
                when: true,
                target: 3,
            },
            Inst::Return,
            Inst::Return,
        ]);
        diff(p, baseline)
    };

    let test_ctrl_bit = {
        let p = m.measure_raw(vec![
            Inst::PushCtrlBit {
                slot: 0,
                bit: 0,
                width: 2,
            },
            Inst::Branch {
                when: true,
                target: 3,
            },
            Inst::Return,
            Inst::Return,
        ]);
        diff(p, baseline)
    };

    // Multi-way dispatch: fit fixed + per-arm from 2- and 4-arm tables.
    let (switch_base, switch_per_arm) = {
        let two = m.measure_raw(vec![
            Inst::PushVar(0),
            Inst::JumpTable(vec![2, 3]),
            Inst::Return,
            Inst::Return,
        ]);
        let four = m.measure_raw(vec![
            Inst::PushVar(0),
            Inst::JumpTable(vec![2, 3, 4, 5]),
            Inst::Return,
            Inst::Return,
            Inst::Return,
            Inst::Return,
        ]);
        // bytes(n) ≈ base + arm·n; cycles are dispatch-dominated.
        let arm_bytes = (four.bytes - two.bytes) / 2.0;
        let base = CostPair {
            bytes: two.bytes - baseline.bytes - 2.0 * arm_bytes,
            cycles: two.cycles - baseline.cycles,
        };
        (
            base,
            CostPair {
                bytes: arm_bytes,
                cycles: (four.cycles - two.cycles) / 2.0,
            },
        )
    };

    let assign_var = diff(
        m.measure_raw(vec![Inst::PushVar(0), Inst::StoreVar(0), Inst::Return]),
        baseline,
    );
    let local_init = diff(
        m.measure_raw(vec![Inst::PushVar(0), Inst::StoreVar(1), Inst::Return]),
        baseline,
    );
    let emit_pure = diff(m.measure(vec![Inst::EmitPure(0)]), baseline);
    let emit_valued = diff(
        m.measure_raw(vec![Inst::PushVar(0), Inst::EmitValued(0), Inst::Return]),
        baseline,
    );
    let consume = diff(m.measure(vec![Inst::Consume]), baseline);
    let goto = diff(m.measure_raw(vec![Inst::Jump(1), Inst::Return]), baseline);
    // Per-bit cost of a control-state update, from a one-bit probe.
    let ctrl_set_per_bit = diff(
        m.measure(vec![Inst::SetCtrlBits {
            slot: 0,
            bits: vec![(0, true)],
            width: 2,
        }]),
        baseline,
    );

    // Operator probes: var ⊕ var stored back, minus the plain assignment.
    let op = |opc: BinOp| -> CostPair {
        let p = m.measure_raw(vec![
            Inst::PushVar(0),
            Inst::PushVar(0),
            Inst::Binary(opc),
            Inst::StoreVar(0),
            Inst::Return,
        ]);
        diff(p, assign_sum(assign_var, baseline))
    };
    let op_arith = op(BinOp::Add);
    let op_compare = op(BinOp::Lt);
    let op_muldiv = avg(op(BinOp::Mul), op(BinOp::Div));
    let op_logic = op(BinOp::And);
    let op_minmax = op(BinOp::Min);

    let (bytes_pointer, bytes_int, bytes_bool, bytes_frame) = match profile {
        Profile::Mcu8 => (2.0, 2.0, 1.0, 4.0),
        Profile::Risc32 => (4.0, 4.0, 1.0, 16.0),
    };

    CostParams {
        test_present: present,
        test_expr_base,
        test_ctrl_bit,
        edge_true_cycles,
        edge_false_cycles,
        switch_base,
        switch_per_arm,
        emit_pure,
        emit_valued,
        assign_var,
        consume,
        ctrl_set_per_bit,
        goto,
        call_return,
        local_init,
        op_arith,
        op_compare,
        op_muldiv,
        op_logic,
        op_minmax,
        bytes_pointer,
        bytes_int,
        bytes_bool,
        bytes_frame,
    }
}

fn diff(a: CostPair, b: CostPair) -> CostPair {
    CostPair {
        bytes: a.bytes - b.bytes,
        cycles: a.cycles - b.cycles,
    }
}

fn avg(a: CostPair, b: CostPair) -> CostPair {
    CostPair {
        bytes: (a.bytes + b.bytes) / 2.0,
        cycles: (a.cycles + b.cycles) / 2.0,
    }
}

fn assign_sum(assign: CostPair, baseline: CostPair) -> CostPair {
    CostPair {
        bytes: assign.bytes + baseline.bytes,
        cycles: assign.cycles + baseline.cycles,
    }
}

struct Measurer {
    profile: Profile,
}

impl Measurer {
    fn slots() -> Vec<SlotInfo> {
        vec![
            SlotInfo {
                name: "p0".into(),
                ty: Type::uint(8),
                kind: SlotKind::State,
                init: 0,
            },
            SlotInfo {
                name: "p1".into(),
                ty: Type::uint(8),
                kind: SlotKind::State,
                init: 0,
            },
        ]
    }

    fn program(&self, insts: Vec<Inst>) -> VmProgram {
        VmProgram::from_raw(
            "probe",
            insts,
            Self::slots(),
            1,
            1,
            vec![Some(Type::uint(8))],
        )
    }

    /// Measures a body followed by `Return` via static analysis (bytes,
    /// max-path cycles).
    fn measure(&self, mut body: Vec<Inst>) -> CostPair {
        body.push(Inst::Return);
        self.measure_raw(body)
    }

    /// Measures a complete routine.
    fn measure_raw(&self, insts: Vec<Inst>) -> CostPair {
        let p = self.program(insts);
        let obj = assemble(&p, self.profile);
        let bounds = analyze(&p, &obj);
        CostPair {
            bytes: f64::from(obj.size_bytes()),
            cycles: bounds.max_cycles as f64,
        }
    }

    /// Executes a routine and reports dynamic cycles.
    fn run_cycles(&self, insts: Vec<Inst>, present: &[bool]) -> u64 {
        let p = self.program(insts);
        let obj = assemble(&p, self.profile);
        let mut mem = VmMemory::new(&p);
        let mut host = CollectingHost::new(present.to_vec());
        run_reaction(&p, &obj, &mut mem, &mut host)
            .expect("probe runs")
            .cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_are_positive_where_expected() {
        for profile in [Profile::Mcu8, Profile::Risc32] {
            let p = calibrate(profile);
            for (name, pair) in [
                ("test_present", p.test_present),
                ("test_expr_base", p.test_expr_base),
                ("test_ctrl_bit", p.test_ctrl_bit),
                ("emit_pure", p.emit_pure),
                ("emit_valued", p.emit_valued),
                ("assign_var", p.assign_var),
                ("consume", p.consume),
                ("goto", p.goto),
                ("call_return", p.call_return),
                ("local_init", p.local_init),
                ("op_arith", p.op_arith),
                ("op_muldiv", p.op_muldiv),
            ] {
                assert!(pair.bytes > 0.0, "{profile:?} {name} bytes {}", pair.bytes);
                assert!(
                    pair.cycles > 0.0,
                    "{profile:?} {name} cycles {}",
                    pair.cycles
                );
            }
        }
    }

    #[test]
    fn muldiv_dominates_arith() {
        for profile in [Profile::Mcu8, Profile::Risc32] {
            let p = calibrate(profile);
            assert!(p.op_muldiv.cycles > p.op_arith.cycles, "{profile:?}");
        }
    }

    #[test]
    fn rtos_calls_cost_more_than_local_work() {
        let p = calibrate(Profile::Mcu8);
        assert!(p.emit_pure.cycles > p.goto.cycles);
        assert!(p.test_present.cycles > p.test_expr_base.cycles);
    }

    #[test]
    fn risc_branch_has_taken_penalty_mcu_does_not() {
        let mcu = calibrate(Profile::Mcu8);
        let risc = calibrate(Profile::Risc32);
        assert_eq!(mcu.edge_true_cycles, 0.0);
        assert!(risc.edge_true_cycles > 0.0);
    }

    #[test]
    fn system_params_reflect_word_size() {
        let mcu = calibrate(Profile::Mcu8);
        let risc = calibrate(Profile::Risc32);
        assert!(risc.bytes_pointer > mcu.bytes_pointer);
    }
}
