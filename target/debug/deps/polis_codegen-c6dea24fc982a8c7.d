/root/repo/target/debug/deps/polis_codegen-c6dea24fc982a8c7.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/debug/deps/libpolis_codegen-c6dea24fc982a8c7.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/two_level.rs:
