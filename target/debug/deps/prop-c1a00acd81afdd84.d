/root/repo/target/debug/deps/prop-c1a00acd81afdd84.d: crates/rtos/tests/prop.rs

/root/repo/target/debug/deps/libprop-c1a00acd81afdd84.rmeta: crates/rtos/tests/prop.rs

crates/rtos/tests/prop.rs:
