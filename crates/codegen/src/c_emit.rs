//! The s-graph → C translator (Section III-B4).

use polis_cfsm::{value_var_name, Action, Cfsm, Network};
use polis_expr::{CStyle, Expr};
use polis_sgraph::{
    analysis, AssignLabel, BufferPolicy, ComputedTarget, Cond, NodeId, SGraph, SNode, TestLabel,
};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Options for [`emit_c`].
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Expression rendering: infix operators or software-library calls
    /// (`ADD(x, y)`) for compilers without multi-byte arithmetic.
    pub style: CStyle,
    /// Minimum number of children for a multi-way TEST to be emitted as a
    /// `switch` rather than an `if` chain — "a target-dependent parameter
    /// can be used to specify how many children a TEST node must have in
    /// order to make an if-based implementation more convenient than a
    /// switch-based one."
    pub switch_threshold: usize,
    /// Entry-copy buffering policy (Section V-B).
    pub buffering: BufferPolicy,
    /// Annotate statements with the specification constructs they came
    /// from, the role played by the paper's "compiler directives that
    /// relate directly the object code with the source language files"
    /// for source-level debugging.
    pub source_comments: bool,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions {
            style: CStyle::Infix,
            switch_threshold: 3,
            buffering: BufferPolicy::All,
            source_comments: false,
        }
    }
}

/// Size measures of an emitted C translation unit, recorded into the
/// synthesis trace by the pipeline's emit stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmitStats {
    /// Total source lines (including blanks and comments).
    pub lines: u64,
    /// Source bytes.
    pub bytes: u64,
    /// `goto` statements — one per shared s-graph edge in the paper's
    /// goto style, a rough proxy for sharing in the decision graph.
    pub gotos: u64,
}

/// Measures an emitted C source string.
pub fn measure_c(src: &str) -> EmitStats {
    EmitStats {
        lines: src.lines().count() as u64,
        bytes: src.len() as u64,
        gotos: src.matches("goto ").count() as u64,
    }
}

/// Emits the C routine implementing one CFSM reaction from its s-graph.
///
/// The output is one `void <name>_react(struct <name>_state *st)` function
/// in the paper's goto style, plus the state struct and its initializer.
/// RTOS interaction goes through `POLIS_*` macros declared by
/// [`emit_network_header`].
pub fn emit_c(cfsm: &Cfsm, g: &SGraph, opts: &CodegenOptions) -> String {
    let name = g.name();
    let buffered: BTreeSet<String> = match opts.buffering {
        BufferPolicy::All => analysis::vars_referenced(cfsm, g),
        BufferPolicy::Minimal => analysis::vars_needing_buffer(cfsm, g),
    };
    let multi_state = cfsm.states().len() > 1;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* synthesized by polis from CFSM `{name}` -- generated code, do not edit */"
    );
    let _ = writeln!(out, "#include \"polis_rtos.h\"\n");

    // State struct + initializer.
    let _ = writeln!(out, "struct {name}_state {{");
    for v in cfsm.state_vars() {
        let _ = writeln!(out, "    {} {};", v.ty.c_type(), v.name);
    }
    if multi_state {
        let _ = writeln!(out, "    unsigned char ctrl;");
    }
    let _ = writeln!(out, "}};\n");
    let _ = writeln!(out, "void {name}_init(struct {name}_state *st)\n{{");
    for v in cfsm.state_vars() {
        let _ = writeln!(out, "    st->{} = {};", v.name, v.init);
    }
    if multi_state {
        let _ = writeln!(out, "    st->ctrl = {};", cfsm.init_state());
    }
    let _ = writeln!(out, "}}\n");

    // Reaction routine.
    let _ = writeln!(out, "void {name}_react(struct {name}_state *st)\n{{");
    for b in &buffered {
        let ty = cfsm.state_vars()[cfsm.state_var_index(b).expect("state var")].ty;
        let _ = writeln!(out, "    {} {} = st->{};", ty.c_type(), b, b);
    }
    if multi_state {
        let _ = writeln!(out, "    unsigned char ctrl = st->ctrl;");
    }

    let mut e = CEmitter {
        cfsm,
        g,
        opts,
        buffered,
        out: String::new(),
        emitted: vec![false; g.len()],
    };
    e.emit_node(g.begin_next());
    out.push_str(&e.out);
    let _ = writeln!(out, "L{}: return;", NodeId::END.index());
    let _ = writeln!(out, "}}");
    out
}

/// Emits the `polis_rtos.h` header shared by every routine of a network:
/// RTOS macros and signal identifiers.
pub fn emit_network_header(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* polis_rtos.h -- generated for network `{}` */",
        net.name()
    );
    let _ = writeln!(out, "#ifndef POLIS_RTOS_H\n#define POLIS_RTOS_H\n");
    let mut signals: BTreeSet<String> = BTreeSet::new();
    for m in net.cfsms() {
        for s in m.inputs().iter().chain(m.outputs()) {
            signals.insert(s.name().to_owned());
        }
    }
    for (i, s) in signals.iter().enumerate() {
        let _ = writeln!(out, "#define POLIS_SIG_{s} {i}");
    }
    out.push_str(
        "\n/* Provided by the generated RTOS: */\n\
         extern unsigned char polis_detect(int sig);\n\
         extern long polis_value(int sig);\n\
         extern void polis_emit(int sig);\n\
         extern void polis_emit_value(int sig, long v);\n\
         extern void polis_consume(void);\n\n\
         #define POLIS_DETECT(sig) polis_detect(POLIS_SIG_##sig)\n\
         #define POLIS_VALUE(sig) polis_value(POLIS_SIG_##sig)\n\
         #define POLIS_EMIT(sig) polis_emit(POLIS_SIG_##sig)\n\
         #define POLIS_EMIT_VALUE(sig, v) polis_emit_value(POLIS_SIG_##sig, (v))\n\
         #define POLIS_CONSUME() polis_consume()\n\
         #define MIN(a, b) ((a) < (b) ? (a) : (b))\n\
         #define MAX(a, b) ((a) > (b) ? (a) : (b))\n\n\
         #endif /* POLIS_RTOS_H */\n",
    );
    out
}

struct CEmitter<'a> {
    cfsm: &'a Cfsm,
    g: &'a SGraph,
    opts: &'a CodegenOptions,
    buffered: BTreeSet<String>,
    out: String,
    emitted: Vec<bool>,
}

impl CEmitter<'_> {
    /// A trailing source-reference comment (empty when disabled).
    fn src(&self, text: impl AsRef<str>) -> String {
        if self.opts.source_comments {
            format!(" /* {} */", text.as_ref())
        } else {
            String::new()
        }
    }

    /// Renders an expression with variables bound to their C locations.
    fn expr(&self, e: &Expr) -> String {
        let renamed = e.rename_vars(&|n| {
            if self.buffered.contains(n) {
                n.to_owned() // entry copy: plain local
            } else if self.cfsm.state_var_index(n).is_some() {
                format!("st->{n}")
            } else {
                // An input value variable `sig_value`.
                for sig in self.cfsm.inputs() {
                    if sig.is_valued() && value_var_name(sig.name()) == n {
                        return format!("POLIS_VALUE({})", sig.name());
                    }
                }
                unreachable!("validation guarantees known variables")
            }
        });
        renamed.to_c_styled(self.opts.style)
    }

    fn cond(&self, c: &Cond) -> String {
        match c {
            Cond::Const(b) => u8::from(*b).to_string(),
            Cond::Present(i) => {
                format!("POLIS_DETECT({})", self.cfsm.inputs()[*i].name())
            }
            Cond::Test(t) => self.expr(&self.cfsm.tests()[*t].expr),
            Cond::CtrlBit { bit, width } => {
                format!("((ctrl >> {}) & 1)", width - 1 - bit)
            }
            Cond::Not(a) => format!("(!{})", self.cond(a)),
            Cond::And(a, b) => format!("({} && {})", self.cond(a), self.cond(b)),
            Cond::Or(a, b) => format!("({} || {})", self.cond(a), self.cond(b)),
        }
    }

    fn goto(&mut self, id: NodeId) {
        if self.emitted[id.index()] || id == NodeId::END {
            let _ = writeln!(self.out, "    goto L{};", id.index());
        } else {
            self.emit_node(id);
        }
    }

    fn emit_node(&mut self, id: NodeId) {
        self.emitted[id.index()] = true;
        let _ = writeln!(self.out, "L{}:", id.index());
        match self.g.node(id).clone() {
            SNode::Begin { .. } => unreachable!("emission starts after BEGIN"),
            SNode::End => unreachable!("END emitted by the epilogue"),
            SNode::Test { label, children } => {
                match &label {
                    TestLabel::Present { input } => {
                        let sig = self.cfsm.inputs()[*input].name();
                        let _ = writeln!(
                            self.out,
                            "    if (POLIS_DETECT({sig})) goto L{};",
                            children[1].index()
                        );
                    }
                    TestLabel::TestExpr { test } => {
                        let e = self.expr(&self.cfsm.tests()[*test].expr);
                        let note = self.src(format!("test `{}`", self.cfsm.tests()[*test].name));
                        let _ = writeln!(
                            self.out,
                            "    if ({e}) goto L{};{note}",
                            children[1].index()
                        );
                    }
                    TestLabel::CtrlBit { bit, width } => {
                        let _ = writeln!(
                            self.out,
                            "    if ((ctrl >> {}) & 1) goto L{};",
                            width - 1 - bit,
                            children[1].index()
                        );
                    }
                    TestLabel::Compound { cond } => {
                        let c = self.cond(cond);
                        let _ = writeln!(self.out, "    if ({c}) goto L{};", children[1].index());
                    }
                    TestLabel::CtrlSwitch { .. } => {
                        if children.len() >= self.opts.switch_threshold {
                            let _ = writeln!(self.out, "    switch (ctrl) {{");
                            for (v, c) in children.iter().enumerate() {
                                let _ = writeln!(self.out, "    case {v}: goto L{};", c.index());
                            }
                            let _ = writeln!(self.out, "    }}");
                        } else {
                            for (v, c) in children.iter().enumerate().skip(1) {
                                let _ =
                                    writeln!(self.out, "    if (ctrl == {v}) goto L{};", c.index());
                            }
                        }
                        // Default arm falls through to child 0.
                        self.goto(children[0]);
                        for &c in &children {
                            if !self.emitted[c.index()] && c != NodeId::END {
                                self.emit_node(c);
                            }
                        }
                        return;
                    }
                }
                // Binary: fall through to the false child.
                self.goto(children[0]);
                if !self.emitted[children[1].index()] && children[1] != NodeId::END {
                    self.emit_node(children[1]);
                }
            }
            SNode::Assign { label, next } => {
                match &label {
                    AssignLabel::Consume => {
                        let note = self.src("transition fired: consume input snapshot");
                        let _ = writeln!(self.out, "    POLIS_CONSUME();{note}");
                    }
                    AssignLabel::Action { action } => self.emit_action(*action, None),
                    AssignLabel::NextCtrlBits { bits, width } => {
                        if self.opts.source_comments && bits.len() == *width {
                            let mut state = 0usize;
                            for &(bit, v) in bits {
                                if v {
                                    state |= 1 << (width - 1 - bit);
                                }
                            }
                            if let Some(name) = self.cfsm.states().get(state) {
                                let _ = writeln!(self.out, "    /* goto state `{name}` */");
                            }
                        }
                        self.emit_ctrl_bits(bits, *width);
                    }
                    AssignLabel::Computed { target, cond } => {
                        let c = self.cond(cond);
                        match target {
                            ComputedTarget::Consume => {
                                let _ = writeln!(self.out, "    if ({c}) POLIS_CONSUME();");
                            }
                            ComputedTarget::Action { action } => {
                                self.emit_action(*action, Some(&c));
                            }
                            ComputedTarget::CtrlBit { bit, width } => {
                                let shift = width - 1 - bit;
                                let _ = writeln!(
                                    self.out,
                                    "    st->ctrl = (st->ctrl & ~(1 << {shift})) | (({c}) << {shift});"
                                );
                            }
                        }
                    }
                }
                self.goto(next);
            }
        }
    }

    fn emit_action(&mut self, action: usize, guard: Option<&str>) {
        let prefix = match guard {
            Some(c) => format!("    if ({c}) "),
            None => "    ".to_owned(),
        };
        match &self.cfsm.actions()[action] {
            Action::Emit {
                signal,
                value: None,
            } => {
                let sig = self.cfsm.outputs()[*signal].name();
                let _ = writeln!(self.out, "{prefix}POLIS_EMIT({sig});");
            }
            Action::Emit {
                signal,
                value: Some(e),
            } => {
                let sig = self.cfsm.outputs()[*signal].name();
                let v = self.expr(e);
                let _ = writeln!(self.out, "{prefix}POLIS_EMIT_VALUE({sig}, {v});");
            }
            Action::Assign { var, value } => {
                let name = &self.cfsm.state_vars()[*var].name;
                let v = self.expr(value);
                let _ = writeln!(self.out, "{prefix}st->{name} = {v};");
            }
        }
    }

    fn emit_ctrl_bits(&mut self, bits: &[(usize, bool)], width: usize) {
        // Full-width writes collapse to a constant store.
        if bits.len() == width {
            let mut value = 0u64;
            let mut mask = 0u64;
            for &(bit, v) in bits {
                let m = 1u64 << (width - 1 - bit);
                mask |= m;
                if v {
                    value |= m;
                }
            }
            if mask == (1u64 << width) - 1 {
                let _ = writeln!(self.out, "    st->ctrl = {value};");
                return;
            }
        }
        for &(bit, v) in bits {
            let shift = width - 1 - bit;
            if v {
                let _ = writeln!(self.out, "    st->ctrl |= (1 << {shift});");
            } else {
                let _ = writeln!(self.out, "    st->ctrl &= ~(1 << {shift});");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_cfsm::ReactiveFn;
    use polis_expr::{Type, Value};
    use polis_sgraph::{build, ite_chain};

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    fn toggler() -> Cfsm {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("on");
        b.output_pure("off");
        let s_off = b.ctrl_state("off");
        let s_on = b.ctrl_state("on");
        b.transition(s_off, s_on)
            .when_present("tick")
            .emit("on")
            .done();
        b.transition(s_on, s_off)
            .when_present("tick")
            .emit("off")
            .done();
        b.build().unwrap()
    }

    #[test]
    fn simple_c_has_expected_shape() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let c = emit_c(&m, &g, &CodegenOptions::default());
        assert!(c.contains("struct simple_state"));
        assert!(c.contains("void simple_init"));
        assert!(c.contains("void simple_react"));
        assert!(c.contains("POLIS_DETECT(c)"));
        assert!(c.contains("POLIS_EMIT(y);"));
        assert!(c.contains("POLIS_CONSUME();"));
        assert!(c.contains("goto L"));
        assert!(c.contains("POLIS_VALUE(c)"));
        // the a := a + 1 action
        assert!(c.contains("+ 1"), "{c}");
    }

    #[test]
    fn lib_call_style_renders_function_calls() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let c = emit_c(
            &m,
            &g,
            &CodegenOptions {
                style: CStyle::LibCalls,
                ..CodegenOptions::default()
            },
        );
        assert!(c.contains("ADD("), "{c}");
        assert!(c.contains("EQ("), "{c}");
    }

    #[test]
    fn minimal_buffering_omits_entry_copies_when_safe() {
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let all = emit_c(&m, &g, &CodegenOptions::default());
        let min = emit_c(
            &m,
            &g,
            &CodegenOptions {
                buffering: BufferPolicy::Minimal,
                ..CodegenOptions::default()
            },
        );
        // All: local copy `unsigned char a = st->a;` present; Minimal: not.
        assert!(all.contains("unsigned char a = st->a;"));
        assert!(!min.contains("unsigned char a = st->a;"));
    }

    #[test]
    fn multi_state_machines_reference_ctrl() {
        let m = toggler();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let c = emit_c(&m, &g, &CodegenOptions::default());
        assert!(c.contains("unsigned char ctrl = st->ctrl;"));
        assert!(c.contains("st->ctrl = "));
        assert!(c.contains("ctrl >> 0"));
    }

    #[test]
    fn ite_chain_emits_guarded_assignments() {
        let m = simple();
        let mut rf = ReactiveFn::build(&m);
        let g = ite_chain(&mut rf);
        let c = emit_c(&m, &g, &CodegenOptions::default());
        assert!(c.contains("if ("));
        assert!(c.contains("POLIS_CONSUME()"));
        // No test labels -> no `goto Lx;` other than the END fallthrough.
        assert!(c.contains("POLIS_EMIT(y);"));
    }

    #[test]
    fn header_declares_macros_and_signals() {
        let net = Network::new("n", vec![simple()]).unwrap();
        let h = emit_network_header(&net);
        assert!(h.contains("#define POLIS_SIG_c"));
        assert!(h.contains("#define POLIS_SIG_y"));
        assert!(h.contains("POLIS_DETECT"));
        assert!(h.contains("POLIS_EMIT_VALUE"));
        assert!(h.contains("#endif"));
    }

    #[test]
    fn source_comments_reference_the_specification() {
        let m = toggler();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let annotated = emit_c(
            &m,
            &g,
            &CodegenOptions {
                source_comments: true,
                ..CodegenOptions::default()
            },
        );
        assert!(annotated.contains("/* transition fired"), "{annotated}");
        assert!(annotated.contains("/* goto state `"), "{annotated}");
        let plain = emit_c(&m, &g, &CodegenOptions::default());
        assert!(!plain.contains("/* goto state"));

        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let annotated = emit_c(
            &m,
            &g,
            &CodegenOptions {
                source_comments: true,
                ..CodegenOptions::default()
            },
        );
        assert!(annotated.contains("/* test `a_eq_c` */"), "{annotated}");
    }

    #[test]
    fn every_goto_targets_an_emitted_label() {
        let m = toggler();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let c = emit_c(&m, &g, &CodegenOptions::default());
        let labels: BTreeSet<&str> = c
            .lines()
            .filter(|l| l.starts_with('L') && l.contains(':'))
            .map(|l| l.split(':').next().unwrap())
            .collect();
        for line in c.lines() {
            if let Some(pos) = line.find("goto ") {
                let target = line[pos + 5..].trim_end_matches(';').trim();
                assert!(labels.contains(target), "goto {target} has no label:\n{c}");
            }
        }
    }
}
