/root/repo/target/debug/deps/extensions-a4e62c150e39c60a.d: crates/rtos/tests/extensions.rs

/root/repo/target/debug/deps/extensions-a4e62c150e39c60a: crates/rtos/tests/extensions.rs

crates/rtos/tests/extensions.rs:
