//! **Table I** — Results of the cost/performance estimation procedure.
//!
//! For each CFSM of the dashboard controller: the parameter-based estimate
//! of code size and maximum clock cycles per transition (Section III-C)
//! against the exact measurement obtained by analyzing the assembled
//! object code, on the 68HC11-like `Mcu8` target. The paper reports close
//! agreement; the %err columns quantify ours.

use polis_bench::{pct_err, synthesize_all};
use polis_core::{workloads, SynthesisOptions};

fn main() {
    let net = workloads::dashboard();
    let opts = SynthesisOptions::default();
    let (results, _) = synthesize_all(&net, &opts);

    println!("Table I: estimated vs measured cost (dashboard, Mcu8 target)\n");
    println!(
        "| {:<10} | {:>8} {:>8} {:>7} | {:>9} {:>9} {:>7} |",
        "CFSM", "est[B]", "meas[B]", "err%", "est[cyc]", "meas[cyc]", "err%"
    );
    println!("|{}|{}|{}|", "-".repeat(12), "-".repeat(27), "-".repeat(29));
    let mut worst_size = 0.0f64;
    let mut worst_time = 0.0f64;
    for (m, r) in net.cfsms().iter().zip(&results) {
        let es = pct_err(r.estimate.size_bytes, r.measured.size_bytes);
        let et = pct_err(r.estimate.max_cycles, r.measured.max_cycles);
        worst_size = worst_size.max(es.abs());
        worst_time = worst_time.max(et.abs());
        println!(
            "| {:<10} | {:>8} {:>8} {:>+6.1}% | {:>9} {:>9} {:>+6.1}% |",
            m.name(),
            r.estimate.size_bytes,
            r.measured.size_bytes,
            es,
            r.estimate.max_cycles,
            r.measured.max_cycles,
            et
        );
    }
    let tot_est: u64 = results.iter().map(|r| r.estimate.size_bytes).sum();
    let tot_meas: u64 = results.iter().map(|r| r.measured.size_bytes).sum();
    println!(
        "| {:<10} | {:>8} {:>8} {:>+6.1}% | {:>9} {:>9} {:>7} |",
        "TOTAL",
        tot_est,
        tot_meas,
        pct_err(tot_est, tot_meas),
        "-",
        "-",
        "-"
    );
    println!("\nworst-case estimation error: size {worst_size:.1}%, max cycles {worst_time:.1}%");
    println!(
        "shape check (paper: estimates track measurement closely): {}",
        if worst_size < 25.0 && worst_time < 25.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
