/root/repo/target/release/deps/shock_absorber-122d77d25c45cbc0.d: crates/bench/src/bin/shock_absorber.rs

/root/repo/target/release/deps/shock_absorber-122d77d25c45cbc0: crates/bench/src/bin/shock_absorber.rs

crates/bench/src/bin/shock_absorber.rs:
