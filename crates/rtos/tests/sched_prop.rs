//! Properties of the schedulability analyses over random task sets,
//! deterministically seeded (offline-safe).

use polis_core::random::Rng;
use polis_rtos::{rate_monotonic, rate_monotonic_nonpreemptive, TaskModel};

fn gen_tasks(rng: &mut Rng) -> Vec<TaskModel> {
    (0..rng.usize(1..8))
        .map(|i| {
            let c = rng.u64(1..50);
            let p = rng.u64(10..500);
            TaskModel::new(format!("t{i}"), c.min(p), p)
        })
        .collect()
}

/// Blocking can only hurt: a set schedulable without preemption is
/// also schedulable with it.
#[test]
fn nonpreemptive_schedulable_implies_preemptive() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0x5c4ed ^ case.wrapping_mul(0x9e37));
        let tasks = gen_tasks(&mut rng);
        let non = rate_monotonic_nonpreemptive(&tasks);
        let pre = rate_monotonic(&tasks);
        if non.schedulable {
            assert!(pre.schedulable, "case={case}");
        }
        // Blocking never shortens a response time.
        for (a, b) in non.response_times.iter().zip(&pre.response_times) {
            if let (Some(a), Some(b)) = (a, b) {
                assert!(a >= b, "case={case}");
            }
        }
    }
}

/// Over-utilized sets are never declared schedulable.
#[test]
fn utilization_above_one_is_unschedulable() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0x07e1 ^ case.wrapping_mul(0x51ef));
        let tasks = gen_tasks(&mut rng);
        let a = rate_monotonic(&tasks);
        if a.utilization > 1.0 {
            assert!(!a.schedulable, "case={case}");
        }
        // And the LL quick test is sound: passing it implies RTA passes.
        if a.passes_utilization_test {
            assert!(a.schedulable, "case={case}: {a:?}");
        }
    }
}

/// The highest-priority task's response time is exactly its WCET
/// (plus blocking in the non-preemptive model).
#[test]
fn top_priority_response_is_wcet() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0x70b ^ case.wrapping_mul(0x1_0001));
        let tasks = gen_tasks(&mut rng);
        let a = rate_monotonic(&tasks);
        let top = (0..tasks.len())
            .min_by_key(|&i| (tasks[i].period, i))
            .unwrap();
        if let Some(r) = a.response_times[top] {
            assert_eq!(r, tasks[top].wcet, "case={case}");
        }
    }
}
