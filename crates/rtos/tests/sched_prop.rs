//! Properties of the schedulability analyses over random task sets.

use polis_rtos::{rate_monotonic, rate_monotonic_nonpreemptive, TaskModel};
use proptest::prelude::*;

fn arb_tasks() -> impl Strategy<Value = Vec<TaskModel>> {
    proptest::collection::vec((1u64..50, 10u64..500), 1..8).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (c, p))| TaskModel::new(format!("t{i}"), c.min(p), p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Blocking can only hurt: a set schedulable without preemption is
    /// also schedulable with it.
    #[test]
    fn nonpreemptive_schedulable_implies_preemptive(tasks in arb_tasks()) {
        let non = rate_monotonic_nonpreemptive(&tasks);
        let pre = rate_monotonic(&tasks);
        if non.schedulable {
            prop_assert!(pre.schedulable);
        }
        // Blocking never shortens a response time.
        for (a, b) in non.response_times.iter().zip(&pre.response_times) {
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert!(a >= b);
            }
        }
    }

    /// Over-utilized sets are never declared schedulable.
    #[test]
    fn utilization_above_one_is_unschedulable(tasks in arb_tasks()) {
        let a = rate_monotonic(&tasks);
        if a.utilization > 1.0 {
            prop_assert!(!a.schedulable);
        }
        // And the LL quick test is sound: passing it implies RTA passes.
        if a.passes_utilization_test {
            prop_assert!(a.schedulable, "{:?}", a);
        }
    }

    /// The highest-priority task's response time is exactly its WCET
    /// (plus blocking in the non-preemptive model).
    #[test]
    fn top_priority_response_is_wcet(tasks in arb_tasks()) {
        let a = rate_monotonic(&tasks);
        let top = (0..tasks.len())
            .min_by_key(|&i| (tasks[i].period, i))
            .unwrap();
        if let Some(r) = a.response_times[top] {
            prop_assert_eq!(r, tasks[top].wcet);
        }
    }
}
