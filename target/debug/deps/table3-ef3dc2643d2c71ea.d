/root/repo/target/debug/deps/table3-ef3dc2643d2c71ea.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-ef3dc2643d2c71ea.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
