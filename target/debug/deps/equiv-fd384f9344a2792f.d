/root/repo/target/debug/deps/equiv-fd384f9344a2792f.d: crates/vm/tests/equiv.rs Cargo.toml

/root/repo/target/debug/deps/libequiv-fd384f9344a2792f.rmeta: crates/vm/tests/equiv.rs Cargo.toml

crates/vm/tests/equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
