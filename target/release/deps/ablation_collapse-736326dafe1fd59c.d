/root/repo/target/release/deps/ablation_collapse-736326dafe1fd59c.d: crates/bench/src/bin/ablation_collapse.rs

/root/repo/target/release/deps/ablation_collapse-736326dafe1fd59c: crates/bench/src/bin/ablation_collapse.rs

crates/bench/src/bin/ablation_collapse.rs:
