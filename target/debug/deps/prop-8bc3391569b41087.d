/root/repo/target/debug/deps/prop-8bc3391569b41087.d: crates/bdd/tests/prop.rs

/root/repo/target/debug/deps/prop-8bc3391569b41087: crates/bdd/tests/prop.rs

crates/bdd/tests/prop.rs:
