/root/repo/target/debug/deps/polis-f7c68a82782c79e6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpolis-f7c68a82782c79e6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
