/root/repo/target/debug/deps/polis_rtos-51fe27887c14c4ea.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/debug/deps/polis_rtos-51fe27887c14c4ea: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
