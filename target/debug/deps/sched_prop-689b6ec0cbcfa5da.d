/root/repo/target/debug/deps/sched_prop-689b6ec0cbcfa5da.d: crates/rtos/tests/sched_prop.rs

/root/repo/target/debug/deps/libsched_prop-689b6ec0cbcfa5da.rmeta: crates/rtos/tests/sched_prop.rs

crates/rtos/tests/sched_prop.rs:
