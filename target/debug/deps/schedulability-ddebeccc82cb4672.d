/root/repo/target/debug/deps/schedulability-ddebeccc82cb4672.d: crates/bench/src/bin/schedulability.rs

/root/repo/target/debug/deps/schedulability-ddebeccc82cb4672: crates/bench/src/bin/schedulability.rs

crates/bench/src/bin/schedulability.rs:
