/root/repo/target/release/deps/granularity-c714a356a6813c50.d: crates/bench/src/bin/granularity.rs

/root/repo/target/release/deps/granularity-c714a356a6813c50: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:
