/root/repo/target/debug/deps/c_structure-f377203c3d432f24.d: crates/codegen/tests/c_structure.rs

/root/repo/target/debug/deps/libc_structure-f377203c3d432f24.rmeta: crates/codegen/tests/c_structure.rs

crates/codegen/tests/c_structure.rs:
