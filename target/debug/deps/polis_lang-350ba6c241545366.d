/root/repo/target/debug/deps/polis_lang-350ba6c241545366.d: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_lang-350ba6c241545366.rmeta: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
