/root/repo/target/debug/deps/falsepath-e8cf2d8473b05bc7.d: crates/bench/src/bin/falsepath.rs

/root/repo/target/debug/deps/falsepath-e8cf2d8473b05bc7: crates/bench/src/bin/falsepath.rs

crates/bench/src/bin/falsepath.rs:
