/root/repo/target/debug/deps/polis_core-ea3b40c53f14fa07.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

/root/repo/target/debug/deps/libpolis_core-ea3b40c53f14fa07.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/random.rs:
crates/core/src/trace.rs:
crates/core/src/workloads.rs:
