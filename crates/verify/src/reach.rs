//! Frontier-based symbolic reachability to a fixpoint.
//!
//! Classic BFS image computation: `Reached₀ = Frontier₀ = Init`, then
//! repeatedly `New = ⋃ Image(step, Frontier) ∖ Reached` over the
//! partitioned relation until the frontier empties. Each image applies
//! the early-quantification schedule pre-computed in the step (tests
//! right after `χ`, actions right after the buffer updates, the consumed
//! current-state block last) so intermediate products never carry
//! variables that a later conjunct no longer needs.
//!
//! The arena is bounded by [`VerifyOptions::node_budget`]: after every
//! image the allocation level is checked, dead nodes are reclaimed
//! against the persistent roots, and if the live set alone exceeds the
//! budget the traversal aborts with
//! [`VerifyError::NodeBudgetExceeded`] instead of growing without bound.

use crate::model::{EnvStep, NetworkModel, ReactStep};
use crate::{VerifyError, VerifyOptions, VerifyStats};
use polis_bdd::{Bdd, NodeRef};

/// One environment-delivery image: quantify the consumer flags, then set
/// them. Pure current-variable substitution — no renaming needed.
fn env_image(bdd: &mut Bdd, step: &EnvStep, from: NodeRef) -> NodeRef {
    let mut a = bdd.exists_all(from, step.flags.iter().copied());
    for &f in &step.flags {
        let lit = bdd.var(f);
        a = bdd.and(a, lit);
    }
    a
}

/// One machine-reaction image with early quantification.
fn react_image(bdd: &mut Bdd, step: &ReactStep, from: NodeRef) -> NodeRef {
    let mut a = bdd.and(from, step.chi_fire);
    a = bdd.exists_all(a, step.q_tests.iter().copied());
    a = bdd.and(a, step.update);
    a = bdd.exists_all(a, step.q_acts.iter().copied());
    a = bdd.and(a, step.own_clear);
    a = bdd.exists_all(a, step.q_cur.iter().copied());
    bdd.rename(a, &step.rename)
}

/// Reclaims dead nodes and errors out if the live set still exceeds the
/// budget. `persistent` are the model's fixed roots (relation, init,
/// enabling conditions); `live` are the traversal's working roots.
fn enforce_budget(
    bdd: &mut Bdd,
    opts: &VerifyOptions,
    stats: &VerifyStats,
    persistent: &[NodeRef],
    live: &[NodeRef],
) -> Result<(), VerifyError> {
    if bdd.allocated_nodes() <= opts.node_budget {
        return Ok(());
    }
    let mut roots = persistent.to_vec();
    roots.extend_from_slice(live);
    bdd.gc(&roots);
    let allocated = bdd.allocated_nodes();
    if allocated > opts.node_budget {
        return Err(VerifyError::NodeBudgetExceeded {
            budget: opts.node_budget,
            allocated,
            image_steps: stats.image_steps,
        });
    }
    Ok(())
}

/// Runs the traversal to a fixpoint, filling `stats`, and returns the
/// reachable set over the model's current-state variables.
pub(crate) fn fixpoint(
    model: &mut NetworkModel,
    opts: &VerifyOptions,
    stats: &mut VerifyStats,
) -> Result<NodeRef, VerifyError> {
    // The partitioned relation never changes during traversal; snapshot
    // its roots once so every reclamation keeps the step BDDs alive.
    let persistent = model.persistent_roots();
    let mut reached = model.init;
    let mut frontier = model.init;
    while !frontier.is_false() {
        stats.iterations += 1;
        let mut new = NodeRef::FALSE;
        for step in &model.env_steps {
            let img = env_image(&mut model.bdd, step, frontier);
            new = model.bdd.or(new, img);
            stats.image_steps += 1;
            enforce_budget(
                &mut model.bdd,
                opts,
                stats,
                &persistent,
                &[reached, frontier, new],
            )?;
        }
        for step in &model.react_steps {
            let img = react_image(&mut model.bdd, step, frontier);
            new = model.bdd.or(new, img);
            stats.image_steps += 1;
            enforce_budget(
                &mut model.bdd,
                opts,
                stats,
                &persistent,
                &[reached, frontier, new],
            )?;
        }
        let unseen = model.bdd.not(reached);
        frontier = model.bdd.and(new, unseen);
        reached = model.bdd.or(reached, frontier);
        let fsize = model.bdd.size(&[frontier]) as u64;
        stats.frontier_sizes.push(fsize);
        stats.peak_frontier_nodes = stats.peak_frontier_nodes.max(fsize);
        enforce_budget(
            &mut model.bdd,
            opts,
            stats,
            &persistent,
            &[reached, frontier],
        )?;
    }
    stats.reached_nodes = model.bdd.size(&[reached]) as u64;
    stats.peak_live_nodes = model.bdd.stats().peak_live_nodes;
    stats.reached_states = count_states(model, reached);
    Ok(reached)
}

/// Number of distinct product states in `set`: the satisfying-assignment
/// count scaled down by the auxiliary (non-state) variables the set does
/// not depend on.
pub(crate) fn count_states(model: &NetworkModel, set: NodeRef) -> Option<u128> {
    let total = model.bdd.checked_sat_count(set)?;
    let aux = model.bdd.num_vars() - model.state_vars.len();
    if aux >= 128 {
        // More auxiliary variables than u128 bits: the scaled count is 0
        // or the total overflowed anyway; give up rather than mis-shift.
        return None;
    }
    Some(total >> aux)
}
