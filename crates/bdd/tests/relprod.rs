//! Property-style tests for the relational-product kernel: `and_exists`,
//! `exists_cube`/`forall_cube`, `constrain`, and `and_not` against their
//! defining identities, over deterministically seeded random function
//! pairs at several variable counts (offline-safe, no external
//! property-testing framework).

use polis_bdd::{Bdd, NodeRef, Var};
use polis_core::random::Rng;

const VAR_COUNTS: [usize; 3] = [4, 6, 9];
const CASES: u64 = 48;

/// A random function over `vars` as a depth-bounded operator tree.
fn gen_fn(rng: &mut Rng, bdd: &mut Bdd, vars: &[Var], depth: usize) -> NodeRef {
    if depth == 0 || rng.chance(0.2) {
        return if rng.chance(0.15) {
            bdd.constant(rng.bool())
        } else {
            let v = vars[rng.usize(0..vars.len())];
            if rng.bool() {
                bdd.var(v)
            } else {
                bdd.nvar(v)
            }
        };
    }
    let a = gen_fn(rng, bdd, vars, depth - 1);
    let b = gen_fn(rng, bdd, vars, depth - 1);
    match rng.usize(0..4) {
        0 => bdd.and(a, b),
        1 => bdd.or(a, b),
        2 => bdd.xor(a, b),
        _ => {
            let c = gen_fn(rng, bdd, vars, depth - 1);
            bdd.ite(a, b, c)
        }
    }
}

/// A random non-empty variable subset of `vars`.
fn gen_subset(rng: &mut Rng, vars: &[Var]) -> Vec<Var> {
    let mut out: Vec<Var> = vars.iter().copied().filter(|_| rng.bool()).collect();
    if out.is_empty() {
        out.push(vars[rng.usize(0..vars.len())]);
    }
    out
}

/// One seeded case: a manager, its variables, two random functions, and a
/// random quantification subset.
fn setup(nvars: usize, case: u64) -> (Bdd, Vec<Var>, NodeRef, NodeRef, Vec<Var>) {
    let mut rng = Rng::new(0x9e3779b97f4a7c15 ^ (nvars as u64) << 32 ^ case.wrapping_mul(0x9e37));
    let mut bdd = Bdd::new();
    let vars: Vec<Var> = (0..nvars).map(|i| bdd.new_var(format!("x{i}"))).collect();
    let depth = 2 + (case % 4) as usize;
    let f = gen_fn(&mut rng, &mut bdd, &vars, depth);
    let g = gen_fn(&mut rng, &mut bdd, &vars, depth);
    let subset = gen_subset(&mut rng, &vars);
    (bdd, vars, f, g, subset)
}

#[test]
fn cube_is_the_conjunction_of_its_literals() {
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, _, _, subset) = setup(nvars, case);
            let c = bdd.cube(subset.iter().copied());
            let lits: Vec<NodeRef> = subset.iter().map(|&v| bdd.var(v)).collect();
            let expect = bdd.and_all(lits);
            assert_eq!(c, expect, "nvars={nvars} case={case}");
            // Duplicates collapse.
            let doubled = bdd.cube(subset.iter().chain(subset.iter()).copied());
            assert_eq!(doubled, c, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn exists_cube_matches_per_variable_exists() {
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, f, _, subset) = setup(nvars, case);
            let c = bdd.cube(subset.iter().copied());
            let single = bdd.exists_cube(f, c);
            let folded = subset.iter().fold(f, |acc, &v| bdd.exists(acc, v));
            assert_eq!(single, folded, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn forall_cube_matches_per_variable_forall() {
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, f, _, subset) = setup(nvars, case);
            let c = bdd.cube(subset.iter().copied());
            let single = bdd.forall_cube(f, c);
            let folded = subset.iter().fold(f, |acc, &v| bdd.forall(acc, v));
            assert_eq!(single, folded, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn and_exists_equals_exists_cube_of_the_conjunction() {
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, f, g, subset) = setup(nvars, case);
            let c = bdd.cube(subset.iter().copied());
            let fused = bdd.and_exists(f, g, c);
            let conj = bdd.and(f, g);
            let expect = bdd.exists_cube(conj, c);
            assert_eq!(fused, expect, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn constrain_agrees_with_f_on_the_care_set() {
    // The defining property of the generalized cofactor:
    // constrain(f, c) ∧ c == f ∧ c (for satisfiable c).
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, f, c, _) = setup(nvars, case);
            if c.is_false() {
                assert!(bdd.constrain(f, c).is_false());
                continue;
            }
            let k = bdd.constrain(f, c);
            let lhs = bdd.and(k, c);
            let rhs = bdd.and(f, c);
            assert_eq!(lhs, rhs, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn constrain_over_a_positive_cube_is_the_cofactor() {
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, f, _, subset) = setup(nvars, case);
            let c = bdd.cube(subset.iter().copied());
            let k = bdd.constrain(f, c);
            let cof = subset.iter().fold(f, |acc, &v| bdd.restrict(acc, v, true));
            assert_eq!(k, cof, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn and_not_is_conjunction_with_negation() {
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, _, f, g, _) = setup(nvars, case);
            let direct = bdd.and_not(f, g);
            let ng = bdd.not(g);
            let expect = bdd.and(f, ng);
            assert_eq!(direct, expect, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn exists_cube_over_an_iterator_built_cube_matches_folded_exists() {
    // The migration target for the removed `exists_all(f, vars)` wrapper:
    // `exists_cube(f, cube(vars))` must behave identically, including on
    // duplicate-bearing iterators the wrapper used to accept.
    let (mut bdd, _, f, _, subset) = setup(6, 7);
    let c = bdd.cube(subset.iter().chain(subset.iter()).copied());
    let single = bdd.exists_cube(f, c);
    let folded = subset.iter().fold(f, |acc, &v| bdd.exists(acc, v));
    assert_eq!(single, folded);
}

/// Substitution oracle: `rename(f, pairs)` must equal
/// `∃ sources (f ∧ ⋀ (s ↔ t))` whenever sources are distinct and targets
/// are fresh — the textbook relational encoding of simultaneous renaming.
fn rename_oracle(bdd: &mut Bdd, f: NodeRef, pairs: &[(Var, Var)]) -> NodeRef {
    let mut conj = f;
    for &(s, t) in pairs {
        let vs = bdd.var(s);
        let vt = bdd.var(t);
        let x = bdd.xor(vs, vt);
        let eq = bdd.not(x);
        conj = bdd.and(conj, eq);
    }
    let c = bdd.cube(pairs.iter().map(|&(s, _)| s));
    bdd.exists_cube(conj, c)
}

#[test]
fn order_preserving_rename_matches_the_substitution_oracle() {
    // Targets declared after the sources in the same relative order, so
    // every call takes the shape-preserving `mk` rebuild.
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, vars, f, _, _) = setup(nvars, case);
            let targets: Vec<Var> = (0..nvars).map(|i| bdd.new_var(format!("y{i}"))).collect();
            let pairs: Vec<(Var, Var)> =
                vars.iter().copied().zip(targets.iter().copied()).collect();
            let renamed = bdd.rename(f, &pairs);
            let expect = rename_oracle(&mut bdd, f, &pairs);
            assert_eq!(renamed, expect, "nvars={nvars} case={case}");
            // A second call goes through the cross-call cache entries and
            // must agree with the first.
            assert_eq!(bdd.rename(f, &pairs), renamed, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn order_reversing_rename_matches_the_substitution_oracle() {
    // Targets assigned in reverse, breaking level monotonicity, so the
    // rebuild bails out to the general `ite`-based path.
    for &nvars in &VAR_COUNTS {
        for case in 0..CASES {
            let (mut bdd, vars, f, _, _) = setup(nvars, case);
            let targets: Vec<Var> = (0..nvars).map(|i| bdd.new_var(format!("y{i}"))).collect();
            let pairs: Vec<(Var, Var)> = vars
                .iter()
                .copied()
                .zip(targets.iter().rev().copied())
                .collect();
            let renamed = bdd.rename(f, &pairs);
            let expect = rename_oracle(&mut bdd, f, &pairs);
            assert_eq!(renamed, expect, "nvars={nvars} case={case}");
        }
    }
}

#[test]
fn kernel_counters_advance() {
    let (mut bdd, _, f, g, subset) = setup(6, 11);
    let before = bdd.stats();
    let c = bdd.cube(subset.iter().copied());
    let _ = bdd.and_exists(f, g, c);
    let _ = bdd.exists_cube(f, c);
    let after = bdd.stats();
    assert!(after.cube_quant_calls > before.cube_quant_calls);
    // and_exists on non-trivial operands must at least probe its cache.
    if !f.is_terminal() && !g.is_terminal() && f != g {
        assert!(after.andex_lookups > before.andex_lookups);
    }
    let merged = before.merged(&after);
    assert_eq!(
        merged.cube_quant_calls,
        before.cube_quant_calls + after.cube_quant_calls
    );
}
