/root/repo/target/debug/deps/polis_vm-f2008f2a6e4c3fc5.d: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/debug/deps/libpolis_vm-f2008f2a6e4c3fc5.rmeta: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

crates/vm/src/lib.rs:
crates/vm/src/analyze.rs:
crates/vm/src/compile.rs:
crates/vm/src/exec.rs:
crates/vm/src/inst.rs:
crates/vm/src/profile.rs:
