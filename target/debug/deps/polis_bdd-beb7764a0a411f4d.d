/root/repo/target/debug/deps/polis_bdd-beb7764a0a411f4d.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libpolis_bdd-beb7764a0a411f4d.rlib: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libpolis_bdd-beb7764a0a411f4d.rmeta: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
