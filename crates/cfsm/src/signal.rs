//! Event signals and the naming conventions that tie the model to the
//! generated C code.

use polis_expr::Type;
use std::fmt;

/// An event signal: pure (presence only) or valued (presence plus a value
/// from a finite domain).
///
/// The paper's examples: "a temperature sample" is a valued event, "an
/// excessive pressure alarm" is a pure event (Section II-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    name: String,
    ty: Option<Type>,
}

impl Signal {
    /// A pure (value-less) event signal.
    pub fn pure(name: impl Into<String>) -> Signal {
        Signal {
            name: name.into(),
            ty: None,
        }
    }

    /// A valued event signal carrying values of type `ty`.
    pub fn valued(name: impl Into<String>, ty: Type) -> Signal {
        Signal {
            name: name.into(),
            ty: Some(ty),
        }
    }

    /// The signal's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value type, or `None` for pure signals.
    pub fn value_type(&self) -> Option<Type> {
        self.ty
    }

    /// `true` if the signal carries a value.
    pub fn is_valued(&self) -> bool {
        self.ty.is_some()
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Some(ty) => write!(f, "{}: {}", self.name, ty),
            None => write!(f, "{}", self.name),
        }
    }
}

/// The expression-level variable holding the value of valued signal `sig`
/// (the paper writes `?c`; generated C declares `c_value`).
pub fn value_var_name(sig: &str) -> String {
    format!("{sig}_value")
}

/// The boolean s-graph variable indicating `sig` is present in the current
/// input snapshot (the paper's `present_c`).
pub fn present_flag_name(sig: &str) -> String {
    format!("present_{sig}")
}

/// The boolean s-graph variable indicating `sig` is being emitted in the
/// current reaction (the paper's `emit_y`).
pub fn emit_flag_name(sig: &str) -> String {
    format!("emit_{sig}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_kinds() {
        let p = Signal::pure("alarm");
        assert!(!p.is_valued());
        assert_eq!(p.value_type(), None);
        assert_eq!(p.to_string(), "alarm");

        let v = Signal::valued("temp", Type::uint(8));
        assert!(v.is_valued());
        assert_eq!(v.value_type(), Some(Type::uint(8)));
        assert_eq!(v.to_string(), "temp: u8");
    }

    #[test]
    fn naming_conventions_match_paper() {
        assert_eq!(present_flag_name("c"), "present_c");
        assert_eq!(emit_flag_name("y"), "emit_y");
        assert_eq!(value_var_name("c"), "c_value");
    }
}
