/root/repo/target/release/deps/polis_bench-b31ac97aa6647ed8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpolis_bench-b31ac97aa6647ed8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpolis_bench-b31ac97aa6647ed8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
