//! Typed ASTs for user-specified safety/reachability properties.
//!
//! A specification may end with one or more `properties` blocks:
//!
//! ```text
//! properties {
//!     assert never   belt_control@alarm && belt_control.belt_on;
//!     assert reachable belt_control@alarm;
//! }
//! ```
//!
//! Atoms range over the verifier's product-state variables: `m@s` holds
//! when machine `m` is in control state `s`, and `m.sig` holds when the
//! event `sig` is pending in `m`'s one-place input buffer (the buffer's
//! fill bit — event presence and buffer content coincide in the
//! single-place lossy-buffer semantics of Section II-D). Atoms compose
//! with `!`, `&&`, `||`, and parentheses.
//!
//! The parser resolves every name against the elaborated
//! [`polis_cfsm::Network`] and stores machine/state/input *indices* plus
//! the original source [`Span`] of each atom, so downstream layers (the
//! symbolic checker, diagnostics) never re-resolve strings.

use polis_cfsm::Network;
use std::fmt::Write as _;

/// A 1-based source position attached to every atom and property, for
/// diagnostics ("3:14: module `m` has no state `s`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// What a property asserts about the reachable set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropKind {
    /// `assert never e`: no reachable state satisfies `e`.
    Never,
    /// `assert reachable e`: some reachable state satisfies `e`.
    Reachable,
}

/// A resolved boolean formula over product-state atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropExpr {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Machine `machine` is in control state `state` (`m@s`).
    AtState {
        /// Network machine index.
        machine: usize,
        /// State index within the machine.
        state: usize,
        /// Source position of the atom.
        span: Span,
    },
    /// Event `input` is pending in `machine`'s buffer (`m.sig`).
    Pending {
        /// Network machine index.
        machine: usize,
        /// Input-signal index within the machine.
        input: usize,
        /// Source position of the atom.
        span: Span,
    },
    /// Negation.
    Not(Box<PropExpr>),
    /// Conjunction.
    And(Box<PropExpr>, Box<PropExpr>),
    /// Disjunction.
    Or(Box<PropExpr>, Box<PropExpr>),
}

impl PropExpr {
    /// Evaluates the formula against an explicit product state: `ctrl[i]`
    /// is machine `i`'s control-state index and `pending[i][k]` the fill
    /// bit of its `k`-th input buffer. This is the concrete mirror of the
    /// symbolic compilation in `polis-verify` and the oracle the
    /// trace-replay conformance tests evaluate final states with.
    pub fn eval(&self, ctrl: &[usize], pending: &[Vec<bool>]) -> bool {
        match self {
            PropExpr::True => true,
            PropExpr::False => false,
            PropExpr::AtState { machine, state, .. } => ctrl[*machine] == *state,
            PropExpr::Pending { machine, input, .. } => pending[*machine][*input],
            PropExpr::Not(e) => !e.eval(ctrl, pending),
            PropExpr::And(a, b) => a.eval(ctrl, pending) && b.eval(ctrl, pending),
            PropExpr::Or(a, b) => a.eval(ctrl, pending) || b.eval(ctrl, pending),
        }
    }

    /// Renders the formula back in source syntax (names looked up in
    /// `net`); the printer's inverse of the property parser.
    pub fn render(&self, net: &Network) -> String {
        match self {
            PropExpr::True => "true".to_owned(),
            PropExpr::False => "false".to_owned(),
            PropExpr::AtState { machine, state, .. } => {
                let m = &net.cfsms()[*machine];
                format!("{}@{}", m.name(), m.states()[*state])
            }
            PropExpr::Pending { machine, input, .. } => {
                let m = &net.cfsms()[*machine];
                format!("{}.{}", m.name(), m.inputs()[*input].name())
            }
            PropExpr::Not(e) => format!("!{}", e.render_atom(net)),
            PropExpr::And(a, b) => format!("({} && {})", a.render(net), b.render(net)),
            PropExpr::Or(a, b) => format!("({} || {})", a.render(net), b.render(net)),
        }
    }

    fn render_atom(&self, net: &Network) -> String {
        match self {
            PropExpr::And(..) | PropExpr::Or(..) => format!("({})", self.render(net)),
            _ => self.render(net),
        }
    }
}

/// One `assert` line of a `properties` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// `never` or `reachable`.
    pub kind: PropKind,
    /// The resolved formula.
    pub expr: PropExpr,
    /// Source position of the `assert` keyword.
    pub span: Span,
}

impl Property {
    /// `assert never <expr>` / `assert reachable <expr>` in source
    /// syntax, without the trailing semicolon.
    pub fn render(&self, net: &Network) -> String {
        let kind = match self.kind {
            PropKind::Never => "never",
            PropKind::Reachable => "reachable",
        };
        format!("assert {} {}", kind, self.expr.render(net))
    }
}

/// A parsed specification: the machine network plus its property suite
/// (empty when the source has no `properties` block).
#[derive(Debug)]
pub struct Spec {
    /// The elaborated machine network.
    pub network: Network,
    /// The resolved properties, in source order.
    pub properties: Vec<Property>,
}

/// Renders a property suite as a `properties { ... }` block, or the
/// empty string for an empty suite.
pub fn emit_properties_source(net: &Network, props: &[Property]) -> String {
    if props.is_empty() {
        return String::new();
    }
    let mut out = String::from("properties {\n");
    for p in props {
        let _ = writeln!(out, "    {};", p.render(net));
    }
    out.push_str("}\n");
    out
}

/// Renders a whole specification: every module, then the property block.
pub fn emit_spec_source(net: &Network, props: &[Property]) -> String {
    let mut out = crate::emit_network_source(net);
    if !props.is_empty() {
        out.push('\n');
        out.push_str(&emit_properties_source(net, props));
    }
    out
}
