//! Round-trip property: pretty-printing any workload or random machine and
//! re-parsing it yields a behaviourally identical CFSM.

use polis_cfsm::{value_var_name, Cfsm};
use polis_core::random::{random_cfsm, RandomSpec};
use polis_core::workloads;
use polis_expr::{MapEnv, Value};
use polis_lang::{emit_source, parse_module};
use std::collections::BTreeSet;

/// Drives both machines through a pseudo-random stimulus and compares
/// firing, emissions (as multisets), and full next states.
fn assert_behaviourally_equal(a: &Cfsm, b: &Cfsm, seed: u64) {
    assert_eq!(a.inputs().len(), b.inputs().len());
    assert_eq!(a.states().len(), b.states().len());
    assert_eq!(a.num_transitions(), b.num_transitions());

    let mut st_a = a.initial_state();
    let mut st_b = b.initial_state();
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for step in 0..32 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let mut present = BTreeSet::new();
        let mut vals = MapEnv::new();
        for (i, sig) in a.inputs().iter().enumerate() {
            if (x >> i) & 1 == 1 {
                present.insert(sig.name().to_owned());
            }
            if let Some(ty) = sig.value_type() {
                let v = Value::Int((x >> (8 + i * 5)) as i64 & 0xff).coerce(ty);
                vals.set(value_var_name(sig.name()), v);
            }
        }
        let ra = a.react(&present, &vals, &st_a).unwrap();
        let rb = b.react(&present, &vals, &st_b).unwrap();
        assert_eq!(ra.fired, rb.fired, "step {step}");
        assert_eq!(ra.next.ctrl, rb.next.ctrl, "step {step}");
        assert_eq!(ra.next.data, rb.next.data, "step {step}");
        let mut ea: Vec<_> = ra.emissions.iter().map(|e| (&e.signal, e.value)).collect();
        let mut eb: Vec<_> = rb.emissions.iter().map(|e| (&e.signal, e.value)).collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb, "step {step}");
        st_a = ra.next;
        st_b = rb.next;
    }
}

#[test]
fn workload_machines_roundtrip() {
    for net in [
        workloads::dashboard(),
        workloads::shock_absorber(),
        workloads::seat_belt(),
    ] {
        for m in net.cfsms() {
            let src = emit_source(m);
            let m2 = parse_module(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", m.name()));
            assert_behaviourally_equal(m, &m2, 0xfeed);
        }
    }
}

#[test]
fn random_machines_roundtrip() {
    // 48 deterministic seeds spread over the old proptest range.
    for case in 0..48u64 {
        let seed = case.wrapping_mul(193) % 10_000;
        let spec = RandomSpec::default();
        let m = random_cfsm("rnd", &spec, seed);
        let src = emit_source(&m);
        let m2 = parse_module(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        assert_behaviourally_equal(&m, &m2, seed);
    }
}
