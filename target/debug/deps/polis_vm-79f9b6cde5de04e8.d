/root/repo/target/debug/deps/polis_vm-79f9b6cde5de04e8.d: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/debug/deps/polis_vm-79f9b6cde5de04e8: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

crates/vm/src/lib.rs:
crates/vm/src/analyze.rs:
crates/vm/src/compile.rs:
crates/vm/src/exec.rs:
crates/vm/src/inst.rs:
crates/vm/src/profile.rs:
