/root/repo/target/release/deps/polis_lang-280a237b7afd60f1.d: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/release/deps/libpolis_lang-280a237b7afd60f1.rlib: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/release/deps/libpolis_lang-280a237b7afd60f1.rmeta: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

crates/lang/src/lib.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
