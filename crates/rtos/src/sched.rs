//! Classical real-time schedulability analysis (the paper's Step 4).
//!
//! "Step 4 uses the software performance estimation package and classical
//! real-time scheduling algorithms [24], [18] to schedule the CFSMs while
//! meeting the given timing constraints" — reference [24] being Liu &
//! Layland's rate-monotonic theory. This module provides:
//!
//! * the **Liu–Layland utilization bound** `U ≤ n(2^{1/n} − 1)`, the quick
//!   sufficient test;
//! * **exact response-time analysis** (RTA) for fixed-priority preemptive
//!   scheduling, the necessary-and-sufficient test for the
//!   deadline ≤ period case;
//!
//! fed by the per-CFSM worst-case cycle counts the estimator or the
//! object-code analyzer produces ("our synthesis procedure ... provides
//! execution time estimates that can be used ... to devise a scheduling
//! policy that is guaranteed to meet the timing constraints").

/// One software CFSM as a periodic task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskModel {
    /// Diagnostic name.
    pub name: String,
    /// Worst-case execution cycles per reaction, including RTOS dispatch.
    pub wcet: u64,
    /// Minimum inter-arrival of triggering events, in cycles.
    pub period: u64,
    /// Relative deadline in cycles (≤ period for the analysis to be
    /// exact); defaults to the period.
    pub deadline: u64,
}

impl TaskModel {
    /// A task with deadline equal to its period.
    pub fn new(name: impl Into<String>, wcet: u64, period: u64) -> TaskModel {
        TaskModel {
            name: name.into(),
            wcet,
            period,
            deadline: period,
        }
    }
}

/// The verdicts of the schedulability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedAnalysis {
    /// Total processor utilization `Σ C_i / T_i`.
    pub utilization: f64,
    /// The Liu–Layland bound `n(2^{1/n} − 1)` for this task count.
    pub ll_bound: f64,
    /// `true` when the quick utilization test already guarantees
    /// schedulability.
    pub passes_utilization_test: bool,
    /// Worst-case response time per task under rate-monotonic priorities
    /// (`None` when the recurrence diverges past the deadline).
    pub response_times: Vec<Option<u64>>,
    /// `true` when every task's response time meets its deadline (exact
    /// for deadlines ≤ periods).
    pub schedulable: bool,
}

/// Runs rate-monotonic analysis: priorities by ascending period, exact
/// response-time recurrence `R = C_i + Σ_{j∈hp} ⌈R / T_j⌉ C_j`.
///
/// Assumes fully preemptive dispatching; the POLIS-generated RTOS executes
/// reactions atomically, so use [`rate_monotonic_nonpreemptive`] to account
/// for the blocking a long lower-priority reaction imposes.
///
/// Response times are reported in the *input* task order.
///
/// # Panics
///
/// Panics if a task has a zero period (no event rate) — constrain the
/// environment model first.
pub fn rate_monotonic(tasks: &[TaskModel]) -> SchedAnalysis {
    analyse(tasks, false)
}

/// Rate-monotonic analysis with the non-preemptive blocking term
/// `B_i = max_{j ∈ lp(i)} C_j` added to each recurrence — the correct
/// model for the generated RTOS, whose reactions run to completion.
///
/// # Panics
///
/// Panics if a task has a zero period.
pub fn rate_monotonic_nonpreemptive(tasks: &[TaskModel]) -> SchedAnalysis {
    analyse(tasks, true)
}

fn analyse(tasks: &[TaskModel], blocking: bool) -> SchedAnalysis {
    assert!(
        tasks.iter().all(|t| t.period > 0),
        "every task needs a positive period"
    );
    let n = tasks.len();
    let utilization: f64 = tasks.iter().map(|t| t.wcet as f64 / t.period as f64).sum();
    let ll_bound = if n == 0 {
        1.0
    } else {
        n as f64 * ((2f64).powf(1.0 / n as f64) - 1.0)
    };
    let passes_utilization_test = n > 0 && utilization <= ll_bound;

    // Rate-monotonic priority order: shortest period first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (tasks[i].period, i));

    let mut response_times = vec![None; n];
    let mut schedulable = n > 0;
    for (rank, &i) in order.iter().enumerate() {
        let t = &tasks[i];
        let higher = &order[..rank];
        let block: u64 = if blocking {
            order[rank + 1..]
                .iter()
                .map(|&j| tasks[j].wcet)
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        let mut r = t.wcet + block;
        let rt = loop {
            let interference: u64 = higher
                .iter()
                .map(|&j| {
                    let hj = &tasks[j];
                    r.div_ceil(hj.period) * hj.wcet
                })
                .sum();
            let next = t.wcet + block + interference;
            if next == r {
                break Some(r);
            }
            if next > t.deadline {
                break None; // diverged past the deadline
            }
            r = next;
        };
        match rt {
            Some(r) if r <= t.deadline => response_times[i] = Some(r),
            other => {
                response_times[i] = other;
                schedulable = false;
            }
        }
    }
    SchedAnalysis {
        utilization,
        ll_bound,
        passes_utilization_test,
        response_times,
        schedulable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, c: u64, p: u64) -> TaskModel {
        TaskModel::new(name, c, p)
    }

    #[test]
    fn liu_layland_bound_values() {
        let a = rate_monotonic(&[t("a", 1, 10)]);
        assert!((a.ll_bound - 1.0).abs() < 1e-9, "n=1 bound is 1.0");
        let b = rate_monotonic(&[t("a", 1, 10), t("b", 1, 20)]);
        assert!((b.ll_bound - 0.8284).abs() < 1e-3, "n=2 bound ≈ 0.828");
    }

    #[test]
    fn classic_schedulable_set() {
        // C=(1,1,1), T=(4,6,10): U ≈ 0.517, trivially schedulable.
        let a = rate_monotonic(&[t("a", 1, 4), t("b", 1, 6), t("c", 1, 10)]);
        assert!(a.passes_utilization_test);
        assert!(a.schedulable);
        assert_eq!(a.response_times, vec![Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn rta_succeeds_beyond_the_utilization_bound() {
        // The classic example where U > LL bound but RTA proves
        // schedulability: C=(1,2,3), T=(3,6,12) — U = 1/3+1/3+1/4 ≈ 0.917.
        let a = rate_monotonic(&[t("a", 1, 3), t("b", 2, 6), t("c", 3, 12)]);
        assert!(!a.passes_utilization_test);
        assert!(a.schedulable, "{a:?}");
        // Response times: a=1; b=1+2=3... R_b: 2 + ceil(R/3)*1: R=3 -> 2+1=3 ✓
        assert_eq!(a.response_times[0], Some(1));
        assert_eq!(a.response_times[1], Some(3));
        // c: 3 + ceil(R/3)*1 + ceil(R/6)*2 -> converges ≤ 12.
        assert!(a.response_times[2].unwrap() <= 12);
    }

    #[test]
    fn overutilized_set_is_unschedulable() {
        let a = rate_monotonic(&[t("a", 3, 4), t("b", 3, 5)]);
        assert!(a.utilization > 1.0);
        assert!(!a.schedulable);
        assert_eq!(a.response_times[1], None, "low-priority task diverges");
        // The highest-priority task still has a response time.
        assert_eq!(a.response_times[0], Some(3));
    }

    #[test]
    fn deadline_shorter_than_period_is_respected() {
        let mut task = t("a", 5, 100);
        task.deadline = 4;
        let a = rate_monotonic(&[task]);
        assert!(!a.schedulable, "WCET 5 cannot meet deadline 4");
    }

    #[test]
    fn empty_set() {
        let a = rate_monotonic(&[]);
        assert!(!a.schedulable);
        assert_eq!(a.utilization, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_panics() {
        let _ = rate_monotonic(&[t("a", 1, 0)]);
    }

    #[test]
    fn blocking_term_tightens_the_verdict() {
        // A long low-priority reaction blocks the urgent task past its
        // deadline under non-preemptive dispatching.
        let mut urgent = t("u", 2, 10);
        urgent.deadline = 5;
        let long = t("l", 6, 1_000);
        let pre = rate_monotonic(&[urgent.clone(), long.clone()]);
        assert!(pre.schedulable, "preemptive analysis passes");
        let non = rate_monotonic_nonpreemptive(&[urgent, long]);
        assert!(!non.schedulable, "2 + blocking 6 > deadline 5");
    }

    #[test]
    fn utilization_one_with_harmonic_periods_is_schedulable() {
        // Harmonic task sets achieve full utilization under RM.
        let a = rate_monotonic(&[t("a", 1, 2), t("b", 2, 4)]);
        assert!((a.utilization - 1.0).abs() < 1e-9);
        assert!(!a.passes_utilization_test, "beyond the LL bound");
        assert!(a.schedulable, "but exact RTA proves it");
    }
}
