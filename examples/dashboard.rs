//! The dashboard controller (Section V-A): synthesize all eight CFSMs,
//! print the per-module cost table, verify the network symbolically
//! (reachability, lost events, dead transitions, deadlock), and
//! co-simulate the whole network through its generated RTOS against a
//! sensor stimulus.
//!
//! Run with `cargo run --example dashboard`.

use polis::core::{synthesize_network, workloads, SynthesisOptions};
use polis::rtos::{RtosConfig, Simulator, Stimulus};
use polis::verify::{verify_network, VerifyOptions};

fn main() {
    let net = workloads::dashboard();
    println!(
        "dashboard network: {} CFSMs, primary inputs {:?}",
        net.cfsms().len(),
        net.primary_inputs()
    );

    // Synthesize everything on the 68HC11-like target.
    let result = synthesize_network(&net, &SynthesisOptions::default(), &RtosConfig::default());
    println!(
        "\n{:<12} {:>8} {:>8} {:>10} {:>10}",
        "module", "ROM[B]", "RAM[B]", "min[cyc]", "max[cyc]"
    );
    for (m, r) in net.cfsms().iter().zip(&result.machines) {
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>10}",
            m.name(),
            r.measured.size_bytes,
            r.measured.ram_bytes,
            r.measured.min_cycles,
            r.measured.max_cycles
        );
    }
    println!(
        "total ROM {} B (incl. RTOS), total RAM {} B, synthesis {:?}",
        result.total_rom, result.total_ram, result.synthesis_time
    );

    // Symbolic reachability over the full CFSM product: which one-place
    // buffers can overwrite, which transitions can never fire, whether a
    // pending event can get stuck.
    let report = verify_network(&net, &VerifyOptions::default()).unwrap();
    println!("\n--- symbolic verification ---");
    println!("{}", report.render());

    // Drive the sensor chain: a burst of wheel/engine pulses, a timebase
    // window tick, and a fuel sample.
    let mut stim = Vec::new();
    for i in 0..20u64 {
        stim.push(Stimulus::pure(i * 1_500, "wheel_pulse"));
    }
    for i in 0..30u64 {
        stim.push(Stimulus::pure(700 + i * 1_000, "eng_pulse"));
    }
    stim.push(Stimulus::pure(120_000, "timebase"));
    stim.push(Stimulus::valued(140_000, "fuel_sample", 40));

    let mut sim = Simulator::build(&net, RtosConfig::default());
    sim.run(&stim);

    println!("\n--- co-simulation trace (gauge outputs) ---");
    for t in sim.trace() {
        if matches!(
            t.signal.as_str(),
            "speed" | "rpm" | "duty_speed" | "duty_fuel" | "fuel_level" | "odo_pulse" | "low_fuel"
        ) {
            match t.value {
                Some(v) => println!(
                    "t={:>8}  {:<12} = {:>4}  (by {})",
                    t.time, t.signal, v, t.by
                ),
                None => println!("t={:>8}  {:<12}         (by {})", t.time, t.signal, t.by),
            }
        }
    }
    let stats = sim.stats();
    println!(
        "\n{} cycles total, {} in RTOS services; reactions per task: {:?}",
        stats.total_cycles, stats.rtos_cycles, stats.reactions
    );
}
