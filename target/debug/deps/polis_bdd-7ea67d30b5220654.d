/root/repo/target/debug/deps/polis_bdd-7ea67d30b5220654.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/polis_bdd-7ea67d30b5220654: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
