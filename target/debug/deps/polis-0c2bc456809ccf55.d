/root/repo/target/debug/deps/polis-0c2bc456809ccf55.d: src/bin/polis.rs

/root/repo/target/debug/deps/polis-0c2bc456809ccf55: src/bin/polis.rs

src/bin/polis.rs:
