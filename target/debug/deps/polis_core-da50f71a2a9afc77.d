/root/repo/target/debug/deps/polis_core-da50f71a2a9afc77.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

/root/repo/target/debug/deps/libpolis_core-da50f71a2a9afc77.rlib: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

/root/repo/target/debug/deps/libpolis_core-da50f71a2a9afc77.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/random.rs:
crates/core/src/trace.rs:
crates/core/src/workloads.rs:
