//! Symbolic-verification benchmark: runs the reachability engine over
//! the seed example networks and synthetic relay chains of growing
//! width, and writes `BENCH_verify.json` in the same two-section
//! baseline/current format as `BENCH_bdd_kernel.json`.
//!
//! ```text
//! cargo run --release -p polis-bench --bin verify [-- --smoke] [--check] [--gate FILE] [--out FILE]
//! ```
//!
//! `--smoke` shrinks the synthetic chains so the bench finishes in well
//! under a second (the CI gate). `--check` asserts sanity thresholds —
//! every case reaches its fixpoint, counts a non-trivial reachable set,
//! stays inside the default node budget, and records the
//! relational-product kernel counters — and exits non-zero on violation.
//! `--gate FILE` additionally compares this run against the committed
//! `BENCH_verify.json`: for every case present in both, the verdict
//! fields (`reached_states`, `lost_possible`, `dead_transitions`,
//! `deadlock`) must match exactly and `peak_live_nodes` must not regress
//! by more than 5%.

use polis_cfsm::Network;
use polis_core::random::{random_network, RandomSpec};
use polis_core::trace::escape_json;
use polis_core::workloads;
use polis_lang::parse_properties;
use polis_verify::{verify_with_props, PropReport, Verifier, VerifyOptions, VerifyReport};
use std::time::Instant;

/// One measured verification case.
struct CaseResult {
    name: String,
    wall_ms: f64,
    report: VerifyReport,
    /// Property-suite pass (workload cases only; the relay chains ship
    /// no suite and report zero columns).
    prop: Option<PropReport>,
}

impl CaseResult {
    fn lost_possible(&self) -> usize {
        self.report
            .lost_events
            .iter()
            .filter(|e| e.possible)
            .count()
    }

    fn to_json(&self) -> String {
        let s = &self.report.stats;
        format!(
            "{{\n      \"name\": \"{}\",\n      \"wall_ms\": {:.3},\n      \
             \"machines\": {},\n      \"buffers\": {},\n      \
             \"iterations\": {},\n      \"image_steps\": {},\n      \
             \"reached_states\": {},\n      \"reached_nodes\": {},\n      \
             \"peak_frontier_nodes\": {},\n      \"peak_live_nodes\": {},\n      \
             \"lost_possible\": {},\n      \"dead_transitions\": {},\n      \
             \"deadlock\": {},\n      \
             \"andex_lookups\": {},\n      \"andex_hits\": {},\n      \
             \"cube_quant_calls\": {},\n      \"constrain_reduced_nodes\": {},\n      \
             \"mid_reach_reorders\": {},\n      \"mid_reach_collections\": {},\n      \
             \"props_checked\": {},\n      \"prop_violations\": {},\n      \
             \"prop_wall_ms\": {:.3},\n      \"max_trace_len\": {},\n      \
             \"preimage_nodes\": {}\n    }}",
            escape_json(&self.name),
            self.wall_ms,
            self.report.machines,
            self.report.buffers,
            s.iterations,
            s.image_steps,
            s.reached_states
                .map_or("null".to_owned(), |n| n.to_string()),
            s.reached_nodes,
            s.peak_frontier_nodes,
            s.peak_live_nodes,
            self.lost_possible(),
            self.report.dead_transitions.len(),
            self.report.deadlock.is_some(),
            s.andex_lookups,
            s.andex_hits,
            s.cube_quant_calls,
            s.constrain_reduced_nodes,
            s.mid_reach_reorders,
            s.mid_reach_collections,
            self.prop.as_ref().map_or(0, |p| p.checked),
            self.prop.as_ref().map_or(0, |p| p.violations),
            self.prop
                .as_ref()
                .map_or(0.0, |p| p.wall.as_secs_f64() * 1e3),
            self.prop.as_ref().map_or(0, |p| p.max_trace_len),
            self.prop.as_ref().map_or(0, |p| p.preimage_nodes),
        )
    }
}

/// One pinned pre-kernel measurement.
struct Baseline {
    name: &'static str,
    wall_ms: f64,
    iterations: u64,
    image_steps: u64,
    reached_states: u128,
    peak_live_nodes: u64,
    lost_possible: usize,
    dead_transitions: usize,
    deadlock: bool,
}

const BASELINE_COMMIT: &str = "24c7d1e";

/// `peak_live_nodes` recorded for the large relay chains by the PR5
/// kernel (commit `5a9477d`: plain edges, 12-byte AoS nodes, no
/// garbage-pressure collection). The complement-edge kernel plus the
/// mid-reach collector must hold at least a 30% reduction on both.
const COMPLEMENT_PEAK_CEILING: &[(&str, u64)] =
    &[("relay_chain_12", 451_307), ("relay_chain_16", 1_445_044)];

/// The pre-relational-product numbers for the full-size cases, measured
/// at commit `24c7d1e` with this same harness (per-variable existential
/// quantification loops — since replaced by `exists_cube` over precomputed
/// cubes — flag-at-a-time environment conjunction, raw `new ∧ ¬reached`
/// frontier, no mid-reach reordering). Wall times are from the same
/// container the current numbers are recorded on. `relay_chain_16` has
/// no row: the old traversal blew through the 2^22 node budget before
/// reaching its fixpoint.
const BASELINE: &[Baseline] = &[
    Baseline {
        name: "seatbelt",
        wall_ms: 0.386,
        iterations: 9,
        image_steps: 45,
        reached_states: 48,
        peak_live_nodes: 908,
        lost_possible: 4,
        dead_transitions: 0,
        deadlock: false,
    },
    Baseline {
        name: "shock_absorber",
        wall_ms: 6.514,
        iterations: 22,
        image_steps: 242,
        reached_states: 6144,
        peak_live_nodes: 22928,
        lost_possible: 10,
        dead_transitions: 0,
        deadlock: false,
    },
    Baseline {
        name: "dashboard",
        wall_ms: 8.533,
        iterations: 19,
        image_steps: 228,
        reached_states: 4096,
        peak_live_nodes: 24384,
        lost_possible: 10,
        dead_transitions: 0,
        deadlock: false,
    },
    Baseline {
        name: "relay_chain_4",
        wall_ms: 2.78,
        iterations: 21,
        image_steps: 168,
        reached_states: 2048,
        peak_live_nodes: 11202,
        lost_possible: 7,
        dead_transitions: 0,
        deadlock: false,
    },
    Baseline {
        name: "relay_chain_8",
        wall_ms: 93.411,
        iterations: 61,
        image_steps: 976,
        reached_states: 8388608,
        peak_live_nodes: 221217,
        lost_possible: 15,
        dead_transitions: 0,
        deadlock: false,
    },
    Baseline {
        name: "relay_chain_12",
        wall_ms: 874.913,
        iterations: 125,
        image_steps: 3000,
        reached_states: 34359738368,
        peak_live_nodes: 1347786,
        lost_possible: 23,
        dead_transitions: 0,
        deadlock: false,
    },
];

fn run_case(name: &str, net: &Network) -> CaseResult {
    let start = Instant::now();
    let mut v = Verifier::run(net, &VerifyOptions::default())
        .unwrap_or_else(|e| panic!("{name}: verification failed: {e}"));
    let report = v.report();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    // The property pass is a separate run with ring storage on, so the
    // measurement above keeps the exact PR6 memory/timing profile.
    let suite = workloads::property_suite(net.name());
    let prop = (!suite.is_empty()).then(|| {
        let props = parse_properties(net, suite)
            .unwrap_or_else(|e| panic!("{name}: bad property suite: {e}"));
        let (_, pr) = verify_with_props(net, &props, &VerifyOptions::default())
            .unwrap_or_else(|e| panic!("{name}: property pass failed: {e}"));
        pr
    });
    CaseResult {
        name: name.to_owned(),
        wall_ms,
        report,
        prop,
    }
}

/// The committed per-case fields the CI gate compares against.
struct GateCase {
    name: String,
    reached_states: Option<u128>,
    peak_live_nodes: u64,
    lost_possible: u64,
    dead_transitions: u64,
    deadlock: bool,
}

/// `"key": value` → `value` (trailing comma stripped), or `None` if the
/// trimmed line is not that field.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.strip_prefix('"')?
        .strip_prefix(key)?
        .strip_prefix("\": ")
        .map(|v| v.trim_end_matches(','))
}

/// Line-based extraction of the `"current"` section of a committed
/// `BENCH_verify.json` (the workspace deliberately has no JSON parser;
/// the bench emits this exact shape itself).
fn parse_gate_file(text: &str) -> Vec<GateCase> {
    let mut cases: Vec<GateCase> = Vec::new();
    let mut in_current = false;
    for raw in text.lines() {
        let t = raw.trim();
        if t.starts_with("\"current\"") {
            in_current = true;
            continue;
        }
        if !in_current {
            continue;
        }
        if t.starts_with(']') {
            break;
        }
        if let Some(v) = field(t, "name") {
            cases.push(GateCase {
                name: v.trim_matches('"').to_owned(),
                reached_states: None,
                peak_live_nodes: 0,
                lost_possible: 0,
                dead_transitions: 0,
                deadlock: false,
            });
        } else if let Some(c) = cases.last_mut() {
            if let Some(v) = field(t, "reached_states") {
                c.reached_states = v.parse::<u128>().ok();
            } else if let Some(v) = field(t, "peak_live_nodes") {
                c.peak_live_nodes = v.parse().unwrap_or(0);
            } else if let Some(v) = field(t, "lost_possible") {
                c.lost_possible = v.parse().unwrap_or(0);
            } else if let Some(v) = field(t, "dead_transitions") {
                c.dead_transitions = v.parse().unwrap_or(0);
            } else if let Some(v) = field(t, "deadlock") {
                c.deadlock = v == "true";
            }
        }
    }
    cases
}

/// Deterministic regression gate: every case of this run that is also in
/// the committed file must agree exactly on the verdict fields, and may
/// not regress `peak_live_nodes` by more than 10%.
fn gate_failures(results: &[CaseResult], committed: &[GateCase]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for r in results {
        let Some(c) = committed.iter().find(|c| c.name == r.name) else {
            continue;
        };
        matched += 1;
        let s = &r.report.stats;
        if s.reached_states != c.reached_states {
            failures.push(format!(
                "{}: reached_states {:?} differs from committed {:?}",
                r.name, s.reached_states, c.reached_states
            ));
        }
        if r.lost_possible() as u64 != c.lost_possible {
            failures.push(format!(
                "{}: lost_possible {} differs from committed {}",
                r.name,
                r.lost_possible(),
                c.lost_possible
            ));
        }
        if r.report.dead_transitions.len() as u64 != c.dead_transitions {
            failures.push(format!(
                "{}: dead_transitions {} differs from committed {}",
                r.name,
                r.report.dead_transitions.len(),
                c.dead_transitions
            ));
        }
        if r.report.deadlock.is_some() != c.deadlock {
            failures.push(format!(
                "{}: deadlock {} differs from committed {}",
                r.name,
                r.report.deadlock.is_some(),
                c.deadlock
            ));
        }
        // 5% headroom: peaks are deterministic for a given kernel, so
        // this only trips when a code change genuinely inflates memory.
        // (Tightened from 10% with the complement-edge kernel: the
        // garbage-pressure collector makes peaks far more stable.)
        if s.peak_live_nodes * 20 > c.peak_live_nodes * 21 {
            failures.push(format!(
                "{}: peak_live_nodes {} regresses >5% over committed {}",
                r.name, s.peak_live_nodes, c.peak_live_nodes
            ));
        }
    }
    if matched == 0 {
        failures.push("gate: no case of this run matched the committed baseline".to_owned());
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let gate = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_verify.json".to_owned());

    // The fused relational product plus mid-reach reordering keeps the
    // n=16 chain inside the default 2^22 node budget; the pre-kernel
    // traversal could not finish it.
    let chain_sizes: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 12, 16] };

    let mut results = Vec::new();
    for (name, net) in [
        ("seatbelt", workloads::seat_belt()),
        ("shock_absorber", workloads::shock_absorber()),
        ("dashboard", workloads::dashboard()),
    ] {
        results.push(run_case(name, &net));
    }
    let spec = RandomSpec::default();
    for &n in chain_sizes {
        let net = random_network(n, &spec, 0x9e3779b97f4a7c15 ^ n as u64);
        results.push(run_case(&format!("relay_chain_{n}"), &net));
    }

    for r in &results {
        let s = &r.report.stats;
        let andex_pct = if s.andex_lookups == 0 {
            0.0
        } else {
            s.andex_hits as f64 / s.andex_lookups as f64 * 100.0
        };
        println!(
            "{:<18} {:>9.2} ms  iters {:>3}  images {:>5}  states {:>12}  peak live {:>8}  \
             andex hit {:>5.1}%  shed {:>7}  reorders {}  gcs {}",
            r.name,
            r.wall_ms,
            s.iterations,
            s.image_steps,
            s.reached_states
                .map_or("overflow".to_owned(), |n| n.to_string()),
            s.peak_live_nodes,
            andex_pct,
            s.constrain_reduced_nodes,
            s.mid_reach_reorders,
            s.mid_reach_collections,
        );
        if let Some(p) = &r.prop {
            println!(
                "{:<18} {:>9.2} ms  props {:>3}  violated {:>3}  max trace {:>3}  \
                 rings {:>4}{}  preimage nodes {}",
                format!("  {} props", r.name),
                p.wall.as_secs_f64() * 1e3,
                p.checked,
                p.violations,
                p.max_trace_len,
                p.rings_stored,
                if p.rings_complete { "" } else { " (capped)" },
                p.preimage_nodes,
            );
        }
    }

    let mut json = String::from("{\n  \"bench\": \"verify\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"baseline_commit\": \"{BASELINE_COMMIT}\",\n  \"baseline\": ["
    ));
    for (i, b) in BASELINE.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{ \"name\": \"{}\", \"wall_ms\": {:.3}, \"iterations\": {}, \
             \"image_steps\": {}, \"reached_states\": {}, \"peak_live_nodes\": {}, \
             \"lost_possible\": {}, \"dead_transitions\": {}, \"deadlock\": {} }}",
            b.name,
            b.wall_ms,
            b.iterations,
            b.image_steps,
            b.reached_states,
            b.peak_live_nodes,
            b.lost_possible,
            b.dead_transitions,
            b.deadlock,
        ));
    }
    json.push_str("\n  ],\n  \"current\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str("\n    ");
        json.push_str(&r.to_json());
    }
    json.push_str("\n  ],\n  \"speedups\": {");
    let mut first = true;
    for r in &results {
        if let Some(b) = BASELINE.iter().find(|b| b.name == r.name) {
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "\n    \"{}\": {:.2}",
                escape_json(&r.name),
                b.wall_ms / r.wall_ms.max(1e-9)
            ));
        }
    }
    json.push_str("\n  }\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");

    let mut failures = Vec::new();
    if check {
        let budget = VerifyOptions::default().node_budget as u64;
        for r in &results {
            let s = &r.report.stats;
            if s.iterations == 0 || s.image_steps == 0 {
                failures.push(format!("{}: traversal did no work", r.name));
            }
            match s.reached_states {
                Some(n) if n >= 2 => {}
                other => failures.push(format!(
                    "{}: implausible reachable-state count {other:?}",
                    r.name
                )),
            }
            if s.peak_live_nodes == 0 {
                failures.push(format!("{}: peak live nodes not recorded", r.name));
            }
            // Every case must finish inside the default node budget;
            // relay_chain_16 is the largest and only fits because the
            // relational-product kernel keeps the traversal compact.
            if s.peak_live_nodes >= budget {
                failures.push(format!(
                    "{}: peak live nodes {} at or above the {} node budget",
                    r.name, s.peak_live_nodes, budget
                ));
            }
            if s.andex_lookups == 0 || s.cube_quant_calls == 0 {
                failures.push(format!(
                    "{}: relational-product kernel counters not recorded \
                     (andex_lookups {}, cube_quant_calls {})",
                    r.name, s.andex_lookups, s.cube_quant_calls
                ));
            }
            // The complement-edge kernel must keep at least a 30% peak
            // reduction over the plain-edge kernel on the large chains.
            if let Some(&(_, pr5)) = COMPLEMENT_PEAK_CEILING.iter().find(|(n, _)| *n == r.name) {
                if s.peak_live_nodes * 10 > pr5 * 7 {
                    failures.push(format!(
                        "{}: peak live nodes {} above the 30%-reduction \
                         ceiling {} (plain-edge peak {})",
                        r.name,
                        s.peak_live_nodes,
                        pr5 * 7 / 10,
                        pr5
                    ));
                }
            }
            // Property passes must check the whole suite and decode a
            // trace for every violation (the example fixpoints are far
            // below the ring cap, so cube-only degradation here is a bug).
            if let Some(p) = &r.prop {
                if p.checked == 0 {
                    failures.push(format!("{}: empty property suite ran", r.name));
                }
                if !p.rings_complete {
                    failures.push(format!("{}: trace rings unexpectedly capped", r.name));
                }
                if p.violations > 0 && p.max_trace_len == 0 {
                    failures.push(format!(
                        "{}: {} violations but no decoded trace",
                        r.name, p.violations
                    ));
                }
            }
            // Deterministic cross-check against the verdicts pinned in
            // the embedded baseline: the kernel rewrite must never move
            // them.
            if let Some(b) = BASELINE.iter().find(|b| b.name == r.name) {
                if s.reached_states != Some(b.reached_states)
                    || s.iterations != b.iterations
                    || r.lost_possible() != b.lost_possible
                    || r.report.dead_transitions.len() != b.dead_transitions
                    || r.report.deadlock.is_some() != b.deadlock
                {
                    failures.push(format!(
                        "{}: verdicts drifted from the {BASELINE_COMMIT} baseline",
                        r.name
                    ));
                }
            }
        }
    }
    if let Some(path) = gate {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("gate: cannot read {path}: {e}"));
        failures.extend(gate_failures(&results, &parse_gate_file(&text)));
    }
    if check || !failures.is_empty() {
        if failures.is_empty() {
            println!("bench check OK");
        } else {
            for f in &failures {
                eprintln!("bench check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
