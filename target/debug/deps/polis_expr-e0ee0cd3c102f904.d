/root/repo/target/debug/deps/polis_expr-e0ee0cd3c102f904.d: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

/root/repo/target/debug/deps/libpolis_expr-e0ee0cd3c102f904.rlib: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

/root/repo/target/debug/deps/libpolis_expr-e0ee0cd3c102f904.rmeta: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

crates/expr/src/lib.rs:
crates/expr/src/eval.rs:
crates/expr/src/print.rs:
crates/expr/src/types.rs:
