/root/repo/target/debug/deps/polis_lang-5803070b3a88bb99.d: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/debug/deps/libpolis_lang-5803070b3a88bb99.rlib: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/debug/deps/libpolis_lang-5803070b3a88bb99.rmeta: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

crates/lang/src/lib.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
