/root/repo/target/debug/deps/polis_core-c5702b3e30735808.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_core-c5702b3e30735808.rmeta: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/random.rs:
crates/core/src/trace.rs:
crates/core/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
