/root/repo/target/release/deps/execution-1238b313fdad561c.d: crates/bench/benches/execution.rs

/root/repo/target/release/deps/execution-1238b313fdad561c: crates/bench/benches/execution.rs

crates/bench/benches/execution.rs:
