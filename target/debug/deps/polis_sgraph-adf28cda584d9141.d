/root/repo/target/debug/deps/polis_sgraph-adf28cda584d9141.d: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

/root/repo/target/debug/deps/libpolis_sgraph-adf28cda584d9141.rmeta: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs

crates/sgraph/src/lib.rs:
crates/sgraph/src/analysis.rs:
crates/sgraph/src/builder.rs:
crates/sgraph/src/chain.rs:
crates/sgraph/src/collapse.rs:
crates/sgraph/src/cond.rs:
crates/sgraph/src/eval.rs:
crates/sgraph/src/graph.rs:
