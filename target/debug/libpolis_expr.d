/root/repo/target/debug/libpolis_expr.rlib: /root/repo/crates/expr/src/eval.rs /root/repo/crates/expr/src/lib.rs /root/repo/crates/expr/src/print.rs /root/repo/crates/expr/src/types.rs
