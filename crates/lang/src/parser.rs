//! Recursive-descent parser and CFSM elaboration.

use crate::lexer::{lex, Tok, Token};
use crate::prop::{PropExpr, PropKind, Property, Span, Spec};
use polis_cfsm::{Cfsm, CfsmBuilder, CfsmError, Guard, Network, NetworkError, StateId, TestId};
use polis_expr::{Expr, Type, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse or elaboration failure, with source position where available.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line (0 when the error has no position, e.g. a semantic
    /// error reported by CFSM validation).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for ParseError {}

impl From<CfsmError> for ParseError {
    fn from(e: CfsmError) -> ParseError {
        ParseError {
            line: 0,
            col: 0,
            message: e.to_string(),
        }
    }
}

impl From<NetworkError> for ParseError {
    fn from(e: NetworkError) -> ParseError {
        ParseError {
            line: 0,
            col: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a source containing exactly one `module`.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors and on CFSM validation
/// failures (duplicate names, unknown references, ...).
pub fn parse_module(src: &str) -> Result<Cfsm, ParseError> {
    let (mut machines, _) = parse_source(src)?;
    if machines.len() != 1 {
        return Err(ParseError {
            line: 0,
            col: 0,
            message: format!("expected exactly one module, found {}", machines.len()),
        });
    }
    Ok(machines.remove(0))
}

/// Parses a source containing one or more `module`s into a network.
///
/// `properties` blocks are accepted, validated against the network, and
/// discarded — synthesis consumers see the same network whether or not a
/// suite is present. Use [`parse_spec`] to keep the properties.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax, CFSM, network, or property
/// resolution errors.
pub fn parse_network(name: &str, src: &str) -> Result<Network, ParseError> {
    Ok(parse_spec(name, src)?.network)
}

/// Parses a full specification: modules plus any `properties` blocks,
/// with every property atom resolved against the elaborated network.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax, CFSM, or network validation errors,
/// and spanned diagnostics for property atoms naming unknown modules,
/// states, or inputs.
pub fn parse_spec(name: &str, src: &str) -> Result<Spec, ParseError> {
    let (machines, raw) = parse_source(src)?;
    let network = Network::new(name, machines)?;
    let properties = resolve_props(&network, raw)?;
    Ok(Spec {
        network,
        properties,
    })
}

/// Parses a source containing only `properties` blocks and resolves the
/// atoms against an existing network — for attaching a suite to a
/// programmatically built [`Network`] (workloads, benches).
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, on stray `module` blocks,
/// and on unresolved atom names (spanned, naming the machine).
pub fn parse_properties(net: &Network, src: &str) -> Result<Vec<Property>, ParseError> {
    let (machines, raw) = parse_source(src)?;
    if let Some(m) = machines.first() {
        return Err(ParseError {
            line: 0,
            col: 0,
            message: format!(
                "expected only `properties` blocks, found module `{}`",
                m.name()
            ),
        });
    }
    resolve_props(net, raw)
}

fn parse_source(src: &str) -> Result<(Vec<Cfsm>, Vec<RawProp>), ParseError> {
    let tokens = lex(src).map_err(|(line, col, message)| ParseError { line, col, message })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut machines = Vec::new();
    let mut props = Vec::new();
    while p.peek() != &Tok::Eof {
        match p.peek() {
            Tok::Properties => p.properties_block(&mut props)?,
            _ => machines.push(p.module()?),
        }
    }
    Ok((machines, props))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let neg = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            _ => Err(self.error(format!("expected an integer, found {}", self.peek()))),
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let name = self.ident()?;
        if name == "bool" {
            return Ok(Type::Bool);
        }
        let (signed, digits) = match name.split_at(1) {
            ("u", d) => (false, d),
            ("i", d) => (true, d),
            _ => return Err(self.error(format!("unknown type `{name}`"))),
        };
        let bits: u8 = digits
            .parse()
            .map_err(|_| self.error(format!("unknown type `{name}`")))?;
        if !(1..=32).contains(&bits) {
            return Err(self.error(format!("type width {bits} outside 1..=32")));
        }
        Ok(if signed {
            Type::int(bits)
        } else {
            Type::uint(bits)
        })
    }

    fn module(&mut self) -> Result<Cfsm, ParseError> {
        self.expect(Tok::Module)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut b = Cfsm::builder(name);
        let mut env = ModuleEnv::default();
        while *self.peek() != Tok::RBrace {
            match self.peek() {
                Tok::Input => self.input_decl(&mut b, &mut env)?,
                Tok::Output => self.output_decl(&mut b, &mut env)?,
                Tok::Var => self.var_decl(&mut b, &mut env)?,
                Tok::State => self.state_decl(&mut b, &mut env)?,
                Tok::From => self.transition(&mut b, &mut env)?,
                other => {
                    return Err(self.error(format!(
                        "expected a declaration or transition, found {other}"
                    )))
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(b.build()?)
    }

    fn input_decl(&mut self, b: &mut CfsmBuilder, env: &mut ModuleEnv) -> Result<(), ParseError> {
        self.expect(Tok::Input)?;
        loop {
            let name = self.ident()?;
            if *self.peek() == Tok::Colon {
                self.bump();
                let ty = self.ty()?;
                env.valued_inputs.insert(name.clone());
                b.input_valued(name.clone(), ty);
            } else {
                b.input_pure(name.clone());
            }
            env.inputs.push(name);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::Semi)
    }

    fn output_decl(&mut self, b: &mut CfsmBuilder, env: &mut ModuleEnv) -> Result<(), ParseError> {
        self.expect(Tok::Output)?;
        loop {
            let name = self.ident()?;
            if *self.peek() == Tok::Colon {
                self.bump();
                let ty = self.ty()?;
                env.valued_outputs.insert(name.clone());
                b.output_valued(name.clone(), ty);
            } else {
                b.output_pure(name.clone());
            }
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::Semi)
    }

    fn var_decl(&mut self, b: &mut CfsmBuilder, _env: &mut ModuleEnv) -> Result<(), ParseError> {
        self.expect(Tok::Var)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(Tok::Assign)?;
        let init = self.int()?;
        self.expect(Tok::Semi)?;
        b.state_var(name, ty, Value::Int(init));
        Ok(())
    }

    fn state_decl(&mut self, b: &mut CfsmBuilder, env: &mut ModuleEnv) -> Result<(), ParseError> {
        self.expect(Tok::State)?;
        loop {
            let name = self.ident()?;
            let id = b.ctrl_state(name.clone());
            env.states.insert(name, id);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::Semi)
    }

    fn state_ref(&mut self, env: &ModuleEnv) -> Result<StateId, ParseError> {
        let (line, col) = self.here();
        let name = self.ident()?;
        env.states.get(&name).copied().ok_or(ParseError {
            line,
            col,
            message: format!("unknown state `{name}`"),
        })
    }

    fn transition(&mut self, b: &mut CfsmBuilder, env: &mut ModuleEnv) -> Result<(), ParseError> {
        self.expect(Tok::From)?;
        let from = self.state_ref(env)?;
        self.expect(Tok::To)?;
        let to = self.state_ref(env)?;
        let guard = if *self.peek() == Tok::When {
            self.bump();
            self.guard(b, env)?
        } else {
            Guard::True
        };
        let mut actions: Vec<ParsedAction> = Vec::new();
        if *self.peek() == Tok::Do {
            self.bump();
            self.expect(Tok::LBrace)?;
            while *self.peek() != Tok::RBrace {
                actions.push(self.action(env)?);
            }
            self.expect(Tok::RBrace)?;
        }
        // An action-less transition may end with a semicolon.
        if *self.peek() == Tok::Semi {
            self.bump();
        }
        let mut tb = b.transition(from, to).when(guard);
        for a in actions {
            tb = match a {
                ParsedAction::EmitPure(sig) => tb.emit(&sig),
                ParsedAction::EmitValued(sig, e) => tb.emit_value(&sig, e),
                ParsedAction::Assign(var, e) => tb.assign(&var, e),
            };
        }
        tb.done();
        Ok(())
    }

    /// guard := or-guard
    fn guard(&mut self, b: &mut CfsmBuilder, env: &mut ModuleEnv) -> Result<Guard, ParseError> {
        let mut g = self.guard_and(b, env)?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            g = g.or(self.guard_and(b, env)?);
        }
        Ok(g)
    }

    fn guard_and(&mut self, b: &mut CfsmBuilder, env: &mut ModuleEnv) -> Result<Guard, ParseError> {
        let mut g = self.guard_atom(b, env)?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            g = g.and(self.guard_atom(b, env)?);
        }
        Ok(g)
    }

    fn guard_atom(
        &mut self,
        b: &mut CfsmBuilder,
        env: &mut ModuleEnv,
    ) -> Result<Guard, ParseError> {
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                Ok(self.guard_atom(b, env)?.not())
            }
            Tok::LParen => {
                self.bump();
                let g = self.guard(b, env)?;
                self.expect(Tok::RParen)?;
                Ok(g)
            }
            Tok::True => {
                self.bump();
                Ok(Guard::True)
            }
            Tok::False => {
                self.bump();
                Ok(Guard::False)
            }
            Tok::LBracket => {
                self.bump();
                let e = self.expr(env)?;
                self.expect(Tok::RBracket)?;
                let id = env.intern_test(b, e);
                Ok(Guard::Test(id.0))
            }
            Tok::Ident(name) => {
                let (line, col) = self.here();
                self.bump();
                match env.inputs.iter().position(|i| *i == name) {
                    Some(i) => Ok(Guard::Present(i)),
                    None => Err(ParseError {
                        line,
                        col,
                        message: format!("unknown input `{name}` in guard"),
                    }),
                }
            }
            other => Err(self.error(format!("expected a guard atom, found {other}"))),
        }
    }

    fn action(&mut self, env: &mut ModuleEnv) -> Result<ParsedAction, ParseError> {
        match self.peek().clone() {
            Tok::Emit => {
                self.bump();
                let sig = self.ident()?;
                let action = if *self.peek() == Tok::LParen {
                    self.bump();
                    let e = self.expr(env)?;
                    self.expect(Tok::RParen)?;
                    ParsedAction::EmitValued(sig, e)
                } else {
                    ParsedAction::EmitPure(sig)
                };
                self.expect(Tok::Semi)?;
                Ok(action)
            }
            Tok::Ident(var) => {
                self.bump();
                self.expect(Tok::Assign)?;
                let e = self.expr(env)?;
                self.expect(Tok::Semi)?;
                Ok(ParsedAction::Assign(var, e))
            }
            other => Err(self.error(format!("expected an action, found {other}"))),
        }
    }

    /// expr := cmp; cmp := sum (relop sum)?; sum := term ((+|-) term)*;
    /// term := factor ((*|/|%) factor)*.
    fn expr(&mut self, env: &ModuleEnv) -> Result<Expr, ParseError> {
        let lhs = self.sum(env)?;
        let op = match self.peek() {
            Tok::EqEq => Some(Expr::eq as fn(Expr, Expr) -> Expr),
            Tok::NotEq => Some(Expr::ne as fn(Expr, Expr) -> Expr),
            Tok::Le => Some(Expr::le as fn(Expr, Expr) -> Expr),
            Tok::Ge => Some(Expr::ge as fn(Expr, Expr) -> Expr),
            Tok::Lt => Some(Expr::lt as fn(Expr, Expr) -> Expr),
            Tok::Gt => Some(Expr::gt as fn(Expr, Expr) -> Expr),
            _ => None,
        };
        if let Some(f) = op {
            self.bump();
            let rhs = self.sum(env)?;
            Ok(f(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn sum(&mut self, env: &ModuleEnv) -> Result<Expr, ParseError> {
        let mut e = self.term(env)?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    e = e.add(self.term(env)?);
                }
                Tok::Minus => {
                    self.bump();
                    e = e.sub(self.term(env)?);
                }
                _ => return Ok(e),
            }
        }
    }

    fn term(&mut self, env: &ModuleEnv) -> Result<Expr, ParseError> {
        let mut e = self.factor(env)?;
        loop {
            match self.peek() {
                Tok::Star => {
                    self.bump();
                    e = e.mul(self.factor(env)?);
                }
                Tok::Slash => {
                    self.bump();
                    e = e.div(self.factor(env)?);
                }
                Tok::Percent => {
                    self.bump();
                    e = e.rem(self.factor(env)?);
                }
                _ => return Ok(e),
            }
        }
    }

    fn factor(&mut self, env: &ModuleEnv) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            Tok::Minus => {
                self.bump();
                Ok(self.factor(env)?.neg())
            }
            Tok::Question => {
                self.bump();
                let (line, col) = self.here();
                let sig = self.ident()?;
                if !env.valued_inputs.contains(&sig) {
                    return Err(ParseError {
                        line,
                        col,
                        message: format!("`?{sig}`: `{sig}` is not a valued input"),
                    });
                }
                Ok(Expr::var(polis_cfsm::value_var_name(&sig)))
            }
            Tok::Min | Tok::Max => {
                let is_min = *self.peek() == Tok::Min;
                self.bump();
                self.expect(Tok::LParen)?;
                let a = self.expr(env)?;
                self.expect(Tok::Comma)?;
                let b = self.expr(env)?;
                self.expect(Tok::RParen)?;
                Ok(if is_min { a.min(b) } else { a.max(b) })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr(env)?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::var(name))
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    /// `properties { (assert (never|reachable) <prop-expr> ;)* }`
    fn properties_block(&mut self, out: &mut Vec<RawProp>) -> Result<(), ParseError> {
        self.expect(Tok::Properties)?;
        self.expect(Tok::LBrace)?;
        while *self.peek() != Tok::RBrace {
            let (line, col) = self.here();
            self.expect(Tok::Assert)?;
            let kind = match self.peek() {
                Tok::Never => PropKind::Never,
                Tok::Reachable => PropKind::Reachable,
                other => {
                    return Err(
                        self.error(format!("expected `never` or `reachable`, found {other}"))
                    )
                }
            };
            self.bump();
            let expr = self.prop_expr()?;
            self.expect(Tok::Semi)?;
            out.push(RawProp {
                kind,
                expr,
                span: Span { line, col },
            });
        }
        self.expect(Tok::RBrace)
    }

    /// prop-expr := prop-and (`||` prop-and)*
    fn prop_expr(&mut self) -> Result<RawExpr, ParseError> {
        let mut e = self.prop_and()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            e = RawExpr::Or(Box::new(e), Box::new(self.prop_and()?));
        }
        Ok(e)
    }

    fn prop_and(&mut self) -> Result<RawExpr, ParseError> {
        let mut e = self.prop_atom()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            e = RawExpr::And(Box::new(e), Box::new(self.prop_atom()?));
        }
        Ok(e)
    }

    /// prop-atom := `!` prop-atom | `(` prop-expr `)` | `true` | `false`
    ///            | machine `@` state | machine `.` input
    fn prop_atom(&mut self) -> Result<RawExpr, ParseError> {
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                Ok(RawExpr::Not(Box::new(self.prop_atom()?)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.prop_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::True => {
                self.bump();
                Ok(RawExpr::True)
            }
            Tok::False => {
                self.bump();
                Ok(RawExpr::False)
            }
            Tok::Ident(machine) => {
                let (line, col) = self.here();
                let mspan = Span { line, col };
                self.bump();
                match self.peek().clone() {
                    Tok::At => {
                        self.bump();
                        let (line, col) = self.here();
                        let state = self.ident()?;
                        Ok(RawExpr::AtState {
                            machine,
                            state,
                            mspan,
                            sspan: Span { line, col },
                        })
                    }
                    Tok::Dot => {
                        self.bump();
                        let (line, col) = self.here();
                        let signal = self.ident()?;
                        Ok(RawExpr::Pending {
                            machine,
                            signal,
                            mspan,
                            sspan: Span { line, col },
                        })
                    }
                    other => Err(self.error(format!(
                        "expected `@state` or `.event` after `{machine}`, found {other}"
                    ))),
                }
            }
            other => Err(self.error(format!("expected a property atom, found {other}"))),
        }
    }
}

/// A property before name resolution: atoms carry source names and the
/// spans diagnostics point at.
struct RawProp {
    kind: PropKind,
    expr: RawExpr,
    span: Span,
}

enum RawExpr {
    True,
    False,
    AtState {
        machine: String,
        state: String,
        mspan: Span,
        sspan: Span,
    },
    Pending {
        machine: String,
        signal: String,
        mspan: Span,
        sspan: Span,
    },
    Not(Box<RawExpr>),
    And(Box<RawExpr>, Box<RawExpr>),
    Or(Box<RawExpr>, Box<RawExpr>),
}

fn resolve_props(net: &Network, raw: Vec<RawProp>) -> Result<Vec<Property>, ParseError> {
    raw.into_iter()
        .map(|p| {
            Ok(Property {
                kind: p.kind,
                expr: resolve_expr(net, p.expr)?,
                span: p.span,
            })
        })
        .collect()
}

fn spanned(span: Span, message: String) -> ParseError {
    ParseError {
        line: span.line,
        col: span.col,
        message,
    }
}

fn machine_index(net: &Network, name: &str, mspan: Span) -> Result<usize, ParseError> {
    net.machine_index(name)
        .ok_or_else(|| spanned(mspan, format!("unknown module `{name}` in property")))
}

fn resolve_expr(net: &Network, e: RawExpr) -> Result<PropExpr, ParseError> {
    match e {
        RawExpr::True => Ok(PropExpr::True),
        RawExpr::False => Ok(PropExpr::False),
        RawExpr::AtState {
            machine,
            state,
            mspan,
            sspan,
        } => {
            let mi = machine_index(net, &machine, mspan)?;
            let m = &net.cfsms()[mi];
            let si = m.states().iter().position(|s| *s == state).ok_or_else(|| {
                spanned(sspan, format!("module `{machine}` has no state `{state}`"))
            })?;
            Ok(PropExpr::AtState {
                machine: mi,
                state: si,
                span: sspan,
            })
        }
        RawExpr::Pending {
            machine,
            signal,
            mspan,
            sspan,
        } => {
            let mi = machine_index(net, &machine, mspan)?;
            let ki = net.cfsms()[mi].input_index(&signal).ok_or_else(|| {
                spanned(sspan, format!("module `{machine}` has no input `{signal}`"))
            })?;
            Ok(PropExpr::Pending {
                machine: mi,
                input: ki,
                span: sspan,
            })
        }
        RawExpr::Not(x) => Ok(PropExpr::Not(Box::new(resolve_expr(net, *x)?))),
        RawExpr::And(a, b) => Ok(PropExpr::And(
            Box::new(resolve_expr(net, *a)?),
            Box::new(resolve_expr(net, *b)?),
        )),
        RawExpr::Or(a, b) => Ok(PropExpr::Or(
            Box::new(resolve_expr(net, *a)?),
            Box::new(resolve_expr(net, *b)?),
        )),
    }
}

enum ParsedAction {
    EmitPure(String),
    EmitValued(String, Expr),
    Assign(String, Expr),
}

#[derive(Default)]
struct ModuleEnv {
    inputs: Vec<String>,
    valued_inputs: std::collections::BTreeSet<String>,
    valued_outputs: std::collections::BTreeSet<String>,
    states: HashMap<String, StateId>,
    tests: HashMap<Expr, TestId>,
}

impl ModuleEnv {
    fn intern_test(&mut self, b: &mut CfsmBuilder, e: Expr) -> TestId {
        if let Some(&id) = self.tests.get(&e) {
            return id;
        }
        let id = b.test(format!("t{}", self.tests.len()), e.clone());
        self.tests.insert(e, id);
        id
    }
}

// `peek2` is kept for grammar extensions (e.g. `?sig` in guards).
impl Parser {
    #[allow(dead_code)]
    fn lookahead_is(&self, t: Tok) -> bool {
        *self.peek2() == t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_expr::MapEnv;
    use std::collections::BTreeSet;

    const SIMPLE: &str = r#"
        // The paper's Fig. 1 module.
        module simple {
            input c : u8;
            output y;
            var a : u8 := 0;
            state awaiting;
            from awaiting to awaiting when c && [a == ?c] do { a := 0; emit y; }
            from awaiting to awaiting when c && ![a == ?c] do { a := a + 1; }
        }
    "#;

    #[test]
    fn parses_fig1_simple() {
        let m = parse_module(SIMPLE).unwrap();
        assert_eq!(m.name(), "simple");
        assert_eq!(m.inputs().len(), 1);
        assert_eq!(m.outputs().len(), 1);
        assert_eq!(m.state_vars().len(), 1);
        assert_eq!(m.num_transitions(), 2);
        assert_eq!(m.tests().len(), 1, "the bracketed test is interned once");
    }

    #[test]
    fn parsed_module_behaves_like_fig1() {
        let m = parse_module(SIMPLE).unwrap();
        let mut st = m.initial_state();
        let present: BTreeSet<String> = ["c".to_string()].into();
        let mut vals = MapEnv::new();
        vals.set("c_value", Value::Int(2));
        for _ in 0..2 {
            let r = m.react(&present, &vals, &st).unwrap();
            assert!(r.emissions.is_empty());
            st = r.next;
        }
        let r = m.react(&present, &vals, &st).unwrap();
        assert_eq!(r.emissions.len(), 1);
        assert_eq!(r.emissions[0].signal, "y");
    }

    #[test]
    fn parses_multi_state_and_network() {
        let src = r#"
            module producer {
                input tick;
                output data : u8;
                var n : u8 := 0;
                state idle, busy;
                from idle to busy when tick do { n := n + 1; emit data(n * 2); }
                from busy to idle when tick;
            }
            module consumer {
                input data : u8;
                output alert;
                state s;
                from s to s when data && [?data > 10] do { emit alert; }
            }
        "#;
        let net = parse_network("pipeline", src).unwrap();
        assert_eq!(net.cfsms().len(), 2);
        assert_eq!(net.internal_signals(), vec!["data".to_string()]);
        assert_eq!(net.cfsms()[0].states().len(), 2);
    }

    #[test]
    fn guard_operators_parse() {
        let src = r#"
            module g {
                input a, b;
                output o;
                var n : u4 := 0;
                state s;
                from s to s when (a || b) && ![n >= 3] && true do { emit o; }
            }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.num_transitions(), 1);
    }

    #[test]
    fn expression_precedence() {
        let src = r#"
            module e {
                input go;
                output o : u8;
                var x : u8 := 0;
                state s;
                from s to s when go do { emit o(1 + x * 2 - min(x, 3)); }
            }
        "#;
        let m = parse_module(src).unwrap();
        // 1 + (x*2) - min(x,3)
        let polis_cfsm::Action::Emit { value: Some(e), .. } = &m.actions()[0] else {
            panic!("expected valued emission");
        };
        let mut env = MapEnv::new();
        env.set("x", Value::Int(5));
        assert_eq!(e.eval(&env).unwrap(), Value::Int(1 + 10 - 3));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_module("module m {\n  input $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_module("module m { state s; from s to nowhere; }").unwrap_err();
        assert!(err.message.contains("unknown state"));
        let err =
            parse_module("module m { input a; state s; from s to s when bogus; }").unwrap_err();
        assert!(err.message.contains("unknown input"));
        let err =
            parse_module("module m { input a; state s; from s to s when [?a == 1]; }").unwrap_err();
        assert!(err.message.contains("not a valued input"));
    }

    #[test]
    fn validation_errors_surface() {
        // duplicate name: input and output both `x`
        let err = parse_module("module m { input x; output x; state s; }").unwrap_err();
        assert!(err.message.contains("duplicate name"));
    }

    #[test]
    fn signed_types_and_negative_literals() {
        let src = r#"
            module neg {
                input go;
                output o : i8;
                var d : i8 := -3;
                state s;
                from s to s when go do { emit o(d - 10); d := -d; }
            }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.state_vars()[0].init, Value::Int(-3));
    }

    const PAIR_WITH_PROPS: &str = r#"
        module pinger {
            input go;
            output ping;
            state idle, firing;
            from idle to firing when go do { emit ping; }
            from firing to idle when go;
        }
        module ponger {
            input ping;
            output pong;
            state s;
            from s to s when ping do { emit pong; }
        }
        properties {
            assert never pinger@firing && ponger.ping;
            assert reachable pinger@firing;
            assert reachable !(pinger@idle || ponger.ping) && true;
        }
    "#;

    #[test]
    fn spec_with_properties_parses_and_resolves() {
        use crate::prop::{PropExpr, PropKind};
        let spec = parse_spec("pair", PAIR_WITH_PROPS).unwrap();
        assert_eq!(spec.network.cfsms().len(), 2);
        assert_eq!(spec.properties.len(), 3);
        assert_eq!(spec.properties[0].kind, PropKind::Never);
        assert_eq!(spec.properties[1].kind, PropKind::Reachable);
        let PropExpr::And(a, b) = &spec.properties[0].expr else {
            panic!("expected a conjunction, got {:?}", spec.properties[0].expr);
        };
        assert!(
            matches!(
                **a,
                PropExpr::AtState {
                    machine: 0,
                    state: 1,
                    ..
                }
            ),
            "{a:?}"
        );
        assert!(
            matches!(
                **b,
                PropExpr::Pending {
                    machine: 1,
                    input: 0,
                    ..
                }
            ),
            "{b:?}"
        );
        // `parse_network` accepts the same source and discards the suite.
        let net = parse_network("pair", PAIR_WITH_PROPS).unwrap();
        assert_eq!(net.cfsms().len(), 2);
    }

    #[test]
    fn property_eval_and_render_roundtrip() {
        let spec = parse_spec("pair", PAIR_WITH_PROPS).unwrap();
        let net = &spec.network;
        // pinger@firing && ponger.ping
        let e = &spec.properties[0].expr;
        assert!(e.eval(&[1, 0], &[vec![false], vec![true]]));
        assert!(!e.eval(&[0, 0], &[vec![false], vec![true]]));
        assert!(!e.eval(&[1, 0], &[vec![true], vec![false]]));
        assert_eq!(
            spec.properties[0].render(net),
            "assert never (pinger@firing && ponger.ping)"
        );
        // The rendered suite re-parses to the same resolved properties
        // (spans differ between the two sources, so compare renders).
        let suite = crate::prop::emit_properties_source(net, &spec.properties);
        let reparsed = parse_properties(net, &suite).unwrap();
        assert_eq!(reparsed.len(), spec.properties.len());
        for (a, b) in reparsed.iter().zip(&spec.properties) {
            assert_eq!(a.render(net), b.render(net));
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn property_unknown_module_is_spanned() {
        let src = "module m { input a; state s; }\nproperties {\n    assert never ghost@s;\n}";
        let err = parse_spec("n", src).unwrap_err();
        assert_eq!((err.line, err.col), (3, 18));
        assert!(err.message.contains("unknown module `ghost`"), "{err}");
    }

    #[test]
    fn property_unknown_state_names_the_machine() {
        let src =
            "module m { input a; state s; }\nproperties {\n    assert reachable m@launched;\n}";
        let err = parse_spec("n", src).unwrap_err();
        assert_eq!((err.line, err.col), (3, 24));
        assert!(
            err.message.contains("module `m` has no state `launched`"),
            "{err}"
        );
    }

    #[test]
    fn property_unknown_input_names_the_machine() {
        let src = "module m { input a; state s; }\nproperties {\n    assert never m.bogus;\n}";
        let err = parse_spec("n", src).unwrap_err();
        assert_eq!((err.line, err.col), (3, 20));
        assert!(
            err.message.contains("module `m` has no input `bogus`"),
            "{err}"
        );
    }

    #[test]
    fn property_syntax_errors_are_positioned() {
        let err = parse_spec(
            "n",
            "module m { input a; state s; }\nproperties { assert always m@s; }",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("`never` or `reachable`"), "{err}");
        let err = parse_spec(
            "n",
            "module m { input a; state s; }\nproperties { assert never m; }",
        )
        .unwrap_err();
        assert!(
            err.message.contains("expected `@state` or `.event`"),
            "{err}"
        );
    }

    #[test]
    fn parse_properties_rejects_modules() {
        let net = parse_network("n", "module m { input a; state s; }").unwrap();
        let err = parse_properties(&net, "module k { state s; }").unwrap_err();
        assert!(err.message.contains("found module `k`"), "{err}");
        let props = parse_properties(&net, "properties { assert reachable m.a; }").unwrap();
        assert_eq!(props.len(), 1);
    }

    #[test]
    fn bad_type_rejected() {
        let err = parse_module("module m { var v : q8 := 0; state s; }").unwrap_err();
        assert!(err.message.contains("unknown type"));
        let err = parse_module("module m { var v : u99 := 0; state s; }").unwrap_err();
        assert!(err.message.contains("outside"));
    }
}
