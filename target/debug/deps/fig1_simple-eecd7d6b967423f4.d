/root/repo/target/debug/deps/fig1_simple-eecd7d6b967423f4.d: tests/fig1_simple.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_simple-eecd7d6b967423f4.rmeta: tests/fig1_simple.rs Cargo.toml

tests/fig1_simple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
