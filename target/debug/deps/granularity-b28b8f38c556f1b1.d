/root/repo/target/debug/deps/granularity-b28b8f38c556f1b1.d: crates/bench/src/bin/granularity.rs

/root/repo/target/debug/deps/libgranularity-b28b8f38c556f1b1.rmeta: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:
