//! User-specified property checking against the reachable set.
//!
//! Each [`Property`] from a specification's `properties` block compiles
//! to a BDD over the model's current-state rail — control-state atoms
//! through the machine's [`MvVar`](polis_bdd::encode::MvVar) encoding,
//! event-presence atoms to the buffer fill bit — and is intersected with
//! the reached set:
//!
//! * `assert never e` **holds** iff `Reached ∧ ⟦e⟧ = ∅`; a violation
//!   carries a decoded counterexample trace to a state satisfying `e`;
//! * `assert reachable e` **holds** iff `Reached ∧ ⟦e⟧ ≠ ∅`; the verdict
//!   carries a decoded witness trace to such a state.
//!
//! Traces come from the onion-ring preimage walker ([`crate::trace`]);
//! when the rings were capped or dropped under budget pressure the
//! checker degrades gracefully to a cube-only witness (one decoded
//! state, no path). Because data tests are free variables, the reached
//! set over-approximates concrete executions: `never` violations are
//! sound alarms and `reachable` verdicts sound possibilities, the same
//! contract as the built-in checks.

use crate::model::NetworkModel;
use crate::trace::{decode_point, walk_trace, CexTrace, DecodedState, TraceRings};
use polis_bdd::NodeRef;
use polis_cfsm::Network;
use polis_lang::{PropExpr, PropKind, Property};
use std::time::{Duration, Instant};

/// Verdict for one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropResult {
    /// The property, as resolved by the parser.
    pub property: Property,
    /// Whether the assertion holds over the reachable set.
    pub holds: bool,
    /// A decoded execution to a state satisfying the property's
    /// expression: the counterexample for a violated `never`, the
    /// witness for a satisfied `reachable`. `None` when no such state
    /// exists — or when ring storage was off/degraded (see
    /// `witness_state`).
    pub trace: Option<CexTrace>,
    /// The decoded satisfying state alone — always present when one
    /// exists, even without rings (the cube-only degradation).
    pub witness_state: Option<DecodedState>,
}

impl PropResult {
    /// `holds` / `VIOLATED` — the gate word for this result.
    pub fn verdict(&self) -> &'static str {
        if self.holds {
            "holds"
        } else {
            "VIOLATED"
        }
    }
}

/// Everything one property-checking pass produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropReport {
    /// Per-property verdicts, in suite order.
    pub results: Vec<PropResult>,
    /// Properties checked.
    pub checked: u64,
    /// Violated assertions.
    pub violations: u64,
    /// Longest decoded trace (steps).
    pub max_trace_len: u64,
    /// Total preimage BDD nodes across all trace walks.
    pub preimage_nodes: u64,
    /// Onion rings available to the walker.
    pub rings_stored: u64,
    /// Whether the ring set covered the whole fixpoint.
    pub rings_complete: bool,
    /// Wall-clock time of compilation, checking, and trace decoding.
    pub wall: Duration,
}

impl PropReport {
    /// Human-readable block (the `polis verify --props` / `polis prop`
    /// output): one verdict line per property, trace lines indented.
    pub fn render(&self, net: &Network) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "properties: {} checked, {} violated\n",
            self.checked, self.violations
        ));
        for r in &self.results {
            out.push_str(&format!("{}: {}\n", r.property.render(net), r.verdict()));
            match (&r.trace, &r.witness_state) {
                (Some(t), _) => {
                    let role = match r.property.kind {
                        PropKind::Never => "counterexample",
                        PropKind::Reachable => "witness",
                    };
                    out.push_str(&format!("  {} ({} steps):\n", role, t.len()));
                    for line in t.render(net).lines() {
                        out.push_str(&format!("  {line}\n"));
                    }
                }
                (None, Some(s)) => {
                    out.push_str(&format!("  witness state (no trace): {}\n", s.render(net)));
                }
                (None, None) => {}
            }
        }
        out
    }
}

/// Compiles a resolved property expression onto the model's
/// current-state rail. Single-state machines have no control variables,
/// so their only state atom is constantly true.
pub(crate) fn compile_expr(model: &mut NetworkModel, e: &PropExpr) -> NodeRef {
    match e {
        PropExpr::True => NodeRef::TRUE,
        PropExpr::False => NodeRef::FALSE,
        PropExpr::AtState { machine, state, .. } => match &model.vars[*machine].ctrl_cur {
            Some(mv) => mv.eq_const(&mut model.bdd, *state as u64),
            None => NodeRef::TRUE,
        },
        PropExpr::Pending { machine, input, .. } => {
            let f = model.vars[*machine].flag_cur[*input];
            model.bdd.var(f)
        }
        PropExpr::Not(x) => {
            let fx = compile_expr(model, x);
            model.bdd.not(fx)
        }
        PropExpr::And(a, b) => {
            let fa = compile_expr(model, a);
            let fb = compile_expr(model, b);
            model.bdd.and(fa, fb)
        }
        PropExpr::Or(a, b) => {
            let fa = compile_expr(model, a);
            let fb = compile_expr(model, b);
            model.bdd.or(fa, fb)
        }
    }
}

/// Checks `props` against `reached`, decoding traces through `rings`
/// when available.
pub(crate) fn check(
    model: &mut NetworkModel,
    net: &Network,
    reached: NodeRef,
    rings: Option<&TraceRings>,
    props: &[Property],
) -> PropReport {
    let start = Instant::now();
    let mut results = Vec::with_capacity(props.len());
    let mut violations = 0u64;
    let mut max_trace_len = 0u64;
    let mut preimage_nodes = 0u64;
    for p in props {
        let set = compile_expr(model, &p.expr);
        let hit = model.bdd.and(reached, set);
        let holds = match p.kind {
            PropKind::Never => hit.is_false(),
            PropKind::Reachable => !hit.is_false(),
        };
        if !holds {
            violations += 1;
        }
        // A satisfying state exists exactly when `hit` is non-empty;
        // that is the interesting direction for both kinds.
        let (trace, witness_state) = if hit.is_false() {
            (None, None)
        } else {
            let trace = rings.and_then(|r| walk_trace(model, net, r, hit));
            match trace {
                Some(t) => {
                    max_trace_len = max_trace_len.max(t.len() as u64);
                    preimage_nodes += t.preimage_nodes;
                    let last = t.states.last().cloned();
                    (Some(t), last)
                }
                None => (None, decode_point(model, hit)),
            }
        };
        results.push(PropResult {
            property: p.clone(),
            holds,
            trace,
            witness_state,
        });
    }
    PropReport {
        checked: props.len() as u64,
        violations,
        max_trace_len,
        preimage_nodes,
        rings_stored: rings.map_or(0, |r| r.rings.len() as u64),
        rings_complete: rings.is_some_and(|r| r.complete),
        results,
        wall: start.elapsed(),
    }
}
