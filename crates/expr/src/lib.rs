//! Expression and value model for extended finite state machines.
//!
//! CFSMs ([Balarin et al., "Synthesis of Software Programs for Embedded
//! Control Applications"]) extend classical FSMs with arithmetic and
//! relational operators over *bounded* discrete domains. This crate provides
//! the shared value model ([`Value`], [`Type`]), the side-effect-free
//! expression AST ([`Expr`]) used to label s-graph TEST predicates and ASSIGN
//! actions, an evaluator, and a C pretty-printer.
//!
//! Design constraints inherited from the paper:
//!
//! * every variable ranges over a finite domain (booleans or fixed-width
//!   integers), so expressions are total functions over finite domains;
//! * expressions have **no side effects**, so synthesis may reorder their
//!   evaluation freely (Section III-B1);
//! * division is implemented *safely*: a zero divisor yields zero rather than
//!   trapping, mirroring the paper's "division is implemented safely"
//!   assumption.
//!
//! # Examples
//!
//! ```
//! use polis_expr::{Expr, Value, MapEnv};
//!
//! // a == ?c  (the test from the paper's Fig. 1 `simple` module)
//! let test = Expr::var("a").eq(Expr::var("c_value"));
//! let mut env = MapEnv::new();
//! env.set("a", Value::from_i64(3));
//! env.set("c_value", Value::from_i64(3));
//! assert_eq!(test.eval(&env).unwrap(), Value::truth(true));
//! assert_eq!(test.to_c(), "(a == c_value)");
//! ```

mod eval;
mod print;
mod types;

pub use eval::{Env, EvalExprError, MapEnv};
pub use print::CStyle;
pub use types::{Type, TypeError, Value};

use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Logical negation on booleans.
    Not,
    /// Arithmetic negation (two's complement within the operand width).
    Neg,
}

/// Binary operators.
///
/// Relational operators produce booleans; arithmetic operators produce
/// integers wrapped to the width of the widest operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Safe division: `x / 0 == 0` (see crate docs).
    Div,
    /// Safe remainder: `x % 0 == 0`.
    Rem,
    /// Logical conjunction (booleans only).
    And,
    /// Logical disjunction (booleans only).
    Or,
    /// Exclusive or (booleans only).
    Xor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Minimum of two integers.
    Min,
    /// Maximum of two integers.
    Max,
}

impl BinOp {
    /// `true` for operators whose result is a boolean.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for operators defined on booleans.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// The C spelling of the operator (infix form).
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Xor => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Min => "MIN",
            BinOp::Max => "MAX",
        }
    }

    /// The software-library function name used by small micro-controller
    /// runtimes (the paper's `ADD(x1,x2)`, `EQ(x1,x2)`, ... calls).
    pub fn lib_name(self) -> &'static str {
        match self {
            BinOp::Add => "ADD",
            BinOp::Sub => "SUB",
            BinOp::Mul => "MUL",
            BinOp::Div => "DIV",
            BinOp::Rem => "REM",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Xor => "XOR",
            BinOp::Eq => "EQ",
            BinOp::Ne => "NE",
            BinOp::Lt => "LT",
            BinOp::Le => "LE",
            BinOp::Gt => "GT",
            BinOp::Ge => "GE",
            BinOp::Min => "MIN",
            BinOp::Max => "MAX",
        }
    }
}

/// A side-effect-free expression over named variables.
///
/// Variables are referenced by name and resolved at evaluation time against
/// an [`Env`]. The CFSM layer guarantees names are unique within a machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A named variable (state variable or event value).
    Var(String),
    /// Unary application.
    Unary(UnOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// If-then-else: `Ite(c, t, e)` is `t` when `c` is true, else `e`.
    ///
    /// This is the `ITE(x,y,z)` primitive of Section III-B3c used when
    /// ordering outputs before their support.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

// The builder methods form an expression DSL; the arithmetic names are
// deliberate and must not carry `std::ops` semantics (e.g. `div` is the
// paper's *safe* division), so operator overloading would be misleading
// (C-OVERLOAD).
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// An integer constant.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::from_i64(v))
    }

    /// A boolean constant.
    pub fn bool(v: bool) -> Expr {
        Expr::Const(Value::truth(v))
    }

    /// If-then-else constructor.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::Ite(Box::new(c), Box::new(t), Box::new(e))
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs` (wrapping in the assignment's target width).
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// Safe division (`x / 0 == 0`).
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
    /// Safe remainder (`x % 0 == 0`).
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }
    /// Logical and.
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// Logical or.
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// Logical exclusive or.
    pub fn xor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Xor, rhs)
    }
    /// Equality test.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// Inequality test.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// Less-than test.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    /// Less-or-equal test.
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }
    /// Greater-than test.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    /// Greater-or-equal test.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }
    /// Minimum.
    pub fn min(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Min, rhs)
    }
    /// Maximum.
    pub fn max(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Max, rhs)
    }
    /// Logical negation.
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }
    /// Arithmetic negation.
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    /// Collects the set of variable names this expression depends on, in
    /// first-occurrence order.
    ///
    /// This is the *support* of the expression in the sense of Section II-C.
    pub fn support(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_vars(&mut |name| {
            if !out.iter().any(|n| n == name) {
                out.push(name.to_owned());
            }
        });
        out
    }

    /// Calls `f` on every variable occurrence (with repetitions).
    pub fn visit_vars(&self, f: &mut impl FnMut(&str)) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(name) => f(name),
            Expr::Unary(_, a) => a.visit_vars(f),
            Expr::Binary(_, a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
            Expr::Ite(c, t, e) => {
                c.visit_vars(f);
                t.visit_vars(f);
                e.visit_vars(f);
            }
        }
    }

    /// Returns a copy of the expression with every occurrence of variable
    /// `name` replaced by `replacement`.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Var(n) if n == name => replacement.clone(),
            Expr::Var(n) => Expr::Var(n.clone()),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(a.substitute(name, replacement))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Ite(c, t, e) => Expr::ite(
                c.substitute(name, replacement),
                t.substitute(name, replacement),
                e.substitute(name, replacement),
            ),
        }
    }

    /// Renames every variable through `f`.
    pub fn rename_vars(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Var(n) => Expr::Var(f(n)),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(a.rename_vars(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            Expr::Ite(c, t, e) => Expr::ite(c.rename_vars(f), t.rename_vars(f), e.rename_vars(f)),
        }
    }

    /// Number of AST nodes; a rough complexity measure used by the cost
    /// estimator for user-provided data-path expressions.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, a) => 1 + a.node_count(),
            Expr::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Ite(c, t, e) => 1 + c.node_count() + t.node_count() + e.node_count(),
        }
    }

    /// Number of operator applications (operations the target must execute);
    /// constants and variable reads are not counted.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Unary(_, a) => 1 + a.op_count(),
            Expr::Binary(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Ite(c, t, e) => 1 + c.op_count() + t.op_count() + e.op_count(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_c())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let e = Expr::var("x").add(Expr::int(1)).eq(Expr::var("y"));
        assert_eq!(e.support(), vec!["x".to_string(), "y".to_string()]);
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        let e = Expr::var("x").add(Expr::var("x"));
        let s = e.substitute("x", &Expr::int(2));
        assert_eq!(s, Expr::int(2).add(Expr::int(2)));
    }

    #[test]
    fn rename_vars_applies_function() {
        let e = Expr::var("a").lt(Expr::var("b"));
        let r = e.rename_vars(&|n| format!("m_{n}"));
        assert_eq!(r.support(), vec!["m_a".to_string(), "m_b".to_string()]);
    }

    #[test]
    fn support_is_deduplicated_in_order() {
        let e = Expr::var("b").add(Expr::var("a")).add(Expr::var("b"));
        assert_eq!(e.support(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn relational_and_logical_classification() {
        assert!(BinOp::Eq.is_relational());
        assert!(!BinOp::Add.is_relational());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }
}
