/root/repo/target/debug/deps/ablation_buffering-379c62fa04702901.d: crates/bench/src/bin/ablation_buffering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_buffering-379c62fa04702901.rmeta: crates/bench/src/bin/ablation_buffering.rs Cargo.toml

crates/bench/src/bin/ablation_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
