/root/repo/target/debug/deps/table1-57f144f70cc951dd.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-57f144f70cc951dd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
