/root/repo/target/debug/deps/polis_rtos-4d5335a695897850.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/debug/deps/libpolis_rtos-4d5335a695897850.rlib: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/debug/deps/libpolis_rtos-4d5335a695897850.rmeta: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
