/root/repo/target/debug/deps/polis_lang-e062708e2e65fe87.d: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/debug/deps/libpolis_lang-e062708e2e65fe87.rmeta: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

crates/lang/src/lib.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
