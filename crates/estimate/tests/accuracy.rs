//! Property-style test: over random machines, the estimator tracks exact
//! object-code measurement within a bounded relative error, on both
//! targets — the statistical content of Table I. Deterministically seeded.

use polis_cfsm::{Cfsm, OrderScheme, ReactiveFn};
use polis_core::random::Rng;
use polis_estimate::{calibrate, estimate};
use polis_expr::{Expr, Type, Value};
use polis_sgraph::build;
use polis_vm::{analyze, assemble, compile, BufferPolicy, Profile};

#[derive(Debug, Clone)]
struct Spec {
    num_states: usize,
    transitions: Vec<(usize, usize, u8, u8, u8, bool, bool)>,
}

fn gen_spec(rng: &mut Rng) -> Spec {
    let num_states = rng.usize(1..5);
    let transitions = (0..rng.usize(1..9))
        .map(|_| {
            (
                rng.usize(0..num_states),
                rng.usize(0..num_states),
                rng.usize(0..3) as u8,
                rng.usize(0..3) as u8,
                rng.usize(0..3) as u8,
                rng.bool(),
                rng.bool(),
            )
        })
        .collect();
    Spec {
        num_states,
        transitions,
    }
}

fn instantiate(spec: &Spec) -> Cfsm {
    let mut b = Cfsm::builder("rnd");
    b.input_pure("a");
    b.input_valued("v", Type::uint(8));
    b.output_pure("x");
    b.state_var("n", Type::uint(8), Value::Int(0));
    let states: Vec<_> = (0..spec.num_states)
        .map(|i| b.ctrl_state(format!("s{i}")))
        .collect();
    let t = b.test("cmp", Expr::var("n").lt(Expr::var("v_value")));
    for &(from, to, na, nv, nt, ex, bump) in &spec.transitions {
        let mut tb = b.transition(states[from], states[to]);
        tb = match na {
            1 => tb.when_present("a"),
            2 => tb.when_absent("a"),
            _ => tb,
        };
        tb = match nv {
            1 => tb.when_present("v"),
            2 => tb.when_absent("v"),
            _ => tb,
        };
        tb = match nt {
            1 => tb.when_test(t),
            2 => tb.when_not_test(t),
            _ => tb,
        };
        if ex {
            tb = tb.emit("x");
        }
        if bump {
            tb = tb.assign("n", Expr::var("n").add(Expr::int(1)));
        }
        tb.done();
    }
    b.build().unwrap()
}

#[test]
fn estimator_tracks_measurement() {
    for case in 0..32u64 {
        let mut rng = Rng::new(0xacc ^ case.wrapping_mul(0x1234_5677));
        let spec = gen_spec(&mut rng);
        for profile in [Profile::Mcu8, Profile::Risc32] {
            let params = calibrate(profile);
            let m = instantiate(&spec);
            let mut rf = ReactiveFn::build(&m);
            rf.sift(OrderScheme::OutputsAfterSupport);
            let g = build(&rf).unwrap();
            let est = estimate(&m, &g, &params, BufferPolicy::All);
            let prog = compile(&m, &g, BufferPolicy::All);
            let obj = assemble(&prog, profile);
            let bounds = analyze(&prog, &obj);

            let rel = |a: f64, b: f64| (a - b).abs() / b.max(1.0);
            assert!(
                rel(est.size_bytes as f64, f64::from(obj.size_bytes())) < 0.5,
                "case {case} {profile:?} size: est {} measured {}",
                est.size_bytes,
                obj.size_bytes()
            );
            assert!(
                rel(est.max_cycles as f64, bounds.max_cycles as f64) < 0.5,
                "case {case} {profile:?} max cycles: est {} measured {}",
                est.max_cycles,
                bounds.max_cycles
            );
        }
    }
}
