//! The seat-belt alarm walk-through: specification text, synthesized C,
//! both scenario outcomes, and the effect of implementation style on the
//! measured costs.
//!
//! Run with `cargo run --example seatbelt`.

use polis::core::{synthesize, workloads, ImplStyle, SynthesisOptions};
use polis::rtos::{RtosConfig, Simulator, Stimulus};

fn main() {
    let net = workloads::seat_belt();
    let belt = &net.cfsms()[0];
    println!(
        "seat belt controller: {} states, {} transitions, {} tests",
        belt.states().len(),
        belt.num_transitions(),
        belt.tests().len()
    );

    // Compare the three implementation styles on the same machine.
    println!(
        "\n{:<18} {:>8} {:>10} {:>10}",
        "style", "ROM[B]", "min[cyc]", "max[cyc]"
    );
    for (label, style) in [
        ("decision graph", ImplStyle::DecisionGraph),
        ("ITE chain", ImplStyle::IteChain),
        ("two-level jump", ImplStyle::TwoLevel),
    ] {
        let r = synthesize(
            belt,
            &SynthesisOptions {
                style,
                ..SynthesisOptions::default()
            },
        );
        println!(
            "{label:<18} {:>8} {:>10} {:>10}",
            r.measured.size_bytes, r.measured.min_cycles, r.measured.max_cycles
        );
    }

    // Scenario 1: driver ignores the belt for five timer ticks.
    let mut sim = Simulator::build(&net, RtosConfig::default());
    let mut stim = vec![Stimulus::pure(0, "key_on")];
    for i in 0..5u64 {
        stim.push(Stimulus::pure(100_000 * (i + 1), "tick"));
    }
    stim.push(Stimulus::pure(800_000, "belt_on"));
    sim.run(&stim);
    println!("\nscenario 1 (belt ignored):");
    for t in sim.trace() {
        println!("  t={:>7}  {}", t.time, t.signal);
    }

    // Scenario 2: belt fastened promptly, no alarm.
    let mut sim = Simulator::build(&net, RtosConfig::default());
    let stim = vec![
        Stimulus::pure(0, "key_on"),
        Stimulus::pure(100_000, "tick"),
        Stimulus::pure(150_000, "belt_on"),
        Stimulus::pure(200_000, "tick"),
        Stimulus::pure(300_000, "tick"),
    ];
    sim.run(&stim);
    println!(
        "scenario 2 (fastened promptly): {} alarms",
        sim.trace()
            .iter()
            .filter(|t| t.signal == "alarm_on")
            .count()
    );
}
